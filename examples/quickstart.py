#!/usr/bin/env python3
"""Quickstart: a shared counter under MESI, COUP, and RMO.

This is the paper's Fig. 1 motivating example: several cores repeatedly add to
one shared counter, and one core reads the total at the end.  Under MESI every
atomic add ping-pongs the counter's cache line; under COUP the adds are
buffered locally in update-only mode and folded by a single reduction when the
counter is read; under RMO every add travels to the shared cache.

Run with::

    python examples/quickstart.py [n_cores] [updates_per_core]
"""

from __future__ import annotations

import sys

from repro import simulate, table1_config
from repro.workloads import SharedCounterWorkload, UpdateStyle


def main() -> None:
    n_cores = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    updates_per_core = int(sys.argv[2]) if len(sys.argv) > 2 else 400

    config = table1_config(n_cores)
    results = {}
    for protocol, style in (
        ("MESI", UpdateStyle.ATOMIC),
        ("COUP", UpdateStyle.COMMUTATIVE),
        ("RMO", UpdateStyle.REMOTE),
    ):
        workload = SharedCounterWorkload(
            updates_per_core=updates_per_core, update_style=style
        )
        trace = workload.generate(n_cores)
        results[protocol] = simulate(trace, config, protocol)

    expected = n_cores * updates_per_core
    counter_address = SharedCounterWorkload().counter_address

    print(f"Shared counter, {n_cores} cores x {updates_per_core} updates each")
    print(f"expected final value: {expected}")
    print()
    print(f"{'protocol':10s} {'cycles':>12s} {'speedup':>8s} {'AMAT':>8s} "
          f"{'off-chip bytes':>15s} {'final value':>12s}")
    baseline = results["MESI"].run_cycles
    for protocol, result in results.items():
        final = result.final_values.get(counter_address, 0)
        print(
            f"{protocol:10s} {result.run_cycles:12.0f} {baseline / result.run_cycles:8.2f} "
            f"{result.amat:8.1f} {result.offchip_bytes:15d} {final:12d}"
        )

    coup = results["COUP"]
    print()
    print(
        f"COUP performed {coup.reductions} full reduction(s) and "
        f"{coup.partial_reductions} partial reduction(s); "
        f"MESI invalidated {results['MESI'].invalidations} cache copies."
    )


if __name__ == "__main__":
    main()
