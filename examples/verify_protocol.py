#!/usr/bin/env python3
"""Exhaustively verify the MESI and MEUSI protocol models.

Runs the explicit-state model checker (the reproduction's stand-in for the
paper's Murphi setup, Sec. 3.4) on small configurations of both protocols,
checks the coherence invariants on every reachable state, and reports
state-space sizes — the quantities behind the paper's Fig. 8.

Run with::

    python examples/verify_protocol.py [max_cores] [n_ops]
"""

from __future__ import annotations

import sys

from repro.experiments.tables import print_table
from repro.verification import extra_states_over_mesi, verify_protocol


def main() -> None:
    max_cores = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    n_ops = int(sys.argv[2]) if len(sys.argv) > 2 else 2

    rows = []
    for protocol in ("MESI", "MEUSI"):
        for n_cores in range(1, max_cores + 1):
            result = verify_protocol(protocol, n_cores, n_ops=n_ops, max_states=400_000)
            rows.append(
                {
                    "protocol": protocol,
                    "n_cores": n_cores,
                    "n_ops": n_ops if protocol == "MEUSI" else 0,
                    "states": result.n_states,
                    "transitions": result.n_transitions,
                    "time_s": result.elapsed_seconds,
                    "verified": result.verified,
                }
            )

    print_table(rows, title="Exhaustive verification of MESI and MEUSI protocol models")
    print()
    extra = extra_states_over_mesi(levels=2)
    print(
        "Paper's Fig. 7 implementation inventory: MEUSI adds "
        f"{extra['L1']} state(s) to the L1 controller and {extra['L2']} to the L2 "
        "over MESI, thanks to the generalized non-exclusive state N."
    )


if __name__ == "__main__":
    main()
