#!/usr/bin/env python3
"""Histogram case study: atomics vs. software privatization vs. COUP.

Reproduces the experiment behind the paper's Fig. 2 and Fig. 12 at example
scale: a parallel histogram over a fixed number of input values, with the
number of bins swept from small (heavily contended) to large (where the
privatized reduction phase dominates).

Run with::

    python examples/histogram_study.py [n_cores]
"""

from __future__ import annotations

import sys

from repro import simulate, table1_config
from repro.experiments.tables import print_table
from repro.software.privatization import PrivatizationLevel
from repro.workloads import HistogramWorkload, UpdateStyle


def main() -> None:
    n_cores = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    n_items = 12_000
    config = table1_config(n_cores)

    rows = []
    for n_bins in (32, 256, 2048, 16384):
        coup = simulate(
            HistogramWorkload(
                n_bins=n_bins, n_items=n_items, update_style=UpdateStyle.COMMUTATIVE
            ).generate(n_cores),
            config,
            "COUP",
            track_values=False,
        )
        atomics = simulate(
            HistogramWorkload(
                n_bins=n_bins, n_items=n_items, update_style=UpdateStyle.ATOMIC
            ).generate(n_cores),
            config,
            "MESI",
            track_values=False,
        )
        core_priv = simulate(
            HistogramWorkload(n_bins=n_bins, n_items=n_items).generate_privatized(
                n_cores, level=PrivatizationLevel.CORE
            ),
            config,
            "MESI",
            track_values=False,
        )
        socket_priv = simulate(
            HistogramWorkload(n_bins=n_bins, n_items=n_items).generate_privatized(
                n_cores,
                level=PrivatizationLevel.SOCKET,
                cores_per_socket=config.cores_per_chip,
            ),
            config,
            "MESI",
            track_values=False,
        )
        rows.append(
            {
                "n_bins": n_bins,
                "coup_Mcycles": coup.run_cycles / 1e6,
                "atomics_vs_coup": atomics.run_cycles / coup.run_cycles,
                "core_priv_vs_coup": core_priv.run_cycles / coup.run_cycles,
                "socket_priv_vs_coup": socket_priv.run_cycles / coup.run_cycles,
            }
        )

    print_table(
        rows,
        title=(
            f"Histogram on {n_cores} cores, {n_items} input values "
            "(columns give each scheme's run time relative to COUP; >1 means COUP is faster)"
        ),
    )
    print()
    print("With few bins, atomics suffer contention; with many bins, core-level")
    print("privatization pays for its reduction phase and footprint. COUP avoids both.")


if __name__ == "__main__":
    main()
