#!/usr/bin/env python3
"""Graph analytics under COUP: PageRank and BFS.

Irregular iterative algorithms update shared accumulators (PageRank) or a
shared visited bitmap (BFS) from many threads.  This example runs both on a
synthetic power-law graph under MESI (atomic updates) and COUP (commutative
updates) and reports run time, average memory access time, off-chip traffic,
and the number of reductions COUP performed.

Run with::

    python examples/graph_analytics.py [n_cores]
"""

from __future__ import annotations

import sys

from repro import simulate, table1_config
from repro.experiments.tables import print_table
from repro.workloads import BfsWorkload, PageRankWorkload, UpdateStyle


def main() -> None:
    n_cores = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    config = table1_config(n_cores)

    workloads = {
        "pgrank": lambda style: PageRankWorkload(
            n_vertices=1536, avg_degree=6, n_iterations=2, update_style=style
        ),
        "bfs": lambda style: BfsWorkload(
            n_vertices=4096, avg_degree=8, max_levels=5, update_style=style
        ),
    }

    rows = []
    for name, factory in workloads.items():
        mesi = simulate(
            factory(UpdateStyle.ATOMIC).generate(n_cores), config, "MESI", track_values=False
        )
        coup = simulate(
            factory(UpdateStyle.COMMUTATIVE).generate(n_cores), config, "COUP", track_values=False
        )
        rows.append(
            {
                "benchmark": name,
                "mesi_Mcycles": mesi.run_cycles / 1e6,
                "coup_Mcycles": coup.run_cycles / 1e6,
                "coup_speedup": mesi.run_cycles / coup.run_cycles,
                "amat_mesi": mesi.amat,
                "amat_coup": coup.amat,
                "traffic_reduction": mesi.offchip_bytes / max(1, coup.offchip_bytes),
                "full_reductions": coup.reductions,
            }
        )

    print_table(rows, title=f"Graph analytics on {n_cores} cores: MESI vs. COUP")
    print()
    print("PageRank's accumulators stay in update-only mode through each scatter phase,")
    print("so COUP eliminates nearly all invalidation traffic; BFS interleaves reads and")
    print("bitmap ORs finely, so the benefit is smaller but still positive at scale.")


if __name__ == "__main__":
    main()
