#!/usr/bin/env python3
"""Reference counting case study: XADD vs. SNZI vs. Refcache vs. COUP.

Reproduces the paper's Sec. 5.4 microbenchmarks at example scale:

* immediate deallocation — threads randomly increment or decrement-and-read a
  pool of shared reference counters (low-count and high-count variants);
* delayed deallocation — threads only update counters during an epoch and
  check for zeroes at epoch boundaries (COUP with a modified-bitmap vs.
  Refcache's per-thread delta caches).

Run with::

    python examples/reference_counting.py [n_cores]
"""

from __future__ import annotations

import sys

from repro import simulate, table1_config
from repro.experiments.tables import print_table
from repro.workloads import (
    CountMode,
    DelayedRefcountWorkload,
    ImmediateRefcountWorkload,
    RefcountScheme,
)


def immediate(n_cores: int, count_mode: CountMode) -> dict:
    config = table1_config(n_cores)
    results = {}
    for scheme, protocol in (
        (RefcountScheme.COUP, "COUP"),
        (RefcountScheme.XADD, "MESI"),
        (RefcountScheme.SNZI, "MESI"),
    ):
        workload = ImmediateRefcountWorkload(
            n_counters=1024,
            updates_per_thread=400,
            scheme=scheme,
            count_mode=count_mode,
        )
        results[scheme.value] = simulate(
            workload.generate(n_cores), config, protocol, track_values=False
        )
    xadd = results["xadd"].run_cycles
    return {
        "variant": f"immediate/{count_mode.value}",
        "coup_vs_xadd": xadd / results["coup"].run_cycles,
        "snzi_vs_xadd": xadd / results["snzi"].run_cycles,
    }


def delayed(n_cores: int, updates_per_epoch: int) -> dict:
    config = table1_config(n_cores)
    coup = simulate(
        DelayedRefcountWorkload(
            n_counters=2048, updates_per_epoch=updates_per_epoch, scheme=RefcountScheme.COUP
        ).generate(n_cores),
        config,
        "COUP",
        track_values=False,
    )
    refcache = simulate(
        DelayedRefcountWorkload(
            n_counters=2048,
            updates_per_epoch=updates_per_epoch,
            scheme=RefcountScheme.REFCACHE,
        ).generate(n_cores),
        config,
        "MESI",
        track_values=False,
    )
    return {
        "variant": f"delayed/{updates_per_epoch} upd/epoch",
        "coup_vs_refcache": refcache.run_cycles / coup.run_cycles,
    }


def main() -> None:
    n_cores = int(sys.argv[1]) if len(sys.argv) > 1 else 32

    immediate_rows = [
        immediate(n_cores, CountMode.LOW),
        immediate(n_cores, CountMode.HIGH),
    ]
    print_table(
        immediate_rows,
        title=f"Immediate deallocation on {n_cores} cores (speedup over flat atomic counters)",
    )
    print()

    delayed_rows = [delayed(n_cores, updates) for updates in (10, 100, 400)]
    print_table(
        delayed_rows,
        title=f"Delayed deallocation on {n_cores} cores (COUP speedup over Refcache)",
    )
    print()
    print("COUP keeps a single copy of every counter and lets all threads update it")
    print("concurrently; SNZI and Refcache approximate that in software at the cost of")
    print("extra memory, tuning, and (for Refcache) delayed reclamation.")


if __name__ == "__main__":
    main()
