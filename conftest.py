"""Repository-root conftest: make ``src/`` importable without installation.

``pip install -e .`` is the supported way to use the package, but offline
environments without the ``wheel`` package cannot perform editable installs;
this shim keeps ``pytest tests/`` and ``pytest benchmarks/`` working there.
"""

from __future__ import annotations

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
