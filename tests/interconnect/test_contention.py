"""Contention model limits and end-to-end AMAT behaviour under load.

Pins the two limits the epoch queueing model is anchored on — zero load
means zero surcharge, and the surcharge grows monotonically as utilization
approaches 1 — plus the end-to-end acceptance property: with contention
enabled, measured AMAT increases monotonically with injected load (here:
shrinking link bandwidth) on every topology, and the dancehall/no-contention
configuration stays bit-identical to the default machine.
"""

from __future__ import annotations

import pytest

from repro.interconnect.contention import ContentionModel
from repro.interconnect.network import InterconnectModel
from repro.sim.config import (
    TOPOLOGY_NAMES,
    CacheConfig,
    SystemConfig,
    TopologyConfig,
    small_test_config,
    table1_config,
)
from repro.sim.simulator import simulate
from repro.workloads.base import UpdateStyle
from repro.workloads.synthetic import MultiCounterWorkload, SharedCounterWorkload


def contended_model(
    name: str = "dancehall", n_cores: int = 32, **overrides
) -> ContentionModel:
    config = table1_config(n_cores).with_topology(
        TopologyConfig(name=name, contention=True, **overrides)
    )
    model = InterconnectModel(config)
    assert model.contention is not None
    return model.contention


class TestQueueingLimits:
    def test_zero_load_zero_surcharge(self):
        """An idle network charges exactly the base topology latency."""
        contention = contended_model()
        base = contention._base_l4_rt[0][1]
        assert contention.l4_round_trip(0, 1, line_addr=17, now=0.0) == base
        # The very first transfer of an epoch sees no prior-epoch load either.
        assert contention.chip_transfer(0, 1, now=0.0) == contention._base_chip[0][1]

    def test_surcharge_appears_only_after_a_loaded_epoch(self):
        contention = contended_model(epoch_cycles=100)
        base = contention._base_l4_rt[0][1]
        # Load epoch 0 heavily; epoch 0 transfers still pay no surcharge
        # (their basis — the previous epoch — was idle).
        for _ in range(200):
            assert contention.l4_round_trip(0, 1, line_addr=3, now=10.0) == base
        # Epoch 1 transfers queue behind epoch 0's occupancy.
        assert contention.l4_round_trip(0, 1, line_addr=3, now=110.0) > base

    def test_surcharge_monotone_in_utilization(self):
        """Higher previous-epoch occupancy => strictly larger surcharge."""
        surcharges = []
        for transfers in (1, 10, 50, 200, 1000):
            contention = contended_model(epoch_cycles=1000)
            for _ in range(transfers):
                contention.l4_round_trip(0, 1, line_addr=3, now=0.0)
            loaded = contention.l4_round_trip(0, 1, line_addr=3, now=1000.0)
            surcharges.append(loaded - contention._base_l4_rt[0][1])
        assert surcharges[0] > 0.0
        assert surcharges == sorted(surcharges)
        assert len(set(surcharges)) == len(surcharges)  # strictly increasing

    def test_utilization_clamp_keeps_surcharge_finite(self):
        contention = contended_model(epoch_cycles=10, max_utilization=0.9)
        for _ in range(100_000):
            contention.l4_round_trip(0, 1, line_addr=3, now=0.0)
        loaded = contention.l4_round_trip(0, 1, line_addr=3, now=10.0)
        base = contention._base_l4_rt[0][1]
        # rho clamps at 0.9: wait <= service * 0.9 / 0.2 per queue on the path.
        per_queue = contention.link_service * 0.9 / (2 * 0.1)
        bank = contention.bank_service * 0.9 / (2 * 0.1)
        assert base < loaded <= base + 2 * per_queue + bank + 1e-9

    def test_stale_epochs_reset_the_basis(self):
        """Jumping several idle epochs forgets the old load (idle basis)."""
        contention = contended_model(epoch_cycles=100)
        for _ in range(500):
            contention.l4_round_trip(0, 1, line_addr=3, now=0.0)
        base = contention._base_l4_rt[0][1]
        assert contention.l4_round_trip(0, 1, line_addr=3, now=1050.0) == base

    def test_link_report_totals_and_utilization(self):
        contention = contended_model(epoch_cycles=100)
        contention.l4_round_trip(0, 1, line_addr=3, now=0.0)
        report = contention.link_report(run_cycles=1000.0)
        assert report.topology == "dancehall"
        assert report.offchip_transfers == 1
        total_bytes = sum(entry["bytes"] for entry in report.links.values())
        # One control request out, one data response back.
        assert total_bytes == 8 + 72
        for entry in report.links.values():
            assert entry["utilization"] == pytest.approx(
                entry["bytes"] / (contention.bandwidth * 1000.0)
            )
        assert report.max_link_utilization > 0.0

    def test_exchange_kinds_occupy_matching_bytes(self):
        """Each exchange kind charges the bytes its real messages carry."""
        contention = contended_model()
        contention.l4_round_trip(0, 1, line_addr=3, now=0.0)
        by_link = dict(contention.link_bytes_total)
        assert by_link == {("p0", "d1"): 8, ("d1", "p0"): 72}  # request/data

        contention.reset()
        contention.l4_control_round_trip(0, 1, line_addr=3, now=0.0)
        by_link = dict(contention.link_bytes_total)
        assert by_link == {("p0", "d1"): 8, ("d1", "p0"): 8}  # inval/ack

        contention.reset()
        contention.l4_partial_update(0, 1, line_addr=3, now=0.0)
        by_link = dict(contention.link_bytes_total)
        # Reduce request L4 -> chip (control), partial update chip -> L4 (data).
        assert by_link == {("p0", "d1"): 72, ("d1", "p0"): 8}

    def test_reset_clears_everything(self):
        contention = contended_model(epoch_cycles=100)
        contention.l4_round_trip(0, 1, line_addr=3, now=0.0)
        contention.reset()
        assert contention.surcharge_cycles == 0.0
        assert not contention.link_bytes_total
        assert contention.link_report(100.0).offchip_transfers == 0


class TestEndToEnd:
    """Acceptance: AMAT under load, and the disabled path's bit-identity."""

    N_CORES = 8

    def _trace(self):
        workload = SharedCounterWorkload(
            updates_per_core=300, update_style=UpdateStyle.ATOMIC
        )
        return workload.generate(self.N_CORES)

    def _config(self, **topology_kwargs):
        return small_test_config(self.N_CORES).with_topology(
            TopologyConfig(**topology_kwargs)
        )

    def test_dancehall_disabled_is_bit_identical_to_default(self):
        trace = self._trace()
        default = simulate(trace, small_test_config(self.N_CORES), "MESI")
        explicit = simulate(trace, self._config(), "MESI")
        assert explicit == default

    @pytest.mark.parametrize("name", TOPOLOGY_NAMES)
    def test_amat_monotone_in_injected_load(self, name):
        """Shrinking link bandwidth must never *reduce* measured AMAT."""
        trace = self._trace()
        previous = None
        for bandwidth in (1024.0, 64.0, 8.0, 1.0):
            config = self._config(
                name=name,
                contention=True,
                link_bandwidth_bytes_per_cycle=bandwidth,
            )
            result = simulate(trace, config, "MESI")
            assert result.link_stats is not None
            if previous is not None:
                assert result.amat >= previous - 1e-9, (
                    f"{name}: AMAT fell from {previous} to {result.amat} when "
                    f"bandwidth shrank to {bandwidth}"
                )
            previous = result.amat

    @pytest.mark.parametrize("name", TOPOLOGY_NAMES)
    def test_contention_never_speeds_up_a_run(self, name):
        trace = self._trace()
        free = simulate(trace, self._config(name=name), "MESI")
        loaded = simulate(
            trace,
            self._config(name=name, contention=True, link_bandwidth_bytes_per_cycle=2.0),
            "MESI",
        )
        assert loaded.run_cycles >= free.run_cycles
        assert loaded.amat >= free.amat
        assert loaded.link_stats.surcharge_cycles > 0.0

    def test_multi_chip_machine_exercises_multi_hop_routing(self):
        """An 8-chip machine drives real XY/wrap routes end-to-end.

        ``table1_config`` only reaches one chip below 17 cores, so this
        builds a 16-core, 2-cores-per-chip machine: 8 processor + 8 L4
        chips on a full 4x4 grid.  Mesh hops reach 6, so the mesh must run
        measurably slower than the 1-hop crossbar; torus wrap links can
        only shorten paths; and the topology must never change *functional*
        results.
        """
        config = SystemConfig(
            n_cores=16,
            cores_per_chip=2,
            l1d=CacheConfig(size_bytes=1024, ways=2, latency=4),
            l2=CacheConfig(size_bytes=4096, ways=4, latency=7),
            l3=CacheConfig(size_bytes=16 * 1024, ways=4, latency=27, banks=2),
            l4=CacheConfig(size_bytes=64 * 1024, ways=4, latency=35, banks=2),
        )
        workload = MultiCounterWorkload(
            n_counters=64, updates_per_core=150, hot_fraction=0.3
        )
        trace = workload.generate(16)
        runs = {}
        for name in TOPOLOGY_NAMES:
            topo_config = config.with_topology(TopologyConfig(name=name))
            runs[name] = simulate(trace, topo_config, "MESI", track_values=True)
        # Functional results are latency-independent.
        reference = runs["dancehall"].final_values
        for name, result in runs.items():
            assert result.final_values == reference, name
        # Multi-hop mesh pays for distance; the crossbar reaches any chip
        # in one latency hop; wrap-around can only shorten grid paths.
        assert runs["mesh"].run_cycles > runs["crossbar"].run_cycles
        assert runs["torus"].run_cycles <= runs["mesh"].run_cycles * 1.01
        # With contention on, multi-hop routes occupy intermediate links:
        # the mesh report must show more distinct links than the dancehall's
        # bipartite chip<->L4 pairs that this traffic pattern touches.
        mesh_loaded = simulate(
            trace,
            config.with_topology(TopologyConfig(name="mesh", contention=True)),
            "MESI",
        )
        dance_loaded = simulate(
            trace,
            config.with_topology(TopologyConfig(name="dancehall", contention=True)),
            "MESI",
        )
        assert len(mesh_loaded.link_stats.links) > 0
        assert mesh_loaded.link_stats.surcharge_cycles > 0.0
        assert (
            mesh_loaded.link_stats.links.keys()
            != dance_loaded.link_stats.links.keys()
        )

    def test_link_stats_surface_through_simulation_result(self):
        trace = self._trace()
        result = simulate(
            trace, self._config(name="mesh", contention=True), "COUP"
        )
        stats = result.link_stats
        assert stats is not None and stats.topology == "mesh"
        assert stats.links, "per-link counters missing"
        assert 0.0 <= stats.max_link_utilization <= 1.0
        summary = result.summary()
        assert summary["max_link_utilization"] == stats.max_link_utilization
        assert summary["bytes_by_type"] == result.bytes_by_type
        # The breakdown must be present on ordinary runs too.
        plain = simulate(trace, small_test_config(self.N_CORES), "COUP")
        assert plain.bytes_by_type and plain.link_stats is None
