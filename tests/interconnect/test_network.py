"""Tests for the interconnect model and message catalogue."""

from __future__ import annotations

import pytest

from repro.interconnect.messages import (
    LinkScope,
    MessageClass,
    MessageEvent,
    MessageType,
    total_bytes,
)
from repro.interconnect.network import InterconnectModel, TrafficCounters
from repro.sim.config import NetworkConfig, table1_config


class TestMessageCatalogue:
    def test_control_and_data_sizes(self):
        network = NetworkConfig()
        assert MessageType.GET_SHARED.size_bytes(network) == 8
        assert MessageType.INVALIDATE.size_bytes(network) == 8
        assert MessageType.DATA_RESPONSE.size_bytes(network) == 72
        assert MessageType.PARTIAL_UPDATE.size_bytes(network) == 72

    def test_every_type_has_a_class(self):
        for msg_type in MessageType:
            assert msg_type.msg_class in (MessageClass.CONTROL, MessageClass.DATA)
            assert msg_type.label

    def test_total_bytes(self):
        network = NetworkConfig()
        events = [
            MessageEvent(MessageType.GET_SHARED, LinkScope.ON_CHIP, count=2),
            MessageEvent(MessageType.DATA_RESPONSE, LinkScope.OFF_CHIP),
        ]
        assert total_bytes(events, network) == 2 * 8 + 72


class TestInterconnectModel:
    def test_latency_helpers(self):
        model = InterconnectModel(table1_config(32))
        assert model.offchip_round_trip() == 80
        assert model.offchip_one_way() == 40
        assert model.onchip_hop_latency() == 3
        assert model.cross_socket_latency() == 80

    def test_traffic_accounting_by_scope(self):
        model = InterconnectModel(table1_config(32))
        model.record_one(MessageType.GET_SHARED, LinkScope.ON_CHIP)
        model.record_one(MessageType.DATA_RESPONSE, LinkScope.OFF_CHIP, count=3)
        assert model.traffic.on_chip_bytes == 8
        assert model.traffic.off_chip_bytes == 3 * 72
        assert model.traffic.total_bytes == 8 + 216
        assert model.traffic.messages_by_type["Data"] == 3

    def test_reset(self):
        model = InterconnectModel(table1_config(16))
        model.record_one(MessageType.ACK, LinkScope.ON_CHIP)
        model.reset()
        assert model.traffic.total_bytes == 0

    def test_sharer_chips(self):
        config = table1_config(64)
        model = InterconnectModel(config)
        assert model.sharer_chips([0, 1, 15]) == [0]
        assert model.sharer_chips([0, 16, 48]) == [0, 1, 3]
        assert model.is_offchip(0, 1)
        assert not model.is_offchip(2, 2)

    def test_counters_get_independent_default_dicts(self):
        """The dataclass defaults must be per-instance factories, not None."""
        a = TrafficCounters()
        b = TrafficCounters()
        assert a.messages_by_type == {} and a.bytes_by_type == {}
        a.messages_by_type["Data"] += 1  # defaultdict semantics preserved
        a.bytes_by_type["Data"] += 72
        assert b.messages_by_type == {} and b.bytes_by_type == {}
        # Annotated type is honest now: instantiation never yields None.
        assert TrafficCounters(on_chip_bytes=1).messages_by_type is not None

    def test_counters_merge(self):
        a = TrafficCounters(on_chip_bytes=10, off_chip_bytes=20)
        b = TrafficCounters(on_chip_bytes=1, off_chip_bytes=2)
        b.messages_by_type["Data"] = 4
        a.merge(b)
        assert a.on_chip_bytes == 11
        assert a.off_chip_bytes == 22
        assert a.messages_by_type["Data"] == 4
        assert a.as_dict()["total_bytes"] == 33


class TestNetworkSummary:
    def test_hierarchy_summary_matches_simulation_traffic(self):
        from repro.sim.config import small_test_config
        from repro.sim.simulator import MulticoreSimulator, make_protocol
        from repro.workloads.synthetic import SharedCounterWorkload

        config = small_test_config(4)
        engine = make_protocol("MESI", config, track_values=False)
        simulator = MulticoreSimulator(config, engine, track_values=False)
        result = simulator.run(SharedCounterWorkload(updates_per_core=50).generate(4))
        summary = engine.hierarchy.network_summary()
        assert summary["topology"] == "dancehall"
        assert summary["contention"] is False
        assert summary["off_chip_bytes"] == result.offchip_bytes
        assert summary["on_chip_bytes"] == result.onchip_bytes
        assert summary["bytes_by_type"] == result.bytes_by_type
