"""Topology path enumeration: routes, hop counts, and the dancehall baseline.

Pins the properties the latency tables and the contention model rely on:

* dancehall paths reduce to the original fixed-latency constants,
* mesh hop counts equal the Manhattan distance between grid coordinates and
  torus hop counts equal the wrapped (toroidal) Manhattan distance,
* routes are symmetric in length (XY out, YX back: same hop count), and
* every route is contiguous (each link starts where the previous one ended).
"""

from __future__ import annotations

import pytest

from repro.interconnect.network import InterconnectModel
from repro.interconnect.topology import (
    TOPOLOGIES,
    Crossbar,
    Mesh2D,
    Topology,
    Torus2D,
    build_topology,
    directory_node,
    processor_node,
)
from repro.sim.config import TOPOLOGY_NAMES, TopologyConfig, table1_config

LINK_LATENCY = 40


def make(name: str, n_chips: int = 8, n_l4: int = 8) -> Topology:
    return TOPOLOGIES[name](n_chips, n_l4, LINK_LATENCY)


def all_node_pairs(topology: Topology):
    nodes = [processor_node(i) for i in range(topology.n_chips)] + [
        directory_node(j) for j in range(topology.n_l4_chips)
    ]
    return [(a, b) for a in nodes for b in nodes if a != b]


class TestDancehallBaseline:
    """The default topology must reproduce the original constants."""

    def test_chip_to_l4_is_one_dedicated_link(self):
        topo = make("dancehall")
        for chip in range(topo.n_chips):
            for l4 in range(topo.n_l4_chips):
                path = topo.chip_to_l4(chip, l4)
                assert path == ((processor_node(chip), directory_node(l4)),)
                assert topo.one_way_latency(processor_node(chip), directory_node(l4)) == LINK_LATENCY

    def test_chip_to_chip_crosses_an_l4_chip(self):
        topo = make("dancehall")
        path = topo.chip_to_chip(0, 3)
        assert len(path) == 2
        assert path[0][1].startswith("d") and path[1][0].startswith("d")
        assert topo.one_way_latency(processor_node(0), processor_node(3)) == 2 * LINK_LATENCY

    def test_directory_to_directory_relays_through_a_processor(self):
        topo = make("dancehall")
        path = topo.route(directory_node(0), directory_node(3))
        assert len(path) == 2
        assert path[0][0] == directory_node(0) and path[1][1] == directory_node(3)
        relay = path[0][1]
        assert relay.startswith("p") and path[1][0] == relay  # no self-loops

    def test_interconnect_tables_match_legacy_constants(self):
        """The precomputed latency tables equal the old fixed helpers."""
        model = InterconnectModel(table1_config(128))
        round_trip = model.offchip_round_trip()
        for row in model.l4_round_trip_table:
            assert all(entry == round_trip for entry in row)
        for src, row in enumerate(model.chip_transfer_table):
            for dst, entry in enumerate(row):
                expected = 0 if src == dst else model.cross_socket_latency()
                assert entry == expected

    def test_contention_disabled_by_default(self):
        model = InterconnectModel(table1_config(64))
        assert model.contention is None
        assert model.link_report(1000.0) is None
        assert model.topology.name == "dancehall"


class TestCrossbar:
    def test_two_port_links_one_latency_hop(self):
        topo = make("crossbar")
        path = topo.chip_to_l4(2, 5)
        assert path == ((processor_node(2), Crossbar.SWITCH), (Crossbar.SWITCH, directory_node(5)))
        assert topo.latency_hops(processor_node(2), directory_node(5)) == 1
        assert topo.one_way_latency(processor_node(2), directory_node(5)) == LINK_LATENCY


class TestGridTopologies:
    @pytest.mark.parametrize("cls", [Mesh2D, Torus2D])
    def test_routes_are_contiguous(self, cls):
        topo = cls(8, 8, LINK_LATENCY)
        for src, dst in all_node_pairs(topo):
            path = topo.route(src, dst)
            assert path, f"no path {src}->{dst}"
            assert path[0][0] == src and path[-1][1] == dst
            for (_, mid), (nxt, _) in zip(path, path[1:]):
                assert mid == nxt

    def test_mesh_hops_match_manhattan_distance(self):
        topo = Mesh2D(8, 8, LINK_LATENCY)
        for src, dst in all_node_pairs(topo):
            (x1, y1), (x2, y2) = topo.coordinate(src), topo.coordinate(dst)
            assert topo.hops(src, dst) == abs(x1 - x2) + abs(y1 - y2)

    def test_torus_hops_match_wrapped_distance(self):
        topo = Torus2D(8, 8, LINK_LATENCY)
        for src, dst in all_node_pairs(topo):
            (x1, y1), (x2, y2) = topo.coordinate(src), topo.coordinate(dst)
            dx = min(abs(x1 - x2), topo.cols - abs(x1 - x2))
            dy = min(abs(y1 - y2), topo.rows - abs(y1 - y2))
            assert topo.hops(src, dst) == dx + dy

    def test_torus_never_longer_than_mesh(self):
        mesh = Mesh2D(8, 8, LINK_LATENCY)
        torus = Torus2D(8, 8, LINK_LATENCY)
        for src, dst in all_node_pairs(mesh):
            assert torus.hops(src, dst) <= mesh.hops(src, dst)

    @pytest.mark.parametrize("name", ["mesh", "torus"])
    def test_routes_symmetric_hop_counts(self, name):
        topo = make(name)
        for src, dst in all_node_pairs(topo):
            assert topo.hops(src, dst) == topo.hops(dst, src)

    def test_grid_links_connect_adjacent_slots_only(self):
        """Every mesh link spans exactly one grid step (no shortcuts)."""
        topo = Mesh2D(6, 6, LINK_LATENCY)
        coords = {label: coord for coord, label in topo._label.items()}
        for src, dst in all_node_pairs(topo):
            for a, b in topo.route(src, dst):
                (x1, y1), (x2, y2) = coords[a], coords[b]
                assert abs(x1 - x2) + abs(y1 - y2) == 1


class TestRegistry:
    def test_every_config_name_builds(self):
        for name in TOPOLOGY_NAMES:
            topo = build_topology(TopologyConfig(name=name), 4, 4, LINK_LATENCY)
            assert topo.name == name

    def test_unknown_name_rejected_by_config(self):
        with pytest.raises(ValueError):
            TopologyConfig(name="hypercube")

    @pytest.mark.parametrize("name", TOPOLOGY_NAMES)
    def test_self_route_is_empty(self, name):
        topo = make(name)
        assert topo.route(processor_node(1), processor_node(1)) == ()
        assert topo.one_way_latency(processor_node(1), processor_node(1)) == 0
