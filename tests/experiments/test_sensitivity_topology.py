"""Topology sensitivity experiment: grid shape, baseline identity, trace reuse."""

from __future__ import annotations

import pytest

from repro.experiments import (
    EXPERIMENT_MODULES,
    figure11_amat,
    figure11_amat_contention,
    sensitivity_topology,
    settings,
)
from repro.sim.config import TOPOLOGY_NAMES


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    """Shrink the workloads so the whole module runs in seconds."""
    monkeypatch.setattr(settings, "_scale", 0.03)
    monkeypatch.setattr(settings, "_max_cores", 8)
    yield


class TestSensitivityTopology:
    def test_grid_covers_every_topology_and_protocol(self):
        results = sensitivity_topology.run(benchmarks=["hist"], n_cores=4)
        rows = results["hist"]
        seen = {(row["protocol"], row["topology"]) for row in rows}
        expected = {
            (protocol, column)
            for protocol in ("COUP", "MESI")
            for column in (sensitivity_topology.BASELINE, *TOPOLOGY_NAMES)
        }
        assert seen == expected
        for row in rows:
            if row["topology"] == sensitivity_topology.BASELINE:
                assert row["max_link_utilization"] == 0.0
                assert row["slowdown_vs_baseline"] == 1.0
            else:
                # Contended columns may legitimately be faster OR slower than
                # the dancehall baseline (crossbar halves chip-to-chip hops);
                # what must hold is that they ran and charged contention.
                assert row["slowdown_vs_baseline"] > 0.0
                assert row["max_link_utilization"] > 0.0

    def test_baseline_column_matches_legacy_path(self):
        results = sensitivity_topology.run(benchmarks=["hist"], n_cores=4)
        sensitivity_topology.baseline_matches_legacy(results)

    def test_baseline_check_detects_divergence(self):
        results = sensitivity_topology.run(benchmarks=["hist"], n_cores=4)
        for row in sensitivity_topology.baseline_rows(results):
            row["run_cycles"] += 1.0
        with pytest.raises(AssertionError):
            sensitivity_topology.baseline_matches_legacy(results)

    def test_points_share_one_trace_per_benchmark_and_protocol(self):
        """All topology columns of one (benchmark, protocol) reuse one trace."""
        spec = sensitivity_topology.sweep_spec(benchmarks=["hist"], n_cores=4)
        keys = {
            point.key: point.workload.key(point.n_cores) for point in spec.points
        }
        for protocol in ("COUP", "MESI"):
            trace_keys = {
                trace_key
                for point_key, trace_key in keys.items()
                if point_key.endswith(f"/{protocol}")
            }
            assert len(trace_keys) == 1

    def test_registered_with_the_runner(self):
        assert "sensitivity-topology" in EXPERIMENT_MODULES
        assert "figure11-contention" in EXPERIMENT_MODULES


class TestFigure11ContentionMode:
    def test_rows_report_topology_and_utilization(self):
        results = figure11_amat_contention.run(["hist"], [4])
        rows = results["hist"]
        assert rows
        for row in rows:
            assert row["topology"] == "dancehall"
            assert "max_link_utilization" in row

    def test_default_mode_rows_are_unchanged(self):
        """Without a topology override the rows carry no new keys."""
        rows = figure11_amat.run_benchmark("hist", [4])
        assert all("topology" not in row for row in rows)

    def test_contention_amat_tracks_baseline_from_above(self):
        """Contention adds latency overall; per-point dips stay marginal.

        Surcharges only ever *add* to an individual transfer, but delaying a
        core reshuffles the interleaving, which can shave a fraction of a
        percent off one point's AMAT (fewer directory conflicts observed).
        The aggregate must still not improve, and no point may improve by
        more than a rounding-sized margin.
        """
        baseline = figure11_amat.run(["hist"], [4])["hist"]
        loaded = figure11_amat_contention.run(["hist"], [4])["hist"]
        by_key = {(r["protocol"], r["n_cores"]): r["amat"] for r in baseline}
        for row in loaded:
            assert row["amat"] >= by_key[(row["protocol"], row["n_cores"])] * 0.99
            assert row["max_link_utilization"] > 0.0  # contention really charged
