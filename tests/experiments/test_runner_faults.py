"""Campaign-level fault tolerance: recovery must be bit-identical.

A synthetic experiment (3 protocols x 2 workloads) is registered with the
runner, executed fault-free, and then re-executed under deterministically
injected faults — worker SIGKILL, shm-attach failure, torn journal writes.
After recovery (in-run retries, or a killed campaign resumed), the
deterministic projection of the campaign's point records must be
byte-identical to the fault-free run.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import types

import pytest

from repro.experiments import faults, journal, runner, sweep
from repro.sim.config import table1_config
from repro.workloads.histogram import HistogramWorkload
from repro.workloads.synthetic import SharedCounterWorkload

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the chaos grid registers its experiment module in-process, "
    "which only forked workers inherit",
)

EXPERIMENT_ID = "chaos-grid"
MODULE_NAME = "repro.experiments._chaos_grid_for_tests"
PROTOCOLS = ("MESI", "COUP", "RMO")


def _build_hist() -> HistogramWorkload:
    return HistogramWorkload(n_bins=16, n_items=300, seed=7)


def _build_counter() -> SharedCounterWorkload:
    return SharedCounterWorkload(updates_per_core=40, seed=9)


def sweep_spec() -> sweep.SweepSpec:
    points = []
    for name, build in (("hist", _build_hist), ("counter", _build_counter)):
        for protocol in PROTOCOLS:
            points.append(
                sweep.SimPoint(
                    key=f"{name}/{protocol}",
                    workload=sweep.WorkloadSpec.plain(build),
                    protocol=protocol,
                    n_cores=4,
                    config=table1_config(4),
                )
            )
    return sweep.SweepSpec(EXPERIMENT_ID, points, build=dict)


def render(results: dict) -> None:
    for key in sorted(results):
        print(f"{key}: done")


@pytest.fixture
def chaos_grid(monkeypatch):
    """Register the synthetic experiment and guarantee fault-plan hygiene."""
    module = types.ModuleType(MODULE_NAME)
    module.sweep_spec = sweep_spec
    module.render = render
    monkeypatch.setitem(sys.modules, MODULE_NAME, module)
    monkeypatch.setitem(runner.EXPERIMENT_MODULES, EXPERIMENT_ID, MODULE_NAME)
    monkeypatch.delenv("REPRO_FAULT", raising=False)
    yield
    faults.set_active_plan(None)


def _campaign(tmp_path, name, *, resume=False, extra_env=(), monkeypatch=None):
    """Run the grid campaign in-process; returns (exit code, results dir)."""
    results_dir = str(tmp_path / name)
    cache_dir = str(tmp_path / f"{name}-cache")
    for key, value in extra_env:
        monkeypatch.setenv(key, value)
    argv = [
        EXPERIMENT_ID,
        "--jobs",
        "2",
        "--results-dir",
        results_dir,
        "--cache-dir",
        cache_dir,
    ]
    if resume:
        argv.append("--resume")
    code = runner.main(argv)
    for key, _ in extra_env:
        monkeypatch.delenv(key, raising=False)
    return code, results_dir


class TestFaultRecoveryBitIdentity:
    def test_kill_and_shm_faults_recover_bit_identical(
        self, tmp_path, chaos_grid, monkeypatch, capsys
    ):
        code, clean_dir = _campaign(tmp_path, "clean", monkeypatch=monkeypatch)
        assert code == 0
        code, faulted_dir = _campaign(
            tmp_path,
            "faulted",
            monkeypatch=monkeypatch,
            extra_env=(
                ("REPRO_FAULT", "kill:point=hist/MESI;shm:point=counter"),
            ),
        )
        assert code == 0
        capsys.readouterr()  # drain captured worker/supervisor chatter
        clean = journal.campaign_fingerprint(clean_dir)
        faulted = journal.campaign_fingerprint(faulted_dir)
        assert clean and clean == faulted

    def test_torn_journal_crash_then_resume_bit_identical(
        self, tmp_path, chaos_grid, monkeypatch, capsys
    ):
        code, clean_dir = _campaign(tmp_path, "clean", monkeypatch=monkeypatch)
        assert code == 0
        # The campaign is killed mid-journal-write (exit 70)...
        code, torn_dir = _campaign(
            tmp_path,
            "torn",
            monkeypatch=monkeypatch,
            extra_env=(("REPRO_FAULT", "torn:point=hist"),),
        )
        assert code == 70
        # ...leaving a torn tail in its journal segment...
        replay = journal.replay_dir(journal.journal_dir(torn_dir))
        assert replay.truncated_segments
        # ...which a fault-free --resume recovers from exactly.
        code, torn_dir = _campaign(
            tmp_path, "torn", resume=True, monkeypatch=monkeypatch
        )
        assert code == 0
        capsys.readouterr()
        assert journal.campaign_fingerprint(clean_dir) == journal.campaign_fingerprint(
            torn_dir
        )

    def test_quarantined_point_degrades_not_kills(
        self, tmp_path, chaos_grid, monkeypatch, capsys
    ):
        code, results_dir = _campaign(
            tmp_path,
            "poisoned",
            monkeypatch=monkeypatch,
            extra_env=(
                # hist/COUP dies on every attempt: the point must be
                # quarantined while the other five points complete.
                ("REPRO_FAULT", "kill:point=hist/COUP,times=99"),
                ("REPRO_MAX_ATTEMPTS", "2"),
            ),
        )
        assert code == 1  # the experiment is reported failed, not crashed
        captured = capsys.readouterr()
        assert "quarantin" in captured.err
        import glob
        import json

        records = {}
        for path in glob.glob(os.path.join(results_dir, "points", "*", "*.json")):
            with open(path) as handle:
                record = json.load(handle)
            records[record["point"]] = record
        assert len(records) == 6
        assert records["hist/COUP"]["status"] == "quarantined"
        assert sum(r["status"] == "ok" for r in records.values()) == 5


class TestJournalCorruptionRefusal:
    def test_resume_over_damaged_journal_exits_nonzero(
        self, tmp_path, chaos_grid, monkeypatch, capsys
    ):
        code, results_dir = _campaign(tmp_path, "run", monkeypatch=monkeypatch)
        assert code == 0
        journal_dir = journal.journal_dir(results_dir)
        (segment,) = [
            os.path.join(journal_dir, name)
            for name in os.listdir(journal_dir)
            if name.endswith(".wal")
        ]
        data = bytearray(open(segment, "rb").read())
        data[len(journal.MAGIC) + 20] ^= 0xFF  # damage the FIRST record
        with open(segment, "wb") as handle:
            handle.write(bytes(data))
        code, _ = _campaign(tmp_path, "run", resume=True, monkeypatch=monkeypatch)
        assert code == 3
        assert "corrupt" in capsys.readouterr().err


class TestShmHygiene:
    def test_no_segments_survive_a_campaign(self, tmp_path, chaos_grid, monkeypatch):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no POSIX shm filesystem")
        code, _ = _campaign(tmp_path, "shm-clean", monkeypatch=monkeypatch)
        assert code == 0
        leaked = [
            name
            for name in os.listdir("/dev/shm")
            if name.startswith(f"{sweep.SHM_NAME_PREFIX}{os.getpid()}_")
        ]
        assert leaked == []

    def test_reclaim_stale_segments(self, tmp_path):
        child = multiprocessing.get_context("fork").Process(target=_noop)
        child.start()
        child.join()
        dead_pid = child.pid
        (tmp_path / f"repro_shm_{dead_pid}_abcdef").write_bytes(b"x")
        (tmp_path / f"repro_shm_{os.getpid()}_live").write_bytes(b"x")
        (tmp_path / "repro_shm_notapid_x").write_bytes(b"x")
        (tmp_path / "unrelated").write_bytes(b"x")
        reclaimed = sweep.reclaim_stale_segments(str(tmp_path))
        assert reclaimed == [f"repro_shm_{dead_pid}_abcdef"]
        assert not (tmp_path / f"repro_shm_{dead_pid}_abcdef").exists()
        assert (tmp_path / f"repro_shm_{os.getpid()}_live").exists()
        assert (tmp_path / "repro_shm_notapid_x").exists()
        assert (tmp_path / "unrelated").exists()

    def test_publish_uses_registry_and_release(self):
        trace = _build_hist().generate_columnar(2)
        handle, segment = sweep.publish_trace_shm(trace, ("test-key",))
        try:
            assert handle.shm_name.startswith(
                f"{sweep.SHM_NAME_PREFIX}{os.getpid()}_"
            )
            assert handle.shm_name in sweep._published_segments
        finally:
            sweep.release_trace_shm(segment)
        assert handle.shm_name not in sweep._published_segments
        if os.path.isdir("/dev/shm"):
            assert not os.path.exists(os.path.join("/dev/shm", handle.shm_name))


def _noop() -> None:
    pass
