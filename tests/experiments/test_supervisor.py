"""Tests for the supervised worker pool (death, timeout, retry, quarantine)."""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from repro.experiments.supervisor import Supervisor, TaskSpec, supervise

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="supervisor tests drive real worker processes via fork",
)


def _square(payload: object, attempt: int) -> object:
    return payload * payload  # type: ignore[operator]


def _echo_attempt(payload: object, attempt: int) -> object:
    return (payload, attempt)


def _raise_value_error(payload: object, attempt: int) -> object:
    raise ValueError(f"bad payload {payload!r}")


def _die_on_first_attempt(payload: object, attempt: int) -> object:
    if payload == "poison" and attempt == 0:
        os.kill(os.getpid(), signal.SIGKILL)
    return (payload, attempt)


def _always_die(payload: object, attempt: int) -> object:
    os.kill(os.getpid(), signal.SIGKILL)
    return None  # pragma: no cover


def _hang_on_first_attempt(payload: object, attempt: int) -> object:
    if attempt == 0:
        time.sleep(60)
    return (payload, attempt)


def _run(tasks, worker_fn, jobs=2, **kwargs):
    return {o.task_id: o for o in supervise(tasks, worker_fn, jobs, **kwargs)}


class TestHappyPath:
    def test_all_tasks_complete(self):
        tasks = [TaskSpec(task_id=f"t{i}", payload=i, timeout_s=60) for i in range(5)]
        outcomes = _run(tasks, _square)
        assert len(outcomes) == 5
        for i in range(5):
            outcome = outcomes[f"t{i}"]
            assert outcome.status == "ok"
            assert outcome.value == i * i
            assert outcome.attempts == 1
            assert outcome.failures == ()

    def test_single_worker(self):
        tasks = [TaskSpec(task_id=f"t{i}", payload=i, timeout_s=60) for i in range(3)]
        outcomes = _run(tasks, _square, jobs=1)
        assert all(o.status == "ok" for o in outcomes.values())

    def test_duplicate_task_ids_rejected(self):
        tasks = [TaskSpec("dup", 1, 60), TaskSpec("dup", 2, 60)]
        with pytest.raises(ValueError, match="duplicate"):
            list(supervise(tasks, _square, 1))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            Supervisor(_square, 0)
        with pytest.raises(ValueError):
            Supervisor(_square, 1, max_attempts=0)
        with pytest.raises(ValueError):
            Supervisor(_square, 1, backoff_base=0)


class TestInBandErrors:
    def test_task_exception_reported_not_retried(self):
        outcomes = _run([TaskSpec("t", "x", 60)], _raise_value_error)
        outcome = outcomes["t"]
        assert outcome.status == "error"
        assert outcome.attempts == 1  # deterministic failures never retry
        assert "bad payload 'x'" in outcome.value

    def test_error_does_not_poison_siblings(self):
        tasks = [TaskSpec("bad", "bad", 60), TaskSpec("good", "good", 60)]
        outcomes = _run(tasks, _fail_only_bad)
        assert outcomes["bad"].status == "error"
        assert outcomes["good"].status == "ok"
        assert outcomes["good"].value == "good"


def _fail_only_bad(payload: object, attempt: int) -> object:
    if payload == "bad":
        raise RuntimeError("boom")
    return payload


class TestWorkerDeath:
    def test_killed_worker_is_detected_and_task_retried(self):
        tasks = [TaskSpec("poison", "poison", 60), TaskSpec("fine", "fine", 60)]
        outcomes = _run(tasks, _die_on_first_attempt, on_event=lambda _: None)
        poison = outcomes["poison"]
        assert poison.status == "ok"
        assert poison.value == ("poison", 1)  # the retry ran attempt 1
        assert poison.attempts == 2
        assert len(poison.failures) == 1
        assert outcomes["fine"].status == "ok"
        assert outcomes["fine"].attempts == 1

    def test_persistent_death_quarantines(self):
        events = []
        outcomes = _run(
            [TaskSpec("t", 1, 60)],
            _always_die,
            jobs=1,
            max_attempts=2,
            on_event=events.append,
        )
        outcome = outcomes["t"]
        assert outcome.status == "quarantined"
        assert outcome.attempts == 2
        assert outcome.value is None
        assert len(outcome.failures) == 2
        assert any("quarantining" in event for event in events)


class TestTimeouts:
    def test_hung_worker_is_reaped_and_task_retried(self):
        tasks = [TaskSpec("slow", "slow", timeout_s=1.5)]
        start = time.monotonic()
        outcomes = _run(tasks, _hang_on_first_attempt, jobs=1, on_event=lambda _: None)
        elapsed = time.monotonic() - start
        outcome = outcomes["slow"]
        assert outcome.status == "ok"
        assert outcome.value == ("slow", 1)
        assert outcome.attempts == 2
        assert "deadline" in outcome.failures[0]
        assert elapsed < 30  # reaped at ~1.5s, not after the 60s sleep


class TestDeterministicBackoff:
    def test_retry_eligibility_counts_events_not_seconds(self):
        supervisor = Supervisor(_square, 1, max_attempts=3, backoff_base=4)
        # No wall-clock sleeps are involved in backoff bookkeeping: the
        # eligibility horizon is derived purely from the event counter.
        from repro.experiments.supervisor import _Pending

        supervisor._events = 10
        assert supervisor._pick_pending(
            [_Pending(TaskSpec("t", 1, 60), 1, eligible_at=11)], True
        ) is None
        assert (
            supervisor._pick_pending(
                [_Pending(TaskSpec("t", 1, 60), 1, eligible_at=10)], True
            )
            == 0
        )
        # Starvation guard: with no busy workers the counter cannot advance,
        # so the leftmost pending task runs regardless of its horizon.
        assert (
            supervisor._pick_pending(
                [_Pending(TaskSpec("t", 1, 60), 1, eligible_at=99)], False
            )
            == 0
        )

    def test_attempt_index_travels_to_worker(self):
        outcomes = _run([TaskSpec("t", "p", 60)], _echo_attempt, jobs=1)
        assert outcomes["t"].value == ("p", 0)


class TestLifecycleHook:
    def test_happy_path_emits_spawn_dispatch_complete(self):
        seen = []
        tasks = [TaskSpec(task_id=f"t{i}", payload=i, timeout_s=60) for i in range(3)]
        outcomes = _run(
            tasks, _square, jobs=2, on_lifecycle=lambda e, f: seen.append((e, f))
        )
        assert all(o.status == "ok" for o in outcomes.values())
        kinds = [event for event, _ in seen]
        assert kinds.count("dispatch") == 3
        assert kinds.count("complete") == 3
        assert "spawn" in kinds
        dispatches = {f["task"] for e, f in seen if e == "dispatch"}
        assert dispatches == {"t0", "t1", "t2"}
        completes = [f for e, f in seen if e == "complete"]
        assert all(f["status"] == "ok" and f["attempts"] == 1 for f in completes)
        spawns = [f for e, f in seen if e == "spawn"]
        assert all(isinstance(f["pid"], int) for f in spawns)

    def test_retry_and_quarantine_are_observed(self):
        seen = []
        outcomes = _run(
            [TaskSpec("t", 1, 60)],
            _always_die,
            jobs=1,
            max_attempts=2,
            on_event=lambda _: None,
            on_lifecycle=lambda e, f: seen.append((e, f)),
        )
        assert outcomes["t"].status == "quarantined"
        retries = [f for e, f in seen if e == "retry"]
        assert len(retries) == 1
        assert retries[0]["task"] == "t"
        assert retries[0]["attempt"] == 1
        quarantines = [f for e, f in seen if e == "quarantine"]
        assert len(quarantines) == 1
        assert quarantines[0]["attempts"] == 2
        assert "died" in quarantines[0]["reason"]

    def test_hook_default_is_silent(self):
        # No hook: nothing to call, nothing recorded — the guard keeps the
        # fast path a single attribute test.
        outcomes = _run([TaskSpec("t", 3, 60)], _square, jobs=1)
        assert outcomes["t"].value == 9


class TestShutdown:
    def test_shutdown_is_idempotent_and_kills_workers(self):
        supervisor = Supervisor(_square, 2)
        outcomes = list(supervisor.run([TaskSpec("t", 2, 60)]))
        assert outcomes[0].value == 4
        supervisor.shutdown()  # run() already shut down; must be a no-op
        assert supervisor._slots == []
