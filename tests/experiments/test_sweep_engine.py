"""Unit and integration tests for the declarative sweep engine."""

from __future__ import annotations

import json

import pytest

from repro.experiments import settings, sweep
from repro.experiments import traffic_reduction
from repro.experiments.runner import main as runner_main
from repro.experiments.sweep import (
    ExecutionContext,
    FuncPoint,
    ResultCache,
    SimPoint,
    SweepSpec,
    TraceCache,
    WorkloadSpec,
    execute,
)
from repro.sim.config import small_test_config, table1_config
from repro.sim.simulator import simulate
from repro.software.privatization import PrivatizationLevel
from repro.workloads import HistogramWorkload, MultiCounterWorkload, UpdateStyle


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setattr(settings, "_scale", 0.05)
    monkeypatch.setattr(settings, "_max_cores", 8)
    yield


def hist_factory(style=UpdateStyle.COMMUTATIVE, n_bins=32, n_items=400):
    return HistogramWorkload(n_bins=n_bins, n_items=n_items, update_style=style)


class TestTraceKey:
    def test_same_parameters_same_key(self):
        assert hist_factory().trace_key() == hist_factory().trace_key()

    def test_any_parameter_changes_the_key(self):
        base = hist_factory().trace_key()
        assert hist_factory(n_bins=64).trace_key() != base
        assert hist_factory(style=UpdateStyle.ATOMIC).trace_key() != base
        assert HistogramWorkload(
            n_bins=32, n_items=400, update_style=UpdateStyle.COMMUTATIVE, seed=7
        ).trace_key() != base

    def test_different_classes_never_collide(self):
        counter = MultiCounterWorkload(n_counters=32, updates_per_core=10)
        assert counter.trace_key() != hist_factory().trace_key()

    def test_unkeyable_attribute_makes_key_instance_unique(self):
        first = hist_factory()
        second = hist_factory()
        first.weird = object()
        second.weird = object()
        # Refusing to share is the safe failure mode for unknown parameters.
        assert first.trace_key() != second.trace_key()
        # But the key is stable for one instance, and the uniqueness token
        # survives the other instance being freed (no id() reuse hazard).
        assert first.trace_key() == first.trace_key()
        del second
        third = hist_factory()
        third.weird = object()
        assert first.trace_key() != third.trace_key()

    def test_key_is_hashable_and_address_map_excluded(self):
        workload = hist_factory()
        key = workload.trace_key()
        hash(key)
        assert "addresses" not in dict(key[1])


class TestTraceCache:
    def test_hit_returns_same_object(self):
        cache = TraceCache()
        spec = WorkloadSpec.plain(hist_factory)
        first = cache.get(spec, 4)
        second = cache.get(spec, 4)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_distinct_variants_do_not_share(self):
        cache = TraceCache()
        plain = WorkloadSpec.plain(hist_factory)
        privatized = WorkloadSpec.privatized(hist_factory, PrivatizationLevel.CORE)
        assert cache.get(plain, 4) is not cache.get(privatized, 4)
        assert cache.misses == 2

    def test_lru_bound(self):
        cache = TraceCache(max_traces=2)
        specs = [
            WorkloadSpec.plain(lambda n_bins=n_bins: hist_factory(n_bins=n_bins))
            for n_bins in (16, 32, 64)
        ]
        for spec in specs:
            cache.get(spec, 2)
        assert len(cache) == 2
        cache.get(specs[0], 2)  # evicted: regenerating counts as a miss
        assert cache.misses == 4

    def test_shared_trace_simulates_identically(self):
        cache = TraceCache()
        spec = WorkloadSpec.plain(hist_factory)
        config = small_test_config(4)
        shared = simulate(cache.get(spec, 4), config, "COUP")
        fresh = simulate(spec.materialize(4), config, "COUP")
        assert shared == fresh


class TestSimulationResultRoundtrip:
    def test_json_roundtrip_is_bit_identical(self):
        workload = hist_factory()
        result = simulate(workload.generate(2), table1_config(2), "COUP", track_values=True)
        encoded = json.loads(json.dumps(result.to_jsonable()))
        from repro.sim.stats import SimulationResult

        assert SimulationResult.from_jsonable(encoded) == result


class TestResultCache:
    def _point(self):
        return SimPoint(
            "p", WorkloadSpec.plain(hist_factory), "COUP", 2, table1_config(2)
        )

    def test_store_then_load(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        point = self._point()
        value, cached = sweep.run_point(point, result_cache=cache)
        assert not cached
        replay, cached = sweep.run_point(point, result_cache=cache)
        assert cached
        assert replay == value

    def test_write_only_cache_never_replays(self, tmp_path):
        writer = ResultCache(str(tmp_path), read=False)
        point = self._point()
        sweep.run_point(point, result_cache=writer)
        _value, cached = sweep.run_point(point, result_cache=writer)
        assert not cached  # read disabled
        reader = ResultCache(str(tmp_path))
        _value, cached = sweep.run_point(point, result_cache=reader)
        assert cached  # but the entry was persisted

    def test_scale_is_part_of_the_fingerprint(self, tmp_path, monkeypatch):
        cache = ResultCache(str(tmp_path))
        point = self._point()
        sweep.run_point(point, result_cache=cache)
        monkeypatch.setattr(settings, "_scale", 0.06)
        _value, cached = sweep.run_point(point, result_cache=cache)
        assert not cached

    def test_uncacheable_func_point(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        point = FuncPoint("f", lambda ctx: {"x": 1})
        _value, cached = sweep.run_point(point, result_cache=cache)
        assert not cached
        _value, cached = sweep.run_point(point, result_cache=cache)
        assert not cached  # fingerprint_data=None -> never cached

    def test_corrupt_cache_entry_recomputes(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        point = self._point()
        sweep.run_point(point, result_cache=cache)
        for path in tmp_path.iterdir():
            path.write_text("{ not json")
        value, cached = sweep.run_point(point, result_cache=cache)
        assert not cached
        assert value.run_cycles > 0


class TestExecute:
    def test_execute_resumes_from_cache(self, tmp_path):
        spec = traffic_reduction.sweep_spec(n_cores=2)
        cache = ResultCache(str(tmp_path))
        first = execute(spec, result_cache=cache)
        assert cache.stores == len(spec.points)
        second = execute(spec, result_cache=cache)
        assert cache.loads == len(spec.points)
        assert spec.rows(first) == spec.rows(second)

    def test_duplicate_point_keys_rejected(self):
        point = FuncPoint("dup", lambda ctx: 1)
        with pytest.raises(ValueError, match="duplicate sweep point"):
            SweepSpec("x", [point, point], lambda results: results)

    def test_func_point_can_share_traces(self):
        spec = WorkloadSpec.plain(hist_factory)
        ctx = ExecutionContext(TraceCache())
        point = FuncPoint("stats", lambda c: c.trace(spec, 2).total_accesses)
        assert point.execute(ctx) == spec.materialize(2).total_accesses


class TestRunnerPointMode:
    def test_jobs_resume_replays_every_point(self, tmp_path, capsys):
        results_dir = str(tmp_path / "records")
        cache_dir = str(tmp_path / "cache")
        args = ["traffic", "--jobs", "2", "--results-dir", results_dir, "--cache-dir", cache_dir]
        assert runner_main(args) == 0
        first_out = capsys.readouterr().out
        assert "Sec. 5.2" in first_out

        assert runner_main(args + ["--resume"]) == 0
        second_out = capsys.readouterr().out
        # Tables rebuilt from cached points must match the computed run
        # (modulo the timing line).
        strip = lambda text: [  # noqa: E731
            line for line in text.splitlines() if not line.startswith("[traffic] completed")
        ]
        assert strip(second_out) == strip(first_out)

        point_records = sorted((tmp_path / "records" / "points" / "traffic").glob("*.json"))
        assert point_records
        records = [json.loads(path.read_text()) for path in point_records]
        assert all(record["cached"] for record in records)
        assert all(record["status"] == "ok" for record in records)
        assert {record["point"] for record in records} == set(
            traffic_reduction.sweep_spec(n_cores=settings.max_cores()).point_keys
        )

    def test_experiment_record_reports_point_counts(self, tmp_path, capsys):
        results_dir = str(tmp_path / "records")
        assert runner_main(["table1", "--jobs", "2", "--results-dir", results_dir]) == 0
        capsys.readouterr()
        record = json.loads((tmp_path / "records" / "table1.json").read_text())
        assert record["status"] == "ok"
        assert record["n_points"] == 1
        assert record["cached_points"] == 0
        assert "Table 1" in record["output"]

    def test_failing_point_fails_the_experiment_only(self, tmp_path, capsys, monkeypatch):
        import repro.experiments.runner as runner_module

        monkeypatch.setitem(
            runner_module.EXPERIMENT_MODULES, "boom", "repro.experiments.does_not_exist"
        )
        results_dir = str(tmp_path / "records")
        assert runner_main(["boom", "table1", "--jobs", "2", "--results-dir", results_dir]) == 1
        captured = capsys.readouterr()
        assert "Table 1" in captured.out  # the healthy sibling still ran
        assert "boom" in captured.err


class TestColumnarTraceCache:
    def test_cache_serves_columnar_traces(self):
        from repro.sim.columnar import ColumnarTrace

        cache = TraceCache()
        trace = cache.get(WorkloadSpec.plain(hist_factory), 4)
        assert isinstance(trace, ColumnarTrace)
        assert cache.total_bytes == trace.nbytes > 0
        stats = cache.stats()
        assert stats["traces"] == 1 and stats["misses"] == 1
        assert stats["bytes"] == trace.nbytes

    def test_columnar_cache_simulates_identically_to_object_form(self):
        cache = TraceCache()
        spec = WorkloadSpec.plain(hist_factory)
        config = small_test_config(4)
        columnar = simulate(cache.get(spec, 4), config, "COUP", track_values=True)
        fresh = simulate(spec.materialize(4), config, "COUP", track_values=True)
        assert columnar == fresh

    def test_unpackable_trace_falls_back_to_object_form(self):
        from repro.sim.access import MemoryAccess, WorkloadTrace

        class WeirdWorkload(MultiCounterWorkload):
            def generate_columnar(self, n_cores):
                raise AssertionError("must not be used for unpackable traces")

            def generate(self, n_cores):
                trace = [MemoryAccess.store(64, value=("un", "packable"))]
                return WorkloadTrace(name="weird", per_core=[trace] * n_cores)

        cache = TraceCache()
        spec = WorkloadSpec(
            lambda: WeirdWorkload(n_counters=4, updates_per_core=2),
            materialize=lambda workload, n_cores: workload.generate(n_cores),
        )
        trace = cache.get(spec, 2)
        assert trace.per_core[0][0].value == ("un", "packable")
        assert cache.total_bytes == 0  # object-form fallback is not packed

    def test_store_dir_roundtrips_traces_through_npz(self, tmp_path):
        store = str(tmp_path / "traces")
        first = TraceCache(store_dir=store)
        spec = WorkloadSpec.plain(hist_factory)
        trace = first.get(spec, 4)
        assert first.disk_stores == 1 and first.disk_loads == 0

        second = TraceCache(store_dir=store)
        loaded = second.get(WorkloadSpec.plain(hist_factory), 4)
        assert second.disk_loads == 1 and second.disk_stores == 0
        assert loaded == trace

    def test_corrupt_npz_regenerates(self, tmp_path):
        store = str(tmp_path / "traces")
        first = TraceCache(store_dir=store)
        first.get(WorkloadSpec.plain(hist_factory), 4)
        for path in (tmp_path / "traces").iterdir():
            path.write_bytes(b"not an npz")
        second = TraceCache(store_dir=store)
        trace = second.get(WorkloadSpec.plain(hist_factory), 4)
        assert second.disk_loads == 0  # corrupt file rejected, regenerated
        assert trace.total_accesses > 0


class TestSharedMemoryTraces:
    def test_publish_attach_roundtrip(self):
        spec = WorkloadSpec.plain(hist_factory)
        key = spec.key(4)
        trace = spec.materialize_columnar(4)
        handle, segment = sweep.publish_trace_shm(trace, key)
        try:
            attached = sweep.attach_trace_shm(handle)
            assert attached == trace
            assert not attached.columns[0].flags.writeable
            # Zero-copy: the attached arrays view the shared segment rather
            # than owning their data.
            assert not attached.columns[0].flags.owndata
            config = small_test_config(4)
            assert simulate(attached, config, "COUP") == simulate(trace, config, "COUP")
            del attached
        finally:
            segment.close()
            segment.unlink()

    def test_jobs_with_and_without_shm_match(self, tmp_path, capsys):
        strip = lambda text: [  # noqa: E731
            line
            for line in text.splitlines()
            if not line.startswith("[traffic] completed")
        ]
        assert runner_main(["traffic", "--jobs", "2", "--results-dir", str(tmp_path / "a")]) == 0
        shm_out = capsys.readouterr().out
        assert (
            runner_main(
                ["traffic", "--jobs", "2", "--no-shm", "--results-dir", str(tmp_path / "b")]
            )
            == 0
        )
        no_shm_out = capsys.readouterr().out
        assert strip(shm_out) == strip(no_shm_out)
