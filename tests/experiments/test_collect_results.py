"""scripts/collect_results.py folding tolerance.

``--resume`` sweeps routinely fold point records written by older engine
versions: pre-topology records carry no ``bytes_by_type`` or
``max_link_utilization`` keys, and may hold nulls where newer records hold
numbers.  Folding must take what it can and never raise.
"""

from __future__ import annotations

import importlib.util
import json
import os
import sys

import pytest

_SCRIPT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "scripts",
    "collect_results.py",
)


@pytest.fixture(scope="module")
def collect_results():
    spec = importlib.util.spec_from_file_location("collect_results", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    previous = sys.modules.get("collect_results")
    sys.modules["collect_results"] = module
    try:
        spec.loader.exec_module(module)
        yield module
    finally:
        if previous is None:
            sys.modules.pop("collect_results", None)
        else:
            sys.modules["collect_results"] = previous


def _write_point(results_dir, experiment_id, stem, record):
    directory = os.path.join(results_dir, "points", experiment_id)
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, f"{stem}.json"), "w") as handle:
        json.dump(record, handle)


def test_folds_pre_topology_records_without_link_stats(tmp_path, collect_results):
    results_dir = str(tmp_path)
    base = {"scale": 0.35, "max_cores": 32, "status": "ok", "cached": False}
    # A pre-PR-4 record: summary has neither bytes_by_type nor
    # max_link_utilization, and elapsed_s is null.
    _write_point(
        results_dir,
        "figure10",
        "old",
        {
            **base,
            "experiment_id": "figure10",
            "point": "hist/1/MESI",
            "elapsed_s": None,
            "summary": {"run_cycles": 123.0, "amat": 4.5},
        },
    )
    # A current record with full interconnect statistics.
    _write_point(
        results_dir,
        "figure10",
        "new",
        {
            **base,
            "experiment_id": "figure10",
            "point": "hist/8/COUP",
            "elapsed_s": 1.25,
            "summary": {
                "run_cycles": 456.0,
                "bytes_by_type": {"DATA_RESPONSE": 100, "ACK": 8},
                "max_link_utilization": 0.25,
            },
        },
    )
    folded = collect_results.collect_point_records(
        results_dir, scale=0.35, max_cores=32
    )
    digest = folded["figure10"]
    assert digest["n_points"] == 2
    assert digest["n_failed"] == 0
    assert digest["elapsed_s"] == 1.25  # null elapsed folds as zero
    assert digest["bytes_by_type"] == {"DATA_RESPONSE": 100, "ACK": 8}
    assert digest["max_link_utilization"] == 0.25


def test_malformed_record_is_skipped_not_fatal(tmp_path, collect_results, capsys):
    results_dir = str(tmp_path)
    base = {"scale": 0.35, "max_cores": 32, "status": "ok", "cached": False}
    # `point` key missing entirely: filtered by the shape guard.
    _write_point(
        results_dir, "traffic", "no-point", {**base, "experiment_id": "traffic"}
    )
    # Null summary values where numbers are expected must not abort folding.
    _write_point(
        results_dir,
        "traffic",
        "nulls",
        {
            **base,
            "experiment_id": "traffic",
            "point": "spmv/8/COUP",
            "elapsed_s": "not-a-number",
            "summary": {
                "bytes_by_type": {"ACK": None},
                "max_link_utilization": None,
            },
        },
    )
    _write_point(
        results_dir,
        "traffic",
        "good",
        {
            **base,
            "experiment_id": "traffic",
            "point": "spmv/1/MESI",
            "elapsed_s": 0.5,
            "summary": {"run_cycles": 1.0},
        },
    )
    folded = collect_results.collect_point_records(
        results_dir, scale=0.35, max_cores=32
    )
    digest = folded["traffic"]
    # The good record folded; the null-laden one was tolerated or skipped
    # with a message, and nothing raised.
    assert any(p["point"] == "spmv/1/MESI" for p in digest["points"])
    assert digest.get("bytes_by_type", {}).get("ACK") is None
    err = capsys.readouterr().err
    assert "skipping malformed point record" in err


def test_wrong_scale_records_ignored(tmp_path, collect_results):
    results_dir = str(tmp_path)
    _write_point(
        results_dir,
        "figure11",
        "stale",
        {
            "experiment_id": "figure11",
            "point": "bfs/8/COUP",
            "status": "ok",
            "scale": 0.05,
            "max_cores": 8,
            "elapsed_s": 1.0,
        },
    )
    assert (
        collect_results.collect_point_records(results_dir, scale=0.35, max_cores=32)
        == {}
    )


def _write_journal(results_dir, records, torn_tail=False):
    from repro.experiments import journal

    directory = journal.journal_dir(results_dir)
    path = journal.fresh_segment_path(directory, "test")
    with journal.JournalWriter(path) as writer:
        for record in records:
            writer.append(record)
    if torn_tail:
        with open(path, "ab") as handle:
            handle.write(journal.encode_record({"kind": "point"})[:9])
    return path


def test_journal_digest_folds_statuses_and_torn_tails(tmp_path, collect_results):
    results_dir = str(tmp_path)
    _write_journal(
        results_dir,
        [
            {"kind": "point", "experiment_id": "traffic", "point": "a", "status": "ok"},
            {"kind": "point", "experiment_id": "traffic", "point": "b", "status": "quarantined"},
            {"kind": "point", "experiment_id": "traffic", "point": "b", "status": "ok"},
        ],
        torn_tail=True,
    )
    digest = collect_results.collect_journal_records(results_dir)
    assert digest["segments"] == 1
    assert digest["records"] == 3
    assert digest["points"] == 2
    # the quarantined record for b was superseded by its ok record
    assert digest["status_counts"] == {"ok": 2}
    assert digest["truncated_segments"] == ["segment-test-000.wal"]


def test_journal_absent_returns_none(tmp_path, collect_results):
    assert collect_results.collect_journal_records(str(tmp_path)) is None


def test_corrupt_journal_raises_for_nonzero_exit(tmp_path, collect_results):
    from repro.experiments.journal import JournalCorruptError

    results_dir = str(tmp_path)
    path = _write_journal(
        results_dir,
        [
            {"kind": "point", "experiment_id": "t", "point": "a", "status": "ok"},
            {"kind": "point", "experiment_id": "t", "point": "b", "status": "ok"},
        ],
    )
    data = bytearray(open(path, "rb").read())
    data[15] ^= 0xFF  # damage the first record; a valid record follows
    with open(path, "wb") as handle:
        handle.write(bytes(data))
    with pytest.raises(JournalCorruptError):
        collect_results.collect_journal_records(results_dir)


def test_verification_section_folds_all_three_lanes(collect_results, monkeypatch):
    monkeypatch.delenv("REPRO_VERIFY_MUTATE", raising=False)
    section = collect_results.collect_verification(jobs=1)
    assert section["verified"] is True
    assert section["mutation"] is None
    assert section["exhaustive"]["states"] > 1000
    assert section["exhaustive"]["verified"] is True
    assert section["swarm"]["verified"] is True
    assert section["differential"]["verified"] is True
    assert section["differential"]["checks"]  # live checks actually ran


def test_verification_section_surfaces_an_injected_mutation(
    collect_results, monkeypatch
):
    monkeypatch.setenv("REPRO_VERIFY_MUTATE", "dir.GetX.keep_sharers")
    section = collect_results.collect_verification(jobs=1)
    assert section["mutation"] == "dir.GetX.keep_sharers"
    assert section["verified"] is False
