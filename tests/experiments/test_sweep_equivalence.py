"""Equivalence suite pinning the sweep-engine refactor.

Every experiment module was rewritten from hand-rolled loops onto the
declarative sweep engine with the contract that ``run(...)`` return values
(and therefore the printed tables, which are a pure function of the rows)
stay byte-identical.  This module keeps *frozen copies of the pre-refactor
implementations* — direct ``simulate(...)`` loops — and asserts exact
equality against the engine-backed ``run(...)`` for all 12 experiment ids.

It also pins the engine's sharing semantics: one materialized trace run
under several protocols (or machine configs) must produce bit-identical
:class:`SimulationResult` objects to regenerating the trace per run.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments import (
    ablation_hierarchical_reduction,
    ablation_interleaving,
    figure02_histogram_bins,
    figure08_verification,
    figure10_speedups,
    figure11_amat,
    figure12_privatization,
    figure13_refcount,
    sensitivity_reduction_unit,
    settings,
    table1_configuration,
    table2_benchmarks,
    traffic_reduction,
)
from repro.experiments.paper_workloads import PAPER_WORKLOAD_FACTORIES
from repro.sim.config import ReductionUnitConfig, table1_config
from repro.sim.simulator import compare_protocols, simulate
from repro.software.privatization import PrivatizationLevel
from repro.verification import verify_protocol
from repro.workloads import (
    CountMode,
    DelayedRefcountWorkload,
    HistogramWorkload,
    ImmediateRefcountWorkload,
    InterleavedReadUpdateWorkload,
    MultiCounterWorkload,
    RefcountScheme,
    UpdateStyle,
)


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    """Shrink every experiment so the whole module runs in seconds."""
    monkeypatch.setattr(settings, "_scale", 0.05)
    monkeypatch.setattr(settings, "_max_cores", 8)
    yield


# ---------------------------------------------------------------------------
# Frozen pre-refactor implementations (hand-rolled simulate() loops)
# ---------------------------------------------------------------------------


def legacy_figure10_run_benchmark(name, core_counts):
    factory = PAPER_WORKLOAD_FACTORIES[name]
    core_counts = list(core_counts)
    if 1 not in core_counts:
        core_counts = [1] + core_counts
    baseline_workload = factory(UpdateStyle.ATOMIC).generate(1)
    baseline = simulate(baseline_workload, table1_config(1), "MESI", track_values=False)
    rows = []
    for n_cores in core_counts:
        config = table1_config(n_cores)
        mesi_trace = factory(UpdateStyle.ATOMIC).generate(n_cores)
        coup_trace = factory(UpdateStyle.COMMUTATIVE).generate(n_cores)
        mesi = simulate(mesi_trace, config, "MESI", track_values=False)
        coup = simulate(coup_trace, config, "COUP", track_values=False)
        rows.append(
            {
                "benchmark": name,
                "n_cores": n_cores,
                "mesi_speedup": baseline.run_cycles / mesi.run_cycles,
                "coup_speedup": baseline.run_cycles / coup.run_cycles,
                "coup_over_mesi": mesi.run_cycles / coup.run_cycles,
            }
        )
    return rows


def legacy_figure11_run_benchmark(name, core_points):
    factory = PAPER_WORKLOAD_FACTORIES[name]
    rows = []
    normalisation = None
    for n_cores in core_points:
        config = table1_config(n_cores)
        for protocol, style in (("COUP", UpdateStyle.COMMUTATIVE), ("MESI", UpdateStyle.ATOMIC)):
            trace = factory(style).generate(n_cores)
            result = simulate(trace, config, protocol, track_values=False)
            row = {
                "benchmark": name,
                "protocol": protocol,
                "n_cores": n_cores,
                "amat": result.amat,
            }
            row.update(result.amat_breakdown())
            rows.append(row)
            if normalisation is None and protocol == "COUP":
                normalisation = result.amat
    normalisation = normalisation or 1.0
    for row in rows:
        row["relative_amat"] = row["amat"] / normalisation if normalisation else 0.0
    return rows


def legacy_figure2_run(bin_counts, n_cores, n_items):
    n_cores = min(n_cores, settings.max_cores())
    config = table1_config(n_cores)
    rows = []
    for n_bins in bin_counts:
        coup_workload = HistogramWorkload(
            n_bins=n_bins, n_items=n_items, update_style=UpdateStyle.COMMUTATIVE
        )
        atomic_workload = HistogramWorkload(
            n_bins=n_bins, n_items=n_items, update_style=UpdateStyle.ATOMIC
        )
        privatized = HistogramWorkload(
            n_bins=n_bins, n_items=n_items, update_style=UpdateStyle.ATOMIC
        ).generate_privatized(n_cores, level=PrivatizationLevel.CORE)
        coup = simulate(coup_workload.generate(n_cores), config, "COUP", track_values=False)
        atomics = simulate(atomic_workload.generate(n_cores), config, "MESI", track_values=False)
        privatization = simulate(privatized, config, "MESI", track_values=False)
        rows.append(
            {
                "n_bins": n_bins,
                "coup_cycles": coup.run_cycles,
                "atomics_cycles": atomics.run_cycles,
                "privatization_cycles": privatization.run_cycles,
            }
        )
    baseline = rows[0]["coup_cycles"]
    for row in rows:
        row["coup_rel"] = baseline / row["coup_cycles"]
        row["atomics_rel"] = baseline / row["atomics_cycles"]
        row["privatization_rel"] = baseline / row["privatization_cycles"]
    return rows


def legacy_figure12_run_bin_count(n_bins, core_counts, n_items):
    core_counts = list(core_counts)
    if 1 not in core_counts:
        core_counts = [1] + core_counts

    def make_workload():
        return HistogramWorkload(
            n_bins=n_bins, n_items=n_items, update_style=UpdateStyle.COMMUTATIVE
        )

    baseline = simulate(make_workload().generate(1), table1_config(1), "MESI", track_values=False)
    rows = []
    for n_cores in core_counts:
        config = table1_config(n_cores)
        coup = simulate(make_workload().generate(n_cores), config, "COUP", track_values=False)
        core_priv = simulate(
            make_workload().generate_privatized(n_cores, level=PrivatizationLevel.CORE),
            config,
            "MESI",
            track_values=False,
        )
        socket_priv = simulate(
            make_workload().generate_privatized(
                n_cores,
                level=PrivatizationLevel.SOCKET,
                cores_per_socket=config.cores_per_chip,
            ),
            config,
            "MESI",
            track_values=False,
        )
        rows.append(
            {
                "n_bins": n_bins,
                "n_cores": n_cores,
                "coup_speedup": baseline.run_cycles / coup.run_cycles,
                "core_privatization_speedup": baseline.run_cycles / core_priv.run_cycles,
                "socket_privatization_speedup": baseline.run_cycles / socket_priv.run_cycles,
            }
        )
    return rows


def legacy_figure13_run_immediate(count_mode, core_counts, n_counters, updates_per_thread):
    core_counts = list(core_counts)
    if 1 not in core_counts:
        core_counts = [1] + core_counts

    def workload(scheme):
        return ImmediateRefcountWorkload(
            n_counters=n_counters,
            updates_per_thread=updates_per_thread,
            scheme=scheme,
            count_mode=count_mode,
        )

    baseline = simulate(
        workload(RefcountScheme.XADD).generate(1), table1_config(1), "MESI", track_values=False
    )
    rows = []
    for n_cores in core_counts:
        config = table1_config(n_cores)
        coup = simulate(
            workload(RefcountScheme.COUP).generate(n_cores), config, "COUP", track_values=False
        )
        xadd = simulate(
            workload(RefcountScheme.XADD).generate(n_cores), config, "MESI", track_values=False
        )
        snzi = simulate(
            workload(RefcountScheme.SNZI).generate(n_cores), config, "MESI", track_values=False
        )
        rows.append(
            {
                "count_mode": count_mode.value,
                "n_cores": n_cores,
                "coup_speedup": n_cores * baseline.run_cycles / coup.run_cycles,
                "xadd_speedup": n_cores * baseline.run_cycles / xadd.run_cycles,
                "snzi_speedup": n_cores * baseline.run_cycles / snzi.run_cycles,
            }
        )
    return rows


def legacy_figure13_run_delayed(updates_per_epoch_values, n_cores, n_counters):
    config = table1_config(n_cores)
    rows = []
    for updates_per_epoch in updates_per_epoch_values:
        coup_workload = DelayedRefcountWorkload(
            n_counters=n_counters,
            updates_per_epoch=updates_per_epoch,
            scheme=RefcountScheme.COUP,
        )
        refcache_workload = DelayedRefcountWorkload(
            n_counters=n_counters,
            updates_per_epoch=updates_per_epoch,
            scheme=RefcountScheme.REFCACHE,
        )
        coup = simulate(coup_workload.generate(n_cores), config, "COUP", track_values=False)
        refcache = simulate(
            refcache_workload.generate(n_cores), config, "MESI", track_values=False
        )
        total_updates = updates_per_epoch * coup_workload.n_epochs * n_cores
        rows.append(
            {
                "updates_per_epoch": updates_per_epoch,
                "coup_performance": 1000.0 * total_updates / coup.run_cycles,
                "refcache_performance": 1000.0 * total_updates / refcache.run_cycles,
                "coup_over_refcache": refcache.run_cycles / coup.run_cycles,
            }
        )
    return rows


def legacy_table2_run():
    rows = []
    config = table1_config(1)
    for name, factory in PAPER_WORKLOAD_FACTORIES.items():
        workload = factory(UpdateStyle.COMMUTATIVE)
        stats = workload.stats(1)
        sequential = simulate(workload.generate(1), config, "MESI", track_values=False)
        rows.append(
            {
                "benchmark": name,
                "comm_ops": workload.comm_op_label,
                "accesses": stats.total_accesses,
                "instructions": stats.total_instructions,
                "comm_op_fraction": stats.comm_op_fraction,
                "seq_run_kcycles": sequential.run_cycles / 1000.0,
            }
        )
    return rows


def legacy_traffic_run(n_cores):
    config = table1_config(n_cores)
    rows = []
    for name, factory in PAPER_WORKLOAD_FACTORIES.items():
        mesi = simulate(
            factory(UpdateStyle.ATOMIC).generate(n_cores), config, "MESI", track_values=False
        )
        coup = simulate(
            factory(UpdateStyle.COMMUTATIVE).generate(n_cores),
            config,
            "COUP",
            track_values=False,
        )
        rows.append(
            {
                "benchmark": name,
                "n_cores": n_cores,
                "mesi_offchip_bytes": mesi.offchip_bytes,
                "coup_offchip_bytes": coup.offchip_bytes,
                "traffic_reduction": mesi.offchip_bytes / max(1, coup.offchip_bytes),
                "mesi_invalidations": mesi.invalidations,
                "coup_invalidations": coup.invalidations,
            }
        )
    return rows


def legacy_sensitivity_run(n_cores):
    fast_config = table1_config(n_cores, reduction_unit=ReductionUnitConfig.fast())
    slow_config = table1_config(n_cores, reduction_unit=ReductionUnitConfig.slow())
    rows = []
    for name, factory in PAPER_WORKLOAD_FACTORIES.items():
        fast = simulate(
            factory(UpdateStyle.COMMUTATIVE).generate(n_cores),
            fast_config,
            "COUP",
            track_values=False,
        )
        slow = simulate(
            factory(UpdateStyle.COMMUTATIVE).generate(n_cores),
            slow_config,
            "COUP",
            track_values=False,
        )
        degradation = slow.run_cycles / fast.run_cycles - 1.0
        rows.append(
            {
                "benchmark": name,
                "n_cores": n_cores,
                "fast_alu_cycles": fast.run_cycles,
                "slow_alu_cycles": slow.run_cycles,
                "degradation_pct": 100.0 * degradation,
            }
        )
    return rows


def legacy_ablation_interleaving_run(updates_per_read_values, n_cores, n_elements, rounds):
    config = table1_config(n_cores)
    rows = []
    for updates_per_read in updates_per_read_values:
        def workload(style):
            return InterleavedReadUpdateWorkload(
                n_elements=n_elements,
                updates_per_read=updates_per_read,
                rounds=rounds,
                update_style=style,
            )

        mesi = simulate(
            workload(UpdateStyle.ATOMIC).generate(n_cores), config, "MESI", track_values=False
        )
        coup = simulate(
            workload(UpdateStyle.COMMUTATIVE).generate(n_cores), config, "COUP", track_values=False
        )
        rmo = simulate(
            workload(UpdateStyle.REMOTE).generate(n_cores), config, "RMO", track_values=False
        )
        rows.append(
            {
                "updates_per_read": updates_per_read,
                "mesi_cycles": mesi.run_cycles,
                "coup_cycles": coup.run_cycles,
                "rmo_cycles": rmo.run_cycles,
                "coup_over_mesi": mesi.run_cycles / coup.run_cycles,
                "coup_over_rmo": rmo.run_cycles / coup.run_cycles,
            }
        )
    return rows


def legacy_ablation_hierarchical_simulated(n_cores, socket_widths, n_counters, updates_per_core):
    rows = []
    for width in socket_widths:
        if width > n_cores:
            continue
        config = dataclasses.replace(table1_config(n_cores), cores_per_chip=width)
        workload = MultiCounterWorkload(
            n_counters=n_counters,
            updates_per_core=updates_per_core,
            hot_fraction=0.3,
            update_style=UpdateStyle.COMMUTATIVE,
        )
        result = simulate(workload.generate(n_cores), config, "COUP", track_values=False)
        rows.append(
            {
                "n_cores": n_cores,
                "cores_per_socket": width,
                "n_sockets": config.n_chips,
                "run_cycles": result.run_cycles,
                "amat": result.amat,
                "full_reductions": result.reductions,
            }
        )
    return rows


def legacy_figure8_run(protocols, core_counts, op_counts, max_states):
    rows = []
    for protocol in protocols:
        for n_cores in core_counts:
            for n_ops in op_counts:
                if protocol.upper() == "MESI" and n_ops != op_counts[0]:
                    continue
                result = verify_protocol(
                    protocol, n_cores, n_ops=n_ops, max_states=max_states
                )
                rows.append(
                    {
                        "protocol": protocol,
                        "n_cores": n_cores,
                        "n_ops": n_ops if protocol.upper() != "MESI" else 0,
                        "states": result.n_states,
                        "transitions": result.n_transitions,
                        "time_s": result.elapsed_seconds,
                        "verified": result.verified,
                        "completed": result.completed,
                    }
                )
    return rows


# ---------------------------------------------------------------------------
# Pinning tests: engine-backed run(...) == frozen legacy implementation
# ---------------------------------------------------------------------------


class TestRunEquivalence:
    def test_figure10(self):
        legacy = legacy_figure10_run_benchmark("hist", [4])
        assert figure10_speedups.run_benchmark("hist", [4]) == legacy

    def test_duplicate_core_counts_produce_duplicate_rows(self):
        """Duplicated sweep values stay legal, as in the pre-engine loops."""
        legacy = legacy_figure10_run_benchmark("hist", [4, 4])
        assert figure10_speedups.run_benchmark("hist", [4, 4]) == legacy
        assert figure13_refcount.run_immediate(
            CountMode.LOW, [4, 4], n_counters=64, updates_per_thread=40
        ) == legacy_figure13_run_immediate(
            CountMode.LOW, [4, 4], n_counters=64, updates_per_thread=40
        )

    def test_figure10_run_covers_all_benchmarks(self):
        results = figure10_speedups.run(benchmarks=["spmv", "bfs"], core_counts=[2])
        assert results == {
            "spmv": legacy_figure10_run_benchmark("spmv", [2]),
            "bfs": legacy_figure10_run_benchmark("bfs", [2]),
        }

    def test_figure11(self):
        legacy = legacy_figure11_run_benchmark("hist", [4])
        assert figure11_amat.run_benchmark("hist", [4]) == legacy

    def test_figure2(self):
        legacy = legacy_figure2_run((32, 128), n_cores=8, n_items=800)
        assert figure02_histogram_bins.run((32, 128), n_cores=8, n_items=800) == legacy

    def test_figure12(self):
        legacy = legacy_figure12_run_bin_count(512, [4], n_items=800)
        assert figure12_privatization.run_bin_count(512, [4], n_items=800) == legacy

    def test_figure13_immediate(self):
        legacy = legacy_figure13_run_immediate(
            CountMode.LOW, [4], n_counters=64, updates_per_thread=40
        )
        assert (
            figure13_refcount.run_immediate(
                CountMode.LOW, [4], n_counters=64, updates_per_thread=40
            )
            == legacy
        )

    def test_figure13_delayed(self):
        legacy = legacy_figure13_run_delayed((5, 20), n_cores=4, n_counters=128)
        assert (
            figure13_refcount.run_delayed((5, 20), n_cores=4, n_counters=128) == legacy
        )

    def test_table1(self):
        assert table1_configuration.run(n_cores=128) == table1_configuration.rows_for(
            table1_config(128)
        )

    def test_table2(self):
        assert table2_benchmarks.run() == legacy_table2_run()

    def test_traffic(self):
        assert traffic_reduction.run(n_cores=4) == legacy_traffic_run(4)

    def test_sensitivity(self):
        assert sensitivity_reduction_unit.run(n_cores=4) == legacy_sensitivity_run(4)

    def test_ablation_interleaving(self):
        legacy = legacy_ablation_interleaving_run((0, 2), n_cores=4, n_elements=16, rounds=10)
        assert (
            ablation_interleaving.run((0, 2), n_cores=4, rounds=10) == legacy
        )

    def test_ablation_hierarchical(self):
        results = ablation_hierarchical_reduction.run(n_cores=8)
        assert results["analytic"] == ablation_hierarchical_reduction.analytic_rows()
        assert results["simulated"] == legacy_ablation_hierarchical_simulated(
            8, (4, 8, 16), n_counters=16, updates_per_core=settings.scaled(300)
        )

    def test_figure8(self):
        legacy = legacy_figure8_run(("MESI", "MEUSI"), (1,), (1, 2), max_states=50_000)
        rows = figure08_verification.run(("MESI", "MEUSI"), (1,), (1, 2), max_states=50_000)
        # Wall-clock varies run to run; everything else must match exactly.
        strip = lambda row: {k: v for k, v in row.items() if k != "time_s"}  # noqa: E731
        assert [strip(row) for row in rows] == [strip(row) for row in legacy]


class TestPrintedTables:
    def test_main_output_is_pure_function_of_rows(self, capsys):
        """render() must print exactly what the pre-refactor main() printed."""
        from repro.experiments.tables import format_table

        rows = traffic_reduction.run(n_cores=2)
        capsys.readouterr()
        traffic_reduction.render(rows)
        printed = capsys.readouterr().out
        expected = (
            format_table(
                rows,
                columns=[
                    "benchmark",
                    "n_cores",
                    "mesi_offchip_bytes",
                    "coup_offchip_bytes",
                    "traffic_reduction",
                ],
                title="Sec. 5.2: off-chip traffic, MESI vs. COUP (reduction factor, higher is better)",
            )
            + "\n"
        )
        assert printed == expected

    def test_main_returns_run_and_prints(self, capsys):
        rows = figure02_histogram_bins.run((32,), n_cores=4, n_items=400)
        capsys.readouterr()
        # main() uses default arguments; compare against a fresh default run.
        returned = figure02_histogram_bins.main()
        printed = capsys.readouterr().out
        assert "Figure 2" in printed
        assert returned == figure02_histogram_bins.run()
        assert rows  # tiny-sweep sanity


# ---------------------------------------------------------------------------
# Trace sharing equivalence (acceptance criterion)
# ---------------------------------------------------------------------------


class TestTraceSharing:
    def test_shared_trace_bit_identical_across_protocols(self):
        """One materialized trace under N protocols == N regenerated traces."""
        from repro.sim.config import small_test_config

        config = small_test_config(4)

        def factory(n_cores):
            return MultiCounterWorkload(
                n_counters=32, updates_per_core=120, update_style=UpdateStyle.COMMUTATIVE
            ).generate(n_cores)

        shared = compare_protocols(
            factory, config, protocols=("MESI", "COUP", "RMO"), track_values=True
        )
        regenerated = compare_protocols(
            factory,
            config,
            protocols=("MESI", "COUP", "RMO"),
            track_values=True,
            share_trace=False,
        )
        assert shared == regenerated

    def test_simulating_a_trace_does_not_mutate_it(self):
        """Re-running one trace object gives the same result as a fresh trace."""
        workload = HistogramWorkload(
            n_bins=64, n_items=600, update_style=UpdateStyle.COMMUTATIVE
        )
        trace = workload.generate(4)
        config = table1_config(4)
        first = simulate(trace, config, "COUP", track_values=False)
        second = simulate(trace, config, "COUP", track_values=False)
        fresh = simulate(
            HistogramWorkload(
                n_bins=64, n_items=600, update_style=UpdateStyle.COMMUTATIVE
            ).generate(4),
            config,
            "COUP",
            track_values=False,
        )
        assert first == second == fresh
