"""Tests for the experiment runner CLI, settings, and table helpers."""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENT_MODULES, settings
from repro.experiments.runner import main as runner_main
from repro.experiments.tables import format_table, format_value


class TestSettings:
    def test_scale_roundtrip(self):
        original = settings.scale()
        try:
            settings.set_scale(0.5)
            assert settings.scale() == 0.5
            assert settings.scaled(100) == 50
            assert settings.scaled(1, minimum=3) == 3
        finally:
            settings.set_scale(original)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            settings.set_scale(0)
        with pytest.raises(ValueError):
            settings.set_max_cores(-1)

    def test_core_sweep_respects_cap(self):
        original = settings.max_cores()
        try:
            settings.set_max_cores(32)
            assert settings.core_sweep() == [1, 32]
            settings.set_max_cores(128)
            assert settings.core_sweep() == [1, 32, 64, 96, 128]
            settings.set_max_cores(4)
            assert settings.core_sweep() == [1, 4]
        finally:
            settings.set_max_cores(original)

    def test_amat_core_points(self):
        original = settings.max_cores()
        try:
            settings.set_max_cores(32)
            assert settings.amat_core_points() == [8, 32]
            settings.set_max_cores(128)
            assert settings.amat_core_points() == [8, 32, 128]
        finally:
            settings.set_max_cores(original)


class TestRunnerCli:
    def test_list(self, capsys):
        assert runner_main(["--list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in EXPERIMENT_MODULES:
            assert experiment_id in out

    def test_unknown_experiment(self, capsys):
        assert runner_main(["not-an-experiment"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_run_single_cheap_experiment(self, capsys):
        assert runner_main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "completed in" in out


class TestTableFormatting:
    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(0.0) == "0"
        assert format_value(1234.5678) == "1,235"
        assert format_value(0.123456) == "0.123"
        assert format_value(123456) == "123,456"
        assert format_value("x") == "x"

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="Empty")

    def test_format_table_column_selection(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "b" in text and "a" not in text
