"""Tests for the experiment runner CLI, settings, and table helpers."""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENT_MODULES, settings
from repro.experiments.runner import main as runner_main
from repro.experiments.tables import format_table, format_value


class TestSettings:
    def test_scale_roundtrip(self):
        original = settings.scale()
        try:
            settings.set_scale(0.5)
            assert settings.scale() == 0.5
            assert settings.scaled(100) == 50
            assert settings.scaled(1, minimum=3) == 3
        finally:
            settings.set_scale(original)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            settings.set_scale(0)
        with pytest.raises(ValueError):
            settings.set_max_cores(-1)

    def test_core_sweep_respects_cap(self):
        original = settings.max_cores()
        try:
            settings.set_max_cores(32)
            assert settings.core_sweep() == [1, 32]
            settings.set_max_cores(128)
            assert settings.core_sweep() == [1, 32, 64, 96, 128]
            settings.set_max_cores(4)
            assert settings.core_sweep() == [1, 4]
        finally:
            settings.set_max_cores(original)

    def test_amat_core_points(self):
        original = settings.max_cores()
        try:
            settings.set_max_cores(32)
            assert settings.amat_core_points() == [8, 32]
            settings.set_max_cores(128)
            assert settings.amat_core_points() == [8, 32, 128]
        finally:
            settings.set_max_cores(original)


class TestRunnerCli:
    def test_list(self, capsys):
        assert runner_main(["--list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in EXPERIMENT_MODULES:
            assert experiment_id in out

    def test_unknown_experiment(self, capsys):
        assert runner_main(["not-an-experiment"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_run_single_cheap_experiment(self, capsys):
        assert runner_main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "completed in" in out

    def test_main_accepts_no_argv(self, monkeypatch, capsys):
        # main's argv parameter is Optional: None must fall back to sys.argv.
        monkeypatch.setattr("sys.argv", ["runner", "--list"])
        assert runner_main() == 0
        assert capsys.readouterr().out

    def test_failing_experiment_propagates_nonzero_exit(self, monkeypatch, capsys):
        import repro.experiments.runner as runner_module

        monkeypatch.setitem(
            runner_module.EXPERIMENT_MODULES, "boom", "repro.experiments.does_not_exist"
        )
        assert runner_main(["boom"]) == 1
        err = capsys.readouterr().err
        assert "FAILED" in err
        assert "boom" in err

    def test_failure_does_not_abort_siblings(self, monkeypatch, capsys):
        import repro.experiments.runner as runner_module

        monkeypatch.setitem(
            runner_module.EXPERIMENT_MODULES, "boom", "repro.experiments.does_not_exist"
        )
        assert runner_main(["boom", "table1"]) == 1
        captured = capsys.readouterr()
        assert "Table 1" in captured.out  # the healthy sibling still ran

    def test_results_dir_records(self, tmp_path, capsys):
        results_dir = str(tmp_path / "records")
        assert runner_main(["table1", "--results-dir", results_dir]) == 0
        record_path = tmp_path / "records" / "table1.json"
        assert record_path.exists()
        import json

        record = json.loads(record_path.read_text())
        assert record["experiment_id"] == "table1"
        assert record["status"] == "ok"
        assert "Table 1" in record["output"]

    def test_parallel_jobs_run_and_record(self, tmp_path, capsys):
        results_dir = str(tmp_path / "records")
        assert (
            runner_main(["table1", "table2", "--jobs", "2", "--results-dir", results_dir])
            == 0
        )
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out
        assert (tmp_path / "records" / "table1.json").exists()
        assert (tmp_path / "records" / "table2.json").exists()

    def test_seed_is_deterministic_per_experiment(self):
        from repro.experiments.runner import _experiment_seed

        assert _experiment_seed(0, "figure10") == _experiment_seed(0, "figure10")
        assert _experiment_seed(0, "figure10") != _experiment_seed(0, "figure12")
        assert _experiment_seed(0, "figure10") != _experiment_seed(1, "figure10")


class TestTableFormatting:
    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(0.0) == "0"
        assert format_value(1234.5678) == "1,235"
        assert format_value(0.123456) == "0.123"
        assert format_value(123456) == "123,456"
        assert format_value("x") == "x"

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="Empty")

    def test_format_table_column_selection(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "b" in text and "a" not in text
