"""Tests for the experiment runner CLI, settings, and table helpers."""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENT_MODULES, settings
from repro.experiments.runner import main as runner_main
from repro.experiments.tables import format_table, format_value


class TestSettings:
    def test_scale_roundtrip(self):
        original = settings.scale()
        try:
            settings.set_scale(0.5)
            assert settings.scale() == 0.5
            assert settings.scaled(100) == 50
            assert settings.scaled(1, minimum=3) == 3
        finally:
            settings.set_scale(original)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            settings.set_scale(0)
        with pytest.raises(ValueError):
            settings.set_max_cores(-1)

    def test_core_sweep_respects_cap(self):
        original = settings.max_cores()
        try:
            settings.set_max_cores(32)
            assert settings.core_sweep() == [1, 32]
            settings.set_max_cores(128)
            assert settings.core_sweep() == [1, 32, 64, 96, 128]
            settings.set_max_cores(4)
            assert settings.core_sweep() == [1, 4]
        finally:
            settings.set_max_cores(original)

    def test_amat_core_points(self):
        original = settings.max_cores()
        try:
            settings.set_max_cores(32)
            assert settings.amat_core_points() == [8, 32]
            settings.set_max_cores(128)
            assert settings.amat_core_points() == [8, 32, 128]
        finally:
            settings.set_max_cores(original)

    def test_core_sweep_accepts_any_sequence(self):
        original = settings.max_cores()
        try:
            settings.set_max_cores(64)
            # Tuples, lists, and ranges are all valid paper_points inputs.
            assert settings.core_sweep((1, 16, 64)) == [1, 16, 64]
            assert settings.core_sweep([1, 16, 128]) == [1, 16]
            assert settings.core_sweep(range(60, 70)) == [60, 61, 62, 63, 64]
        finally:
            settings.set_max_cores(original)

    def test_core_sweep_edge_cases(self):
        original = settings.max_cores()
        try:
            settings.set_max_cores(16)
            # Every paper point above the cap: fall back to [1, cap].
            assert settings.core_sweep((32, 64)) == [1, 16]
            # Single surviving point on a multi-core cap: cap appended.
            assert settings.core_sweep((1,)) == [1, 16]
            settings.set_max_cores(1)
            # A 1-core cap keeps just the single-core baseline.
            assert settings.core_sweep() == [1]
            assert settings.core_sweep((32,)) == [1]
        finally:
            settings.set_max_cores(original)

    def test_sweep_with_baseline(self):
        original = settings.max_cores()
        try:
            settings.set_max_cores(16)
            assert settings.sweep_with_baseline() == [1, 16]
            assert settings.sweep_with_baseline([8, 16]) == [1, 8, 16]
            assert settings.sweep_with_baseline((1, 4)) == [1, 4]
        finally:
            settings.set_max_cores(original)

    def test_amat_core_points_edge_cases(self):
        original = settings.max_cores()
        try:
            settings.set_max_cores(4)
            # All paper points above the cap: a single capped point survives.
            assert settings.amat_core_points() == [4]
            settings.set_max_cores(8)
            assert settings.amat_core_points() == [8]
            settings.set_max_cores(12)
            # The cap itself is added once it can hold the smallest point.
            assert settings.amat_core_points() == [8, 12]
            settings.set_max_cores(128)
            # Duplicates collapse: the cap coincides with a paper point.
            assert settings.amat_core_points((8, 128, 128)) == [8, 128]
        finally:
            settings.set_max_cores(original)


class TestSettingsEnvironment:
    """REPRO_SCALE / REPRO_MAX_CORES are read at module import time."""

    def _reload(self):
        import importlib

        return importlib.reload(settings)

    def _restore(self, scale, max_cores):
        settings.set_scale(scale)
        settings.set_max_cores(max_cores)

    def test_env_vars_parsed_on_import(self, monkeypatch):
        original = (settings.scale(), settings.max_cores())
        monkeypatch.setenv("REPRO_SCALE", "0.25")
        monkeypatch.setenv("REPRO_MAX_CORES", "8")
        try:
            self._reload()
            assert settings.scale() == 0.25
            assert settings.max_cores() == 8
        finally:
            monkeypatch.delenv("REPRO_SCALE")
            monkeypatch.delenv("REPRO_MAX_CORES")
            self._reload()
            self._restore(*original)

    def test_defaults_without_env_vars(self, monkeypatch):
        original = (settings.scale(), settings.max_cores())
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        monkeypatch.delenv("REPRO_MAX_CORES", raising=False)
        try:
            self._reload()
            assert settings.scale() == 1.0
            assert settings.max_cores() == 64
        finally:
            self._reload()
            self._restore(*original)

    def test_malformed_env_value_raises_at_import(self, monkeypatch):
        original = (settings.scale(), settings.max_cores())
        monkeypatch.setenv("REPRO_SCALE", "not-a-number")
        try:
            with pytest.raises(ValueError):
                self._reload()
        finally:
            monkeypatch.delenv("REPRO_SCALE")
            self._reload()
            self._restore(*original)


class TestMakeProtocol:
    def test_unknown_name_reports_alternatives(self):
        from repro.sim.config import small_test_config
        from repro.sim.simulator import PROTOCOLS, make_protocol

        with pytest.raises(ValueError, match="unknown protocol 'MOESI'") as excinfo:
            make_protocol("MOESI", small_test_config(2))
        for name in PROTOCOLS:
            assert name in str(excinfo.value)

    def test_lookup_is_case_insensitive(self):
        from repro.sim.config import small_test_config
        from repro.sim.simulator import make_protocol

        assert make_protocol("coup", small_test_config(2)).name == "COUP"


class TestRunnerCli:
    def test_list(self, capsys):
        assert runner_main(["--list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in EXPERIMENT_MODULES:
            assert experiment_id in out

    def test_unknown_experiment(self, capsys):
        assert runner_main(["not-an-experiment"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_run_single_cheap_experiment(self, capsys):
        assert runner_main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "completed in" in out

    def test_main_accepts_no_argv(self, monkeypatch, capsys):
        # main's argv parameter is Optional: None must fall back to sys.argv.
        monkeypatch.setattr("sys.argv", ["runner", "--list"])
        assert runner_main() == 0
        assert capsys.readouterr().out

    def test_failing_experiment_propagates_nonzero_exit(self, monkeypatch, capsys):
        import repro.experiments.runner as runner_module

        monkeypatch.setitem(
            runner_module.EXPERIMENT_MODULES, "boom", "repro.experiments.does_not_exist"
        )
        assert runner_main(["boom"]) == 1
        err = capsys.readouterr().err
        assert "FAILED" in err
        assert "boom" in err

    def test_failure_does_not_abort_siblings(self, monkeypatch, capsys):
        import repro.experiments.runner as runner_module

        monkeypatch.setitem(
            runner_module.EXPERIMENT_MODULES, "boom", "repro.experiments.does_not_exist"
        )
        assert runner_main(["boom", "table1"]) == 1
        captured = capsys.readouterr()
        assert "Table 1" in captured.out  # the healthy sibling still ran

    def test_results_dir_records(self, tmp_path, capsys):
        results_dir = str(tmp_path / "records")
        assert runner_main(["table1", "--results-dir", results_dir]) == 0
        record_path = tmp_path / "records" / "table1.json"
        assert record_path.exists()
        import json

        record = json.loads(record_path.read_text())
        assert record["experiment_id"] == "table1"
        assert record["status"] == "ok"
        assert "Table 1" in record["output"]

    def test_parallel_jobs_run_and_record(self, tmp_path, capsys):
        results_dir = str(tmp_path / "records")
        assert (
            runner_main(["table1", "table2", "--jobs", "2", "--results-dir", results_dir])
            == 0
        )
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out
        assert (tmp_path / "records" / "table1.json").exists()
        assert (tmp_path / "records" / "table2.json").exists()

    def test_seed_is_deterministic_per_experiment(self):
        from repro.experiments.runner import _experiment_seed

        assert _experiment_seed(0, "figure10") == _experiment_seed(0, "figure10")
        assert _experiment_seed(0, "figure10") != _experiment_seed(0, "figure12")
        assert _experiment_seed(0, "figure10") != _experiment_seed(1, "figure10")


class TestTableFormatting:
    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(0.0) == "0"
        assert format_value(1234.5678) == "1,235"
        assert format_value(0.123456) == "0.123"
        assert format_value(123456) == "123,456"
        assert format_value("x") == "x"

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="Empty")

    def test_format_table_column_selection(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "b" in text and "a" not in text
