"""Tests for the crash-safe result journal (WAL format and recovery)."""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments import journal
from repro.experiments.faults import SimulatedCrash


def _record(point: str, status: str = "ok", **extra: object) -> dict:
    base = {
        "kind": "point",
        "experiment_id": "traffic",
        "point": point,
        "status": status,
    }
    base.update(extra)
    return base


class TestWireFormat:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "segment-1-000.wal"
        records = [_record("a"), _record("b", seed=7), _record("c", status="error")]
        with journal.JournalWriter(str(path)) as writer:
            for record in records:
                writer.append(record)
        assert writer.appended == 3
        replay = journal.replay_segment(str(path))
        assert list(replay.records) == records
        assert not replay.truncated
        assert replay.intact_bytes == path.stat().st_size

    def test_encode_is_canonical_json(self):
        data = journal.encode_record({"b": 1, "a": 2})
        header, payload, trailer = data.split(b"\n")
        assert header.startswith(b"REPRO-WAL1 ")
        assert payload == b'{"a":2,"b":1}'
        assert trailer == b""

    def test_closed_writer_rejects_appends(self, tmp_path):
        writer = journal.JournalWriter(str(tmp_path / "s.wal"))
        writer.close()
        with pytest.raises(ValueError):
            writer.append(_record("a"))


class TestRecovery:
    def test_torn_tail_recovers_prefix(self, tmp_path):
        path = tmp_path / "segment-1-000.wal"
        with journal.JournalWriter(str(path)) as writer:
            writer.append(_record("a"))
            writer.append(_record("b"))
        intact = path.stat().st_size
        # Simulate a crash mid-write: append only part of a third record.
        with open(path, "ab") as handle:
            handle.write(journal.encode_record(_record("c"))[:10])
        replay = journal.replay_segment(str(path))
        assert [r["point"] for r in replay.records] == ["a", "b"]
        assert replay.truncated
        assert replay.intact_bytes == intact

    def test_corrupt_crc_tail_recovers_prefix(self, tmp_path):
        path = tmp_path / "segment-1-000.wal"
        with journal.JournalWriter(str(path)) as writer:
            writer.append(_record("a"))
            writer.append(_record("b"))
        data = path.read_bytes()
        # Flip a payload byte of the LAST record: CRC fails, but no record
        # follows, so this is still a recoverable tail.
        path.write_bytes(data[:-5] + b"X" + data[-4:])
        replay = journal.replay_segment(str(path))
        assert [r["point"] for r in replay.records] == ["a"]
        assert replay.truncated

    def test_midfile_corruption_raises(self, tmp_path):
        path = tmp_path / "segment-1-000.wal"
        with journal.JournalWriter(str(path)) as writer:
            writer.append(_record("a"))
            writer.append(_record("b"))
        data = path.read_bytes()
        # Damage the FIRST record while a valid one follows: an append-only
        # writer cannot produce this, so it must fail loudly.
        damaged = bytearray(data)
        damaged[len(journal.MAGIC) + 20] ^= 0xFF
        path.write_bytes(bytes(damaged))
        with pytest.raises(journal.JournalCorruptError):
            journal.replay_segment(str(path))

    def test_empty_segment_is_clean(self, tmp_path):
        path = tmp_path / "segment-1-000.wal"
        path.write_bytes(b"")
        replay = journal.replay_segment(str(path))
        assert replay.records == ()
        assert not replay.truncated


class TestDirectoryReplay:
    def test_replays_segments_in_name_order(self, tmp_path):
        for name, point in (("segment-2-000.wal", "b"), ("segment-1-000.wal", "a")):
            with journal.JournalWriter(str(tmp_path / name)) as writer:
                writer.append(_record(point))
        (tmp_path / "notes.txt").write_text("ignored")
        replay = journal.replay_dir(str(tmp_path))
        assert [r["point"] for r in replay.records] == ["a", "b"]

    def test_missing_directory_is_empty(self, tmp_path):
        assert journal.replay_dir(str(tmp_path / "absent")).records == ()

    def test_latest_point_records_ok_beats_non_ok(self, tmp_path):
        with journal.JournalWriter(str(tmp_path / "segment-1-000.wal")) as writer:
            writer.append(_record("a", status="ok", attempt="first"))
            writer.append(_record("a", status="quarantined"))
            writer.append(_record("b", status="error"))
            writer.append(_record("b", status="ok"))
            writer.append({"kind": "meta", "note": "not a point"})
        folded = journal.latest_point_records(journal.replay_dir(str(tmp_path)))
        assert folded[("traffic", "a")]["status"] == "ok"
        assert folded[("traffic", "b")]["status"] == "ok"
        assert len(folded) == 2

    def test_fresh_segment_path_never_reuses(self, tmp_path):
        first = journal.fresh_segment_path(str(tmp_path), "w")
        open(first, "wb").close()
        second = journal.fresh_segment_path(str(tmp_path), "w")
        assert first != second
        assert os.path.basename(first) == "segment-w-000.wal"
        assert os.path.basename(second) == "segment-w-001.wal"


class TestTornWriteInjection:
    def test_torn_hook_cuts_and_raises(self, tmp_path):
        path = tmp_path / "segment-1-000.wal"
        writer = journal.JournalWriter(
            str(path), torn_hook=lambda record, nbytes: nbytes // 2
        )
        with pytest.raises(SimulatedCrash):
            writer.append(_record("a"))
        writer.close()
        replay = journal.replay_segment(str(path))
        assert replay.records == ()
        assert replay.truncated

    def test_none_from_hook_writes_cleanly(self, tmp_path):
        path = tmp_path / "segment-1-000.wal"
        with journal.JournalWriter(
            str(path), torn_hook=lambda record, nbytes: None
        ) as writer:
            writer.append(_record("a"))
        assert [r["point"] for r in journal.replay_segment(str(path)).records] == ["a"]


class TestCampaignFingerprint:
    def _write_point(self, results_dir, experiment, stem, record):
        directory = os.path.join(results_dir, "points", experiment)
        os.makedirs(directory, exist_ok=True)
        with open(os.path.join(directory, f"{stem}.json"), "w") as handle:
            json.dump(record, handle, sort_keys=True)

    def test_ignores_nondeterministic_fields(self, tmp_path):
        a, b = str(tmp_path / "a"), str(tmp_path / "b")
        base = {
            "experiment_id": "traffic",
            "point": "hist/MESI",
            "status": "ok",
            "seed": 7,
            "summary": {"run_cycles": 123},
        }
        self._write_point(a, "traffic", "p", dict(base, elapsed_s=1.0, cached=False))
        self._write_point(b, "traffic", "p", dict(base, elapsed_s=9.9, cached=True))
        assert journal.campaign_fingerprint(a) == journal.campaign_fingerprint(b)

    def test_detects_result_differences(self, tmp_path):
        a, b = str(tmp_path / "a"), str(tmp_path / "b")
        base = {"experiment_id": "traffic", "point": "hist/MESI", "status": "ok"}
        self._write_point(a, "traffic", "p", dict(base, summary={"run_cycles": 1}))
        self._write_point(b, "traffic", "p", dict(base, summary={"run_cycles": 2}))
        assert journal.campaign_fingerprint(a) != journal.campaign_fingerprint(b)
