"""Tests for the ablation experiments (beyond the paper's figures)."""

from __future__ import annotations

import pytest

from repro.experiments import ablation_hierarchical_reduction, ablation_interleaving, settings


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setattr(settings, "_scale", 0.1)
    monkeypatch.setattr(settings, "_max_cores", 16)
    yield


class TestInterleavingAblation:
    def test_coup_advantage_grows_with_update_run_length(self):
        rows = ablation_interleaving.run(
            updates_per_read_values=(0, 2, 8), n_cores=16, rounds=20
        )
        assert len(rows) == 3
        advantages = [row["coup_over_mesi"] for row in rows]
        # With no updates at all, COUP cannot help; with longer update runs,
        # the advantage must grow.
        assert advantages[0] == pytest.approx(1.0, rel=0.05)
        assert advantages[-1] > advantages[0]

    def test_two_updates_per_epoch_already_help(self):
        """Sec. 4's claim: benefits with as little as two updates per epoch."""
        rows = ablation_interleaving.run(updates_per_read_values=(2,), n_cores=16, rounds=30)
        assert rows[0]["coup_over_mesi"] >= 1.0


class TestHierarchicalReductionAblation:
    def test_analytic_matches_paper_example(self):
        rows = ablation_hierarchical_reduction.analytic_rows(
            n_cores=128, socket_widths=(16,)
        )
        assert rows[0]["hierarchical_ops"] == 24
        assert rows[0]["flat_ops"] == 128

    def test_simulated_rows_have_reductions(self):
        rows = ablation_hierarchical_reduction.simulated_rows(
            n_cores=16, socket_widths=(4, 8, 16), n_counters=8, updates_per_core=60
        )
        assert len(rows) == 3
        assert all(row["full_reductions"] >= 0 for row in rows)
        assert all(row["run_cycles"] > 0 for row in rows)

    def test_run_returns_both_halves(self):
        results = ablation_hierarchical_reduction.run(n_cores=8)
        assert set(results) == {"analytic", "simulated"}
