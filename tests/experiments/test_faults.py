"""Tests for the deterministic fault-injection spec and plan."""

from __future__ import annotations

import pytest

from repro.experiments import faults


class TestParseFaultSpec:
    def test_empty_spec_means_no_faults(self):
        assert faults.parse_fault_spec("") == ()
        assert faults.parse_fault_spec(" ; ; ") == ()

    def test_bare_kind(self):
        (directive,) = faults.parse_fault_spec("kill")
        assert directive.kind == "kill"
        assert directive.point == ""
        assert directive.experiment == ""
        assert directive.times == 1

    def test_full_grammar(self):
        spec = "kill:point=hist,exp=traffic,times=2;hang:secs=1.5;torn:cut=7"
        kill, hang, torn = faults.parse_fault_spec(spec)
        assert (kill.kind, kill.point, kill.experiment, kill.times) == (
            "kill",
            "hist",
            "traffic",
            2,
        )
        assert (hang.kind, hang.secs) == ("hang", 1.5)
        assert (torn.kind, torn.cut) == ("torn", 7)

    @pytest.mark.parametrize(
        "spec",
        [
            "explode",  # unknown kind
            "kill:point",  # parameter without value
            "kill:bogus=1",  # unknown parameter
            "kill:times=zero",  # malformed value
            "kill:times=0",  # out of domain
            "hang:secs=soon",  # malformed float
        ],
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(faults.FaultSpecError):
            faults.parse_fault_spec(spec)


class TestFaultDirective:
    def test_matching_is_substring_and_attempt_bounded(self):
        directive = faults.FaultDirective(kind="kill", point="hist", times=2)
        assert directive.matches("traffic", "hist/MESI", 0)
        assert directive.matches("traffic", "hist/MESI", 1)
        assert not directive.matches("traffic", "hist/MESI", 2)  # retries run clean
        assert not directive.matches("traffic", "spmv/MESI", 0)

    def test_empty_filters_match_everything_once(self):
        directive = faults.FaultDirective(kind="kill")
        assert directive.matches("anything", "at/all", 0)
        assert not directive.matches("anything", "at/all", 1)

    def test_describe_is_compact(self):
        directive = faults.FaultDirective(kind="kill", point="hist", times=3)
        assert directive.describe() == "kill:point=hist,times=3"
        assert faults.FaultDirective(kind="hang").describe() == "hang"


class TestFaultPlan:
    def test_should_returns_first_matching_directive(self):
        plan = faults.FaultPlan(faults.parse_fault_spec("kill:point=a;kill:point=b"))
        assert plan.should("kill", "e", "point-a", 0).point == "a"
        assert plan.should("kill", "e", "point-b", 0).point == "b"
        assert plan.should("kill", "e", "point-c", 0) is None
        assert plan.should("hang", "e", "point-a", 0) is None

    def test_bool_reflects_directives(self):
        assert not faults.FaultPlan()
        assert faults.FaultPlan(faults.parse_fault_spec("kill"))

    def test_fire_counted_is_per_directive(self):
        plan = faults.FaultPlan(faults.parse_fault_spec("torn:point=x,times=2"))
        assert plan.fire_counted("torn", "e", "x/1") is not None
        assert plan.fire_counted("torn", "e", "x/2") is not None
        assert plan.fire_counted("torn", "e", "x/3") is None  # times exhausted

    def test_torn_hook_absent_without_torn_directive(self):
        assert faults.FaultPlan(faults.parse_fault_spec("kill")).torn_hook() is None

    def test_torn_hook_cuts_record(self):
        plan = faults.FaultPlan(faults.parse_fault_spec("torn:point=bfs"))
        hook = plan.torn_hook()
        record = {"experiment_id": "traffic", "point": "bfs/MESI"}
        cut = hook(record, 100)
        assert cut == 50  # default: half the encoded record
        assert hook(record, 100) is None  # fires once
        assert hook({"experiment_id": "t", "point": "other"}, 100) is None

    def test_torn_hook_explicit_cut_clamped(self):
        plan = faults.FaultPlan(faults.parse_fault_spec("torn:cut=7"))
        assert plan.torn_hook()({"experiment_id": "e", "point": "p"}, 100) == 7
        plan = faults.FaultPlan(faults.parse_fault_spec("torn:cut=500"))
        # A cut past the record length degenerates to the half-write default.
        assert plan.torn_hook()({"experiment_id": "e", "point": "p"}, 100) == 50


class TestActivePlan:
    def test_refresh_reads_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT", "kill:point=hist")
        plan = faults.refresh_active_plan()
        assert plan.should("kill", "e", "hist/MESI", 0) is not None
        monkeypatch.setenv("REPRO_FAULT", "")
        assert not faults.refresh_active_plan()
        assert faults.active_plan() is not None

    def test_set_active_plan_overrides(self):
        plan = faults.FaultPlan()
        faults.set_active_plan(plan)
        try:
            assert faults.active_plan() is plan
        finally:
            faults.set_active_plan(None)

    def test_malformed_environment_spec_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT", "explode")
        with pytest.raises(faults.FaultSpecError):
            faults.refresh_active_plan()
        monkeypatch.setenv("REPRO_FAULT", "")
        faults.refresh_active_plan()
