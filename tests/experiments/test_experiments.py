"""Integration tests for the experiment harness.

These run each experiment at a deliberately tiny scale (small inputs, few
cores) and assert the *qualitative* results the paper reports — who wins,
roughly where — rather than absolute numbers, which depend on the simulator's
simplifications.
"""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENT_MODULES, settings
from repro.experiments import (
    figure02_histogram_bins,
    figure08_verification,
    figure10_speedups,
    figure11_amat,
    figure12_privatization,
    figure13_refcount,
    sensitivity_reduction_unit,
    table1_configuration,
    table2_benchmarks,
    traffic_reduction,
)
from repro.experiments.tables import format_table, geometric_mean
from repro.workloads import CountMode


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    """Shrink every experiment so the whole module runs in seconds."""
    monkeypatch.setattr(settings, "_scale", 0.08)
    monkeypatch.setattr(settings, "_max_cores", 16)
    yield


class TestRegistryAndHelpers:
    def test_registry_covers_every_table_and_figure(self):
        assert {
            "figure2",
            "figure8",
            "figure10",
            "figure11",
            "figure12",
            "figure13",
            "table1",
            "table2",
            "traffic",
            "sensitivity",
            "ablation-interleaving",
            "ablation-hierarchical",
        } <= set(EXPERIMENT_MODULES)

    def test_format_table(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}], title="T")
        assert "T" in text and "a" in text and "0.125" in text

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_settings_scaling(self):
        assert settings.scaled(1000) == 80
        assert settings.scaled(3, minimum=5) == 5
        assert settings.core_sweep() == [1, 16]


class TestFigure2:
    def test_coup_outperforms_both_software_schemes(self):
        rows = figure02_histogram_bins.run(bin_counts=(32, 2048), n_cores=16, n_items=3000)
        assert len(rows) == 2
        for row in rows:
            assert row["coup_cycles"] <= row["atomics_cycles"]
            assert row["coup_cycles"] <= row["privatization_cycles"]

    def test_privatization_degrades_with_many_bins(self):
        """The Fig. 2 crossover: more bins hurt privatization relative to atomics."""
        rows = figure02_histogram_bins.run(bin_counts=(32, 4096), n_cores=16, n_items=3000)
        small, large = rows
        ratio_small = small["privatization_cycles"] / small["atomics_cycles"]
        ratio_large = large["privatization_cycles"] / large["atomics_cycles"]
        assert ratio_large > ratio_small


class TestFigure10:
    def test_coup_never_slower_and_wins_on_hist(self):
        results = figure10_speedups.run(benchmarks=["hist"], core_counts=[16])
        rows = results["hist"]
        at_16 = [row for row in rows if row["n_cores"] == 16][0]
        assert at_16["coup_over_mesi"] > 1.2
        assert at_16["coup_speedup"] >= at_16["mesi_speedup"]

    def test_speedup_normalised_to_single_core(self):
        results = figure10_speedups.run(benchmarks=["spmv"], core_counts=[16])
        rows = results["spmv"]
        single = [row for row in rows if row["n_cores"] == 1][0]
        assert single["mesi_speedup"] == pytest.approx(1.0, rel=0.05)


class TestFigure11:
    def test_invalidation_component_shrinks_under_coup(self):
        results = figure11_amat.run(benchmarks=["hist"], core_points=[16])
        rows = results["hist"]
        coup = [r for r in rows if r["protocol"] == "COUP"][0]
        mesi = [r for r in rows if r["protocol"] == "MESI"][0]
        assert coup["l4_invalidations"] < mesi["l4_invalidations"]
        assert coup["amat"] < mesi["amat"]


class TestFigure12:
    def test_coup_beats_core_privatization_with_many_bins(self):
        results = figure12_privatization.run(bin_counts=(2048,), core_counts=[16])
        row = [r for r in results[2048] if r["n_cores"] == 16][0]
        assert row["coup_speedup"] > row["core_privatization_speedup"]

    def test_runs_for_both_paper_bin_counts(self):
        results = figure12_privatization.run(core_counts=[8])
        assert set(results) == {512, 16384}


class TestFigure13:
    def test_coup_beats_xadd_in_low_count_mode(self):
        rows = figure13_refcount.run_immediate(
            CountMode.LOW, core_counts=[16], n_counters=128, updates_per_thread=100
        )
        at_16 = [r for r in rows if r["n_cores"] == 16][0]
        assert at_16["coup_speedup"] > at_16["xadd_speedup"]

    def test_delayed_coup_beats_refcache(self):
        rows = figure13_refcount.run_delayed(
            updates_per_epoch_values=(10, 50), n_cores=16, n_counters=256
        )
        assert all(row["coup_over_refcache"] > 1.0 for row in rows)


class TestFigure8:
    def test_meusi_larger_but_verifiable(self):
        rows = figure08_verification.run(
            protocols=("MESI", "MEUSI"), core_counts=(1, 2), op_counts=(1, 2), max_states=100_000
        )
        assert all(row["verified"] for row in rows)
        mesi_2 = [r for r in rows if r["protocol"] == "MESI" and r["n_cores"] == 2][0]
        meusi_2 = [
            r for r in rows if r["protocol"] == "MEUSI" and r["n_cores"] == 2 and r["n_ops"] == 1
        ][0]
        assert meusi_2["states"] > mesi_2["states"]


class TestTablesAndSensitivity:
    def test_table1_rows(self):
        rows = table1_configuration.run(n_cores=128)
        parameters = {row["parameter"] for row in rows}
        assert {"cores", "L1D", "L3", "off-chip network", "reduction unit"} <= parameters

    def test_table2_reports_all_benchmarks(self):
        rows = table2_benchmarks.run()
        assert {row["benchmark"] for row in rows} == {
            "hist",
            "spmv",
            "pgrank",
            "bfs",
            "fluidanimate",
        }
        assert all(0 < row["comm_op_fraction"] < 0.5 for row in rows)

    def test_traffic_reduction_positive_for_hist(self):
        rows = traffic_reduction.run(n_cores=16)
        hist = [r for r in rows if r["benchmark"] == "hist"][0]
        assert hist["traffic_reduction"] >= 1.0

    def test_reduction_unit_sensitivity_is_small(self):
        """Most benchmarks are barely sensitive to the reduction ALU.

        At the test suite's very small workload scale the bfs visited bitmap
        spans only a handful of cache lines, so its reductions are far more
        frequent (per line) than at paper scale and its sensitivity is higher;
        the remaining benchmarks must show the paper's near-zero sensitivity.
        """
        rows = sensitivity_reduction_unit.run(n_cores=16)
        degradations = {row["benchmark"]: row["degradation_pct"] for row in rows}
        assert all(value < 50.0 for value in degradations.values())
        nearly_insensitive = [name for name, value in degradations.items() if value < 10.0]
        assert len(nearly_insensitive) >= 3
