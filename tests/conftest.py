"""Shared pytest fixtures.

Also prepends ``src/`` to ``sys.path`` so the test suite (and the benchmark
suite, which reuses this conftest through rootdir discovery) works even when
the package has not been pip-installed — useful in offline environments where
editable installs are unavailable.
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.sim.config import SystemConfig, small_test_config, table1_config  # noqa: E402


@pytest.fixture
def small_config() -> SystemConfig:
    """A tiny 4-core machine with small caches (fast, exercises evictions)."""
    return small_test_config(4)


@pytest.fixture
def chip_config() -> SystemConfig:
    """A full-size 16-core single-chip machine (Table 1 geometry)."""
    return table1_config(16)


@pytest.fixture
def multi_socket_config() -> SystemConfig:
    """A 32-core, two-chip machine: exercises the off-chip paths."""
    return table1_config(32)
