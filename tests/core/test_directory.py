"""Unit tests for the coherence directory."""

from __future__ import annotations

import pytest

from repro.core.commutative import CommutativeOp
from repro.core.directory import Directory, DirectoryEntry
from repro.core.states import LineMode


class TestDirectoryEntry:
    def test_initial_entry_is_uncached_and_consistent(self):
        entry = DirectoryEntry(line_addr=0x40)
        assert entry.mode is LineMode.UNCACHED
        assert entry.is_consistent()

    def test_exclusive_owner_helper(self):
        entry = DirectoryEntry(line_addr=0, mode=LineMode.EXCLUSIVE, sharers={3})
        assert entry.exclusive_owner() == 3
        entry = DirectoryEntry(line_addr=0, mode=LineMode.READ_ONLY, sharers={1, 2})
        assert entry.exclusive_owner() is None

    def test_inconsistent_entries_detected(self):
        bad = DirectoryEntry(line_addr=0, mode=LineMode.EXCLUSIVE, sharers={1, 2})
        assert not bad.is_consistent()
        bad = DirectoryEntry(line_addr=0, mode=LineMode.UPDATE_ONLY, sharers={1})
        assert not bad.is_consistent()  # update-only requires an op


class TestDirectoryTransitions:
    def test_grant_exclusive(self):
        directory = Directory()
        entry = directory.grant_exclusive(0x10, cache_id=2)
        assert entry.mode is LineMode.EXCLUSIVE
        assert entry.sharers == {2}
        directory.check_invariants()

    def test_grant_shared_accumulates_readers(self):
        directory = Directory()
        directory.grant_shared(0x10, 0)
        entry = directory.grant_shared(0x10, 1)
        assert entry.mode is LineMode.READ_ONLY
        assert entry.sharers == {0, 1}
        directory.check_invariants()

    def test_grant_shared_conflicts_with_exclusive(self):
        directory = Directory()
        directory.grant_exclusive(0x10, 0)
        with pytest.raises(ValueError):
            directory.grant_shared(0x10, 1)

    def test_grant_update_only_accumulates_updaters(self):
        directory = Directory()
        directory.grant_update_only(0x10, 0, CommutativeOp.ADD_I64)
        entry = directory.grant_update_only(0x10, 1, CommutativeOp.ADD_I64)
        assert entry.mode is LineMode.UPDATE_ONLY
        assert entry.sharers == {0, 1}
        assert entry.op is CommutativeOp.ADD_I64
        directory.check_invariants()

    def test_update_only_rejects_mixed_op_types(self):
        directory = Directory()
        directory.grant_update_only(0x10, 0, CommutativeOp.ADD_I64)
        with pytest.raises(ValueError):
            directory.grant_update_only(0x10, 1, CommutativeOp.OR_64)

    def test_update_only_rejects_while_other_readers_present(self):
        directory = Directory()
        directory.grant_shared(0x10, 0)
        directory.grant_shared(0x10, 1)
        with pytest.raises(ValueError):
            directory.grant_update_only(0x10, 2, CommutativeOp.ADD_I64)

    def test_remove_sharer_returns_to_uncached(self):
        directory = Directory()
        directory.grant_shared(0x10, 0)
        directory.grant_shared(0x10, 1)
        directory.remove_sharer(0x10, 0)
        entry = directory.remove_sharer(0x10, 1)
        assert entry.mode is LineMode.UNCACHED
        directory.drop_if_uncached(0x10)
        assert directory.peek(0x10) is None

    def test_clear_all_sharers(self):
        directory = Directory()
        directory.grant_update_only(0x10, 0, CommutativeOp.ADD_I64)
        directory.grant_update_only(0x10, 1, CommutativeOp.ADD_I64)
        invalidated = directory.clear_all_sharers(0x10)
        assert invalidated == {0, 1}
        assert directory.entry(0x10).mode is LineMode.UNCACHED

    def test_storage_overhead_matches_paper(self):
        directory = Directory()
        # 16 caches, 8 ops: sharer vector (16) + exclusive bit + 4-bit type.
        assert directory.storage_bits_per_line(n_caches=16, n_ops=8) == 16 + 1 + 4

    def test_len_counts_active_entries(self):
        directory = Directory()
        directory.grant_shared(0x10, 0)
        directory.grant_exclusive(0x20, 1)
        assert len(directory) == 2
