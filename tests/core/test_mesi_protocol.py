"""Unit tests for the MESI protocol engine (single accesses and small sequences)."""

from __future__ import annotations

import pytest

from repro.core.commutative import CommutativeOp
from repro.core.mesi import MesiProtocol
from repro.core.states import LineMode, StableState
from repro.sim.access import MemoryAccess
from repro.sim.config import small_test_config, table1_config


@pytest.fixture
def mesi():
    return MesiProtocol(small_test_config(4))


class TestReadPath:
    def test_first_read_grants_exclusive(self, mesi):
        outcome = mesi.access(0, MemoryAccess.load(0x100), now=0.0)
        assert not outcome.private_hit
        line = mesi.line_addr(0x100)
        assert mesi.core_state(0, line) is StableState.EXCLUSIVE
        assert mesi.directory.entry(line).mode is LineMode.EXCLUSIVE

    def test_second_read_hits(self, mesi):
        mesi.access(0, MemoryAccess.load(0x100), now=0.0)
        outcome = mesi.access(0, MemoryAccess.load(0x100), now=10.0)
        assert outcome.private_hit
        assert outcome.total_latency == mesi.config.l1d.latency

    def test_read_by_second_core_downgrades_owner(self, mesi):
        mesi.access(0, MemoryAccess.store(0x100, 1), now=0.0)
        outcome = mesi.access(1, MemoryAccess.load(0x100), now=10.0)
        line = mesi.line_addr(0x100)
        assert mesi.core_state(0, line) is StableState.SHARED
        assert mesi.core_state(1, line) is StableState.SHARED
        assert outcome.invalidations == 1
        assert mesi.directory.entry(line).mode is LineMode.READ_ONLY

    def test_reads_by_many_cores_share(self, mesi):
        for core in range(4):
            mesi.access(core, MemoryAccess.load(0x200), now=core * 10.0)
        line = mesi.line_addr(0x200)
        entry = mesi.directory.entry(line)
        assert entry.mode is LineMode.READ_ONLY
        assert entry.sharers == {0, 1, 2, 3}


class TestWritePath:
    def test_store_grants_modified(self, mesi):
        mesi.access(0, MemoryAccess.store(0x100, 42), now=0.0)
        line = mesi.line_addr(0x100)
        assert mesi.core_state(0, line) is StableState.MODIFIED
        assert mesi.read_word(0x100) == 42

    def test_store_invalidates_readers(self, mesi):
        for core in (0, 1, 2):
            mesi.access(core, MemoryAccess.load(0x100), now=core * 5.0)
        outcome = mesi.access(3, MemoryAccess.store(0x100, 9), now=100.0)
        line = mesi.line_addr(0x100)
        assert outcome.invalidations == 3
        for core in (0, 1, 2):
            assert mesi.core_state(core, line) is StableState.INVALID
        assert mesi.core_state(3, line) is StableState.MODIFIED

    def test_exclusive_upgrades_silently_on_store(self, mesi):
        mesi.access(0, MemoryAccess.load(0x100), now=0.0)
        outcome = mesi.access(0, MemoryAccess.store(0x100, 5), now=10.0)
        assert outcome.private_hit
        line = mesi.line_addr(0x100)
        assert mesi.core_state(0, line) is StableState.MODIFIED

    def test_write_ping_pong_transfers_ownership(self, mesi):
        line = mesi.line_addr(0x300)
        mesi.access(0, MemoryAccess.store(0x300, 1), now=0.0)
        mesi.access(1, MemoryAccess.store(0x300, 2), now=100.0)
        assert mesi.core_state(0, line) is StableState.INVALID
        assert mesi.core_state(1, line) is StableState.MODIFIED
        assert mesi.read_word(0x300) == 2


class TestAtomicPath:
    def test_commutative_update_treated_as_atomic(self, mesi):
        outcome = mesi.access(
            0, MemoryAccess.commutative(0x100, CommutativeOp.ADD_I64, 5), now=0.0
        )
        line = mesi.line_addr(0x100)
        assert mesi.core_state(0, line) is StableState.MODIFIED
        assert mesi.read_word(0x100) == 5
        assert outcome.value == 5

    def test_atomic_accumulates_across_cores(self, mesi):
        for core in range(4):
            mesi.access(
                core, MemoryAccess.atomic(0x100, CommutativeOp.ADD_I64, 1), now=core * 50.0
            )
        assert mesi.read_word(0x100) == 4

    def test_contended_atomics_serialize(self, mesi):
        """Back-to-back atomics from different cores queue at the directory."""
        mesi.access(0, MemoryAccess.atomic(0x100, CommutativeOp.ADD_I64, 1), now=0.0)
        second = mesi.access(1, MemoryAccess.atomic(0x100, CommutativeOp.ADD_I64, 1), now=0.0)
        third = mesi.access(2, MemoryAccess.atomic(0x100, CommutativeOp.ADD_I64, 1), now=0.0)
        assert second.latency.serialization > 0
        assert third.latency.serialization > second.latency.serialization


class TestEvictions:
    def test_capacity_eviction_notifies_directory(self):
        mesi = MesiProtocol(small_test_config(1))
        # Touch far more lines than the tiny L2 can hold.
        for i in range(256):
            mesi.access(0, MemoryAccess.store(i * 64, i), now=float(i))
        resident = sum(
            1 for line in range(256) if mesi.core_state(0, line) is not StableState.INVALID
        )
        l2_lines = mesi.config.l2.num_lines
        assert resident <= l2_lines
        mesi.directory.check_invariants()

    def test_directory_invariants_hold_after_mixed_traffic(self, mesi):
        for i in range(50):
            core = i % 4
            address = (i % 7) * 64
            if i % 3 == 0:
                mesi.access(core, MemoryAccess.load(address), now=float(i))
            elif i % 3 == 1:
                mesi.access(core, MemoryAccess.store(address, i), now=float(i))
            else:
                mesi.access(
                    core, MemoryAccess.atomic(address, CommutativeOp.ADD_I64, 1), now=float(i)
                )
        mesi.directory.check_invariants()


class TestTrafficAccounting:
    def test_offchip_traffic_only_for_remote_lines(self):
        config = table1_config(32)  # two chips
        mesi = MesiProtocol(config)
        # Core 0 (chip 0) writes, core 16 (chip 1) reads: cross-chip transfer.
        mesi.access(0, MemoryAccess.store(0x1000, 1), now=0.0)
        before = mesi.interconnect.traffic.off_chip_bytes
        mesi.access(16, MemoryAccess.load(0x1000), now=100.0)
        after = mesi.interconnect.traffic.off_chip_bytes
        assert after > before
