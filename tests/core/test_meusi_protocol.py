"""Unit tests for the MEUSI (COUP) protocol engine."""

from __future__ import annotations

import pytest

from repro.core.commutative import CommutativeOp
from repro.core.meusi import MeusiProtocol
from repro.core.mesi import MesiProtocol
from repro.core.states import LineMode, StableState
from repro.sim.access import MemoryAccess
from repro.sim.config import small_test_config, table1_config


@pytest.fixture
def coup():
    return MeusiProtocol(small_test_config(4))


def add(address, value=1):
    return MemoryAccess.commutative(address, CommutativeOp.ADD_I64, value)


class TestUpdateOnlyState:
    def test_unshared_update_granted_modified(self, coup):
        """Like MESI's E optimisation, an unshared update gets M directly."""
        coup.access(0, add(0x100), now=0.0)
        line = coup.line_addr(0x100)
        assert coup.core_state(0, line) is StableState.MODIFIED
        assert coup.read_word(0x100) == 1

    def test_two_updaters_share_update_only_permission(self, coup):
        coup.access(0, add(0x100), now=0.0)
        coup.access(1, add(0x100), now=10.0)
        line = coup.line_addr(0x100)
        entry = coup.directory.entry(line)
        assert entry.mode is LineMode.UPDATE_ONLY
        assert entry.sharers == {0, 1}
        assert entry.op is CommutativeOp.ADD_I64
        assert coup.core_state(0, line) is StableState.UPDATE
        assert coup.core_state(1, line) is StableState.UPDATE

    def test_updates_in_u_are_local_hits(self, coup):
        coup.access(0, add(0x100), now=0.0)
        coup.access(1, add(0x100), now=10.0)
        outcome = coup.access(1, add(0x100), now=20.0)
        assert outcome.private_hit
        assert outcome.total_latency == coup.config.l1d.latency
        assert coup.stat_local_updates >= 1

    def test_no_invalidations_between_concurrent_updaters(self, coup):
        coup.access(0, add(0x100), now=0.0)
        invalidations_before = coup.stat_invalidations
        for i in range(10):
            coup.access(i % 4, add(0x100), now=20.0 + i)
        # Entering U may downgrade the initial M copy, but updaters never
        # invalidate each other.
        assert coup.stat_invalidations == invalidations_before

    def test_read_triggers_full_reduction_with_correct_value(self, coup):
        for i in range(12):
            coup.access(i % 4, add(0x100), now=float(i))
        outcome = coup.access(2, MemoryAccess.load(0x100), now=100.0)
        assert outcome.full_reduction
        assert outcome.value == 12
        line = coup.line_addr(0x100)
        assert coup.directory.entry(line).mode is LineMode.READ_ONLY
        assert coup.core_state(2, line) is StableState.SHARED

    def test_write_after_updates_reduces_then_owns(self, coup):
        for core in range(4):
            coup.access(core, add(0x100), now=float(core))
        coup.access(0, MemoryAccess.store(0x100, 100), now=50.0)
        line = coup.line_addr(0x100)
        assert coup.core_state(0, line) is StableState.MODIFIED
        assert coup.read_word(0x100) == 100

    def test_update_after_read_switches_back_to_update_mode(self, coup):
        coup.access(0, add(0x100), now=0.0)
        coup.access(1, add(0x100), now=5.0)
        coup.access(2, MemoryAccess.load(0x100), now=10.0)
        coup.access(3, add(0x100), now=20.0)
        line = coup.line_addr(0x100)
        entry = coup.directory.entry(line)
        assert entry.mode is LineMode.UPDATE_ONLY
        coup.finalize()
        assert coup.read_word(0x100) == 3


class TestTypeSwitches:
    def test_different_op_types_serialise_via_reduction(self, coup):
        # Two words on the same line, updated with different operations.
        coup.access(0, MemoryAccess.commutative(0x100, CommutativeOp.ADD_I64, 1), now=0.0)
        coup.access(1, MemoryAccess.commutative(0x100, CommutativeOp.ADD_I64, 1), now=5.0)
        reductions_before = coup.stat_full_reductions
        coup.access(2, MemoryAccess.commutative(0x108, CommutativeOp.OR_64, 0b1), now=10.0)
        assert coup.stat_full_reductions == reductions_before + 1
        line = coup.line_addr(0x100)
        assert coup.directory.entry(line).op is CommutativeOp.OR_64
        coup.finalize()
        assert coup.read_word(0x100) == 2
        assert coup.read_word(0x108) == 0b1

    def test_same_type_never_reduces(self, coup):
        for i in range(20):
            coup.access(i % 4, add(0x100), now=float(i))
        assert coup.stat_full_reductions == 0


class TestEvictionsAndPartialReductions:
    def test_capacity_eviction_performs_partial_reduction(self):
        coup = MeusiProtocol(small_test_config(2))
        # Two updaters so lines actually sit in U (not M).
        for i in range(300):
            address = (i % 150) * 64
            coup.access(0, add(address), now=float(i))
            coup.access(1, add(address), now=float(i) + 0.5)
        assert coup.stat_partial_reductions > 0
        coup.directory.check_invariants()
        coup.finalize()
        # Each of the 150 addresses is visited twice, with both cores adding 1
        # per visit, so every word must end up at exactly 4 regardless of how
        # many partial reductions interleaved with the updates.
        for i in range(150):
            assert coup.read_word(i * 64) == 4

    def test_finalize_commits_outstanding_buffers(self, coup):
        coup.access(0, add(0x100, 5), now=0.0)
        coup.access(1, add(0x100, 7), now=1.0)
        coup.finalize()
        assert coup.read_word(0x100) == 12


class TestEquivalenceWithMesiOnNonCommutativeTraffic:
    def test_loads_and_stores_behave_identically(self):
        config = small_test_config(4)
        mesi = MesiProtocol(config)
        coup = MeusiProtocol(small_test_config(4))
        accesses = []
        for i in range(40):
            core = i % 4
            address = (i % 5) * 64
            if i % 2:
                accesses.append((core, MemoryAccess.load(address)))
            else:
                accesses.append((core, MemoryAccess.store(address, i)))
        for now, (core, access) in enumerate(accesses):
            mesi_outcome = mesi.access(core, access, now=float(now * 10))
            coup_outcome = coup.access(core, access, now=float(now * 10))
            assert mesi_outcome.total_latency == coup_outcome.total_latency
        assert mesi.memory_image == coup.memory_image


class TestHierarchicalReductions:
    def test_cross_chip_reduction_uses_l4_unit(self):
        config = table1_config(32)  # cores 0-15 on chip 0, 16-31 on chip 1
        coup = MeusiProtocol(config)
        coup.access(0, add(0x100), now=0.0)
        coup.access(16, add(0x100), now=10.0)
        coup.access(1, add(0x100), now=20.0)
        coup.access(17, add(0x100), now=30.0)
        outcome = coup.access(5, MemoryAccess.load(0x100), now=100.0)
        assert outcome.full_reduction
        assert outcome.value == 4
        l4_units_used = [unit for unit in coup.l4_reduction_units.values() if unit.reductions]
        assert l4_units_used, "a cross-chip reduction must use an L4 reduction unit"
