"""Unit tests for coherence state definitions and the N-state type field."""

from __future__ import annotations

import pytest

from repro.core.commutative import CommutativeOp
from repro.core.states import (
    LineMode,
    NonExclusiveType,
    RequestType,
    StableState,
    decode_type_field,
    encode_type_field,
)


class TestStableState:
    def test_read_permissions(self):
        assert StableState.SHARED.can_read
        assert StableState.EXCLUSIVE.can_read
        assert StableState.MODIFIED.can_read
        assert not StableState.UPDATE.can_read
        assert not StableState.INVALID.can_read

    def test_write_permissions(self):
        assert StableState.MODIFIED.can_write
        assert StableState.EXCLUSIVE.can_write
        assert not StableState.SHARED.can_write
        assert not StableState.UPDATE.can_write
        assert not StableState.INVALID.can_write

    def test_update_permissions_in_owned_states(self):
        for state in (StableState.MODIFIED, StableState.EXCLUSIVE):
            assert state.can_update(CommutativeOp.ADD_I64, None)
            assert state.can_update(CommutativeOp.OR_64, CommutativeOp.ADD_I64)

    def test_update_permission_in_u_requires_matching_op(self):
        state = StableState.UPDATE
        assert state.can_update(CommutativeOp.ADD_I64, CommutativeOp.ADD_I64)
        assert not state.can_update(CommutativeOp.ADD_I64, CommutativeOp.OR_64)
        assert not state.can_update(None, CommutativeOp.ADD_I64)

    def test_invalid_and_shared_cannot_update(self):
        assert not StableState.INVALID.can_update(CommutativeOp.ADD_I64, None)
        assert not StableState.SHARED.can_update(CommutativeOp.ADD_I64, None)

    def test_request_types(self):
        assert {r.value for r in RequestType} == {"R", "W", "C"}

    def test_line_modes(self):
        assert len(LineMode) == 4


class TestNonExclusiveType:
    def test_read_only_singleton(self):
        assert NonExclusiveType.READ_ONLY.is_read_only
        assert not NonExclusiveType.READ_ONLY.is_update

    def test_update_type(self):
        ne_type = NonExclusiveType(CommutativeOp.ADD_I32)
        assert ne_type.is_update
        assert ne_type.compatible_with_update(CommutativeOp.ADD_I32)
        assert not ne_type.compatible_with_update(CommutativeOp.ADD_I64)
        assert not ne_type.compatible_with_read()

    def test_equality_and_hash(self):
        a = NonExclusiveType(CommutativeOp.OR_64)
        b = NonExclusiveType(CommutativeOp.OR_64)
        assert a == b
        assert hash(a) == hash(b)
        assert a != NonExclusiveType.READ_ONLY


class TestTypeFieldEncoding:
    def test_four_bits_suffice_for_eight_ops(self):
        codes = {encode_type_field(NonExclusiveType(op)) for op in CommutativeOp}
        codes.add(encode_type_field(NonExclusiveType.READ_ONLY))
        assert len(codes) == 9
        assert max(codes) < 16  # fits in the paper's 4-bit field

    def test_round_trip(self):
        for op in CommutativeOp:
            field = encode_type_field(NonExclusiveType(op))
            assert decode_type_field(field).op is op
        assert decode_type_field(0).is_read_only

    def test_invalid_field_rejected(self):
        with pytest.raises(ValueError):
            decode_type_field(42)
