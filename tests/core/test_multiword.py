"""Tests for the multi-word set-insertion extension (Sec. 7 future work)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multiword import (
    SetDeltaBuffer,
    SetInsertOp,
    reduce_set_deltas,
    reduce_with_overflow,
)


class TestSetInsertOp:
    def test_identity_is_empty_set(self):
        op = SetInsertOp()
        assert op.identity == frozenset()
        assert op.apply(op.identity, [1, 2]) == frozenset({1, 2})

    def test_idempotent_and_commutative(self):
        op = SetInsertOp()
        a = op.apply(frozenset({1}), [2, 2, 3])
        b = op.apply(frozenset({2, 3}), [1])
        assert a == b == frozenset({1, 2, 3})

    def test_capacity_check(self):
        op = SetInsertOp(capacity=2)
        assert op.fits(frozenset({1, 2}))
        assert not op.fits(frozenset({1, 2, 3}))


class TestSetDeltaBuffer:
    def test_buffers_insertions(self):
        buffer = SetDeltaBuffer(SetInsertOp())
        assert buffer.is_empty()
        assert buffer.insert(5)
        assert buffer.insert(5)  # idempotent re-insert always fits
        assert buffer.inserted == frozenset({5})

    def test_overflow_flagged(self):
        buffer = SetDeltaBuffer(SetInsertOp(capacity=2))
        assert buffer.insert(1)
        assert buffer.insert(2)
        assert not buffer.insert(3)
        assert buffer.overflowed
        buffer.clear()
        assert not buffer.overflowed and buffer.is_empty()


class TestSetReduction:
    def test_reduction_is_union(self):
        op = SetInsertOp()
        buffers = []
        for values in ([1, 2], [2, 3], [9]):
            buffer = SetDeltaBuffer(op)
            for value in values:
                buffer.insert(value)
            buffers.append(buffer)
        result = reduce_set_deltas(op, frozenset({0}), buffers)
        assert result == frozenset({0, 1, 2, 3, 9})

    def test_reduction_order_independent(self):
        op = SetInsertOp()
        buffers = []
        for seed in range(4):
            buffer = SetDeltaBuffer(op)
            for value in range(seed, seed + 3):
                buffer.insert(value)
            buffers.append(buffer)
        shuffled = list(buffers)
        random.Random(1).shuffle(shuffled)
        assert reduce_set_deltas(op, frozenset(), buffers) == reduce_set_deltas(
            op, frozenset(), shuffled
        )

    def test_overflow_propagates_to_outcome(self):
        op = SetInsertOp(capacity=3)
        big = SetDeltaBuffer(op)
        for value in range(3):
            big.insert(value)
        other = SetDeltaBuffer(op)
        other.insert(99)
        outcome = reduce_with_overflow(op, frozenset(), [big, other])
        assert outcome.value == frozenset({0, 1, 2, 99})
        assert outcome.overflowed
        assert outcome.n_partials == 2

    @given(
        partitions=st.lists(
            st.lists(st.integers(min_value=0, max_value=30), max_size=6),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_property_reduction_equals_flat_union(self, partitions):
        op = SetInsertOp(capacity=64)
        buffers = []
        for values in partitions:
            buffer = SetDeltaBuffer(op)
            for value in values:
                buffer.insert(value)
            buffers.append(buffer)
        expected = frozenset().union(*[frozenset(p) for p in partitions]) if partitions else frozenset()
        assert reduce_set_deltas(op, frozenset(), buffers) == expected
