"""Property-based cross-check of the :class:`DirectoryArray` mirror.

The batched kernel's group-retirement gate classifies pending slow accesses
against the flat NumPy mirror instead of the object :class:`Directory`.  The
mirror is advisory — retirement revalidates every shape against the object
directory — but a wrong mirror row still costs real performance (spurious
group entries or declines), so the resync discipline is pinned here: random
transaction sequences drive the object directory, the kernel's resync calls
are replayed on the mirror, and after every resync boundary the mirror must
agree with the object directory field-for-field
(:meth:`DirectoryArray.check_invariants` compares mode, op, sharer count,
sharer bits, and ``busy_until``).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.commutative import ALL_OPS
from repro.core.directory import (
    DIR_OP_NONE,
    MODE_EXCLUSIVE,
    MODE_READ_ONLY,
    MODE_UNCACHED,
    MODE_UPDATE_ONLY,
    Directory,
    DirectoryArray,
)
from repro.core.states import LineMode

N_CACHES = 8
N_LINES = 6

#: One random transaction: (kind, line, cache, op-index, busy-delta).  The
#: kind is interpreted against the directory's *current* state so that only
#: legal protocol transitions are issued (the same guarantee the engines
#: provide); illegal draws degrade to a legal fallback instead of raising.
transactions = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=N_LINES - 1),
        st.integers(min_value=0, max_value=N_CACHES - 1),
        st.integers(min_value=0, max_value=len(ALL_OPS) - 1),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    ),
    min_size=1,
    max_size=120,
)


def _apply(directory: Directory, kind, line_addr, cache_id, op_index, busy):
    """Issue one legal transaction; return the line it touched."""
    entry = directory.entry(line_addr)
    if kind == 0:  # demand write: take the line exclusively
        directory.clear_all_sharers(line_addr)
        directory.grant_exclusive(line_addr, cache_id)
    elif kind == 1:  # demand read: join the reader set if the mode allows
        if entry.mode not in (LineMode.UNCACHED, LineMode.READ_ONLY):
            directory.clear_all_sharers(line_addr)
        directory.grant_shared(line_addr, cache_id)
    elif kind == 2:  # commutative update: join/open the updater set
        op = ALL_OPS[op_index]
        if entry.mode is LineMode.UPDATE_ONLY and entry.op is not op:
            directory.clear_all_sharers(line_addr)  # cross-op reduction
        elif entry.mode in (LineMode.EXCLUSIVE, LineMode.READ_ONLY):
            if entry.sharers - {cache_id}:
                directory.clear_all_sharers(line_addr)
        directory.grant_update_only(line_addr, cache_id, op)
    elif kind == 3:  # eviction of an actual sharer
        if cache_id in entry.sharers:
            directory.remove_sharer(line_addr, cache_id)
            directory.drop_if_uncached(line_addr)
    elif kind == 4:  # reduction / full invalidation
        directory.clear_all_sharers(line_addr)
        directory.drop_if_uncached(line_addr)
    else:  # directory home goes busy serialising a transfer
        entry.busy_until = busy
    return line_addr


class TestMirrorStaysCoherent:
    @given(sequence=transactions)
    @settings(max_examples=150, deadline=None)
    def test_resynced_mirror_matches_directory(self, sequence):
        """After every resync boundary the mirror equals the directory."""
        directory = Directory()
        mirror = DirectoryArray(N_CACHES, capacity=16)
        stale: set = set()
        for step, (kind, line, cache, op_index, busy) in enumerate(sequence):
            line_addr = 0x40 * (line + 1)
            # Pull the row first so the mirror holds a (possibly stale) copy,
            # mimicking the kernel classifying the line before retiring it.
            mirror.row_of(line_addr, directory)
            stale.add(_apply(directory, kind, line_addr, cache, op_index, busy))
            if step % 3 == 2:  # the kernel resyncs at slow-path boundaries
                mirror.sync_lines(stale, directory)
                stale.clear()
                mirror.check_invariants(directory)
                directory.check_invariants()
        mirror.sync_lines(stale, directory)
        mirror.check_invariants(directory)
        directory.check_invariants()

    @given(sequence=transactions)
    @settings(max_examples=60, deadline=None)
    def test_stale_rows_never_leak_into_fresh_lookups(self, sequence):
        """``rows_for`` on lines never mirrored pulls current state."""
        directory = Directory()
        mirror = DirectoryArray(N_CACHES, capacity=16)
        for kind, line, cache, op_index, busy in sequence:
            _apply(directory, kind, 0x40 * (line + 1), cache, op_index, busy)
        line_addrs = [0x40 * (line + 1) for line in range(N_LINES)]
        rows = mirror.rows_for(np.array(line_addrs, dtype=np.int64), directory)
        for line_addr, row in zip(line_addrs, rows):
            entry = directory.peek(line_addr)
            expected = (
                MODE_UNCACHED
                if entry is None
                else {
                    LineMode.UNCACHED: MODE_UNCACHED,
                    LineMode.EXCLUSIVE: MODE_EXCLUSIVE,
                    LineMode.READ_ONLY: MODE_READ_ONLY,
                    LineMode.UPDATE_ONLY: MODE_UPDATE_ONLY,
                }[entry.mode]
            )
            assert int(mirror.mode[row]) == expected
        mirror.check_invariants(directory)


class TestMirrorPrimitives:
    def test_row_growth_preserves_rows(self):
        directory = Directory()
        mirror = DirectoryArray(4, capacity=16)
        for i in range(64):  # force two capacity doublings
            directory.grant_exclusive(0x40 * i, cache_id=i % 4)
            mirror.row_of(0x40 * i, directory)
        assert mirror.capacity >= 64
        mirror.check_invariants(directory)

    def test_is_sharer_tracks_bit_vector_words(self):
        directory = Directory()
        n_caches = 70  # spans two uint64 sharer words
        mirror = DirectoryArray(n_caches)
        directory.grant_shared(0x80, 3)
        directory.grant_shared(0x80, 69)
        row = mirror.row_of(0x80, directory)
        assert mirror.is_sharer(row, 3)
        assert mirror.is_sharer(row, 69)
        assert not mirror.is_sharer(row, 64)

    def test_sharer_sets_disjoint(self):
        directory = Directory()
        mirror = DirectoryArray(N_CACHES)
        directory.grant_shared(0x40, 0)
        directory.grant_shared(0x40, 1)
        directory.grant_shared(0x80, 2)
        directory.grant_exclusive(0xC0, 1)  # overlaps line 0x40's sharers
        rows_disjoint = mirror.rows_for(np.array([0x40, 0x80]), directory)
        rows_overlap = mirror.rows_for(np.array([0x40, 0xC0]), directory)
        assert mirror.sharer_sets_disjoint(rows_disjoint)
        assert not mirror.sharer_sets_disjoint(rows_overlap)

    def test_uncached_rows_read_as_empty(self):
        directory = Directory()
        mirror = DirectoryArray(N_CACHES)
        row = mirror.row_of(0x140, directory)  # never granted anywhere
        assert int(mirror.mode[row]) == MODE_UNCACHED
        assert int(mirror.op[row]) == DIR_OP_NONE
        assert int(mirror.n_sharers[row]) == 0

    def test_invalidate_line_refreshes_single_row(self):
        directory = Directory()
        mirror = DirectoryArray(N_CACHES)
        directory.grant_exclusive(0x40, 1)
        row = mirror.row_of(0x40, directory)
        directory.clear_all_sharers(0x40)
        assert int(mirror.mode[row]) == MODE_EXCLUSIVE  # stale until resync
        mirror.invalidate_line(0x40, directory)
        assert int(mirror.mode[row]) == MODE_UNCACHED
        mirror.check_invariants(directory)

    def test_check_invariants_catches_divergence(self):
        directory = Directory()
        mirror = DirectoryArray(N_CACHES)
        directory.grant_exclusive(0x40, 1)
        mirror.row_of(0x40, directory)
        directory.clear_all_sharers(0x40)  # mirror now stale on purpose
        with pytest.raises(AssertionError):
            mirror.check_invariants(directory)
