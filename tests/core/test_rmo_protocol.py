"""Unit tests for the RMO (remote memory operation) baseline protocol."""

from __future__ import annotations

import pytest

from repro.core.commutative import CommutativeOp
from repro.core.rmo import RmoProtocol
from repro.core.states import StableState
from repro.sim.access import MemoryAccess
from repro.sim.config import small_test_config, table1_config


@pytest.fixture
def rmo():
    return RmoProtocol(small_test_config(4))


def add(address, value=1):
    return MemoryAccess.commutative(address, CommutativeOp.ADD_I64, value)


class TestRemoteUpdates:
    def test_update_executes_at_home_without_caching(self, rmo):
        rmo.access(0, add(0x100, 3), now=0.0)
        line = rmo.line_addr(0x100)
        assert rmo.core_state(0, line) is StableState.INVALID
        assert rmo.read_word(0x100) == 3
        assert rmo.stat_remote_updates == 1

    def test_updates_accumulate_correctly(self, rmo):
        for core in range(4):
            for _ in range(5):
                rmo.access(core, add(0x100), now=0.0)
        assert rmo.read_word(0x100) == 20

    def test_remote_alu_serializes_contended_updates(self, rmo):
        first = rmo.access(0, add(0x100), now=0.0)
        second = rmo.access(1, add(0x100), now=0.0)
        third = rmo.access(2, add(0x100), now=0.0)
        assert second.latency.serialization >= 0
        assert third.latency.serialization > first.latency.serialization

    def test_every_update_pays_network_latency(self, rmo):
        """Unlike COUP, repeated updates never become private-cache hits."""
        first = rmo.access(0, add(0x100), now=0.0)
        repeat = rmo.access(0, add(0x100), now=1000.0)
        assert not repeat.private_hit
        assert repeat.total_latency >= rmo.config.l3.latency

    def test_reads_and_ordinary_traffic_fall_back_to_mesi(self, rmo):
        rmo.access(0, MemoryAccess.store(0x200, 7), now=0.0)
        outcome = rmo.access(0, MemoryAccess.load(0x200), now=10.0)
        assert outcome.private_hit
        assert rmo.read_word(0x200) == 7

    def test_update_invalidates_stale_private_copies(self, rmo):
        rmo.access(1, MemoryAccess.load(0x100), now=0.0)
        rmo.access(0, add(0x100), now=10.0)
        line = rmo.line_addr(0x100)
        assert rmo.core_state(1, line) is StableState.INVALID


class TestRmoVsCoupTraffic:
    def test_rmo_sends_every_update_across_chip_boundary(self):
        config = table1_config(32)
        rmo = RmoProtocol(config)
        target = 0x40  # home L4 chip = line 1 % 2 = 1, requester on chip 0
        for i in range(20):
            rmo.access(0, add(target), now=float(i))
        assert rmo.interconnect.traffic.off_chip_bytes > 0
