"""Unit tests for the reduction unit model."""

from __future__ import annotations

import pytest

from repro.core.commutative import CommutativeOp, DeltaBuffer
from repro.core.reduction import (
    ReductionUnit,
    flat_reduction_ops,
    hierarchical_reduction_ops,
)
from repro.sim.config import ReductionUnitConfig


class TestReductionTiming:
    def test_zero_partials_is_free(self):
        unit = ReductionUnit()
        timing = unit.timing_for(0)
        assert timing.latency == 0
        assert timing.occupancy == 0

    def test_pipelined_unit_latency(self):
        unit = ReductionUnit(ReductionUnitConfig.fast())
        timing = unit.timing_for(4)
        # 3-cycle pipeline latency + one line every 2 cycles thereafter.
        assert timing.latency == 3 + 3 * 2
        assert timing.occupancy == 4 * 2

    def test_unpipelined_unit_latency(self):
        unit = ReductionUnit(ReductionUnitConfig.slow())
        timing = unit.timing_for(4)
        assert timing.latency == 4 * 16
        assert timing.occupancy == 4 * 16

    def test_slow_unit_is_slower(self):
        fast = ReductionUnit(ReductionUnitConfig.fast()).timing_for(8)
        slow = ReductionUnit(ReductionUnitConfig.slow()).timing_for(8)
        assert slow.latency > fast.latency
        assert slow.occupancy > fast.occupancy

    def test_schedule_accounts_for_queueing(self):
        unit = ReductionUnit(ReductionUnitConfig.fast())
        first = unit.schedule(now=100.0, n_partials=4)
        assert first.latency == unit.timing_for(4).latency
        # A second reduction issued immediately must wait for the first.
        second = unit.schedule(now=100.0, n_partials=1)
        assert second.latency > unit.timing_for(1).latency

    def test_schedule_after_idle_has_no_wait(self):
        unit = ReductionUnit()
        unit.schedule(now=0.0, n_partials=2)
        later = unit.schedule(now=1000.0, n_partials=2)
        assert later.latency == unit.timing_for(2).latency

    def test_statistics_accumulate(self):
        unit = ReductionUnit()
        unit.schedule(0.0, 3)
        unit.schedule(50.0, 2)
        assert unit.reductions == 2
        assert unit.lines_reduced == 5
        unit.reset_statistics()
        assert unit.reductions == 0


class TestFunctionalReduction:
    def test_reduce_values_folds_buffers(self):
        op = CommutativeOp.ADD_I64
        buffers = []
        for delta in (1, 2, 3):
            buffer = DeltaBuffer(op)
            buffer.update(0x0, delta)
            buffers.append(buffer)
        result = ReductionUnit.reduce_values(op, {0x0: 10}, buffers)
        assert result[0x0] == 16


class TestHierarchicalReduction:
    def test_paper_example(self):
        # 128 cores, 8 sockets of 16: 8 + 16 = 24 ops on the critical path,
        # far fewer than the 128 of a flat reduction (Sec. 3.2).
        assert hierarchical_reduction_ops([8, 16]) == 24
        assert flat_reduction_ops(128) == 128
        assert hierarchical_reduction_ops([8, 16]) < flat_reduction_ops(128)
