"""Unit tests for commutative operation specs and delta buffers."""

from __future__ import annotations

import pytest

from repro.core.commutative import (
    ADDITIVE_OPS,
    ALL_OPS,
    BITWISE_OPS,
    CommutativeOp,
    DeltaBuffer,
    commutes_with,
    reduce_partial_updates,
)


class TestOperationSpecs:
    def test_eight_operations_supported(self):
        assert len(ALL_OPS) == 8

    def test_additive_and_bitwise_partition(self):
        assert set(ADDITIVE_OPS) | set(BITWISE_OPS) == set(ALL_OPS)
        assert not set(ADDITIVE_OPS) & set(BITWISE_OPS)

    @pytest.mark.parametrize("op", list(CommutativeOp))
    def test_identity_element_is_neutral(self, op):
        for value in (0, 1, 7, 12345, -3 if op.spec.signed else 3):
            wrapped = op.apply(op.identity, value)
            assert wrapped == op.apply(value, op.identity) == op.spec._wrap(value)

    @pytest.mark.parametrize("op", list(CommutativeOp))
    def test_commutativity(self, op):
        a, b = 13, 911
        assert op.apply(a, b) == op.apply(b, a)

    @pytest.mark.parametrize("op", list(CommutativeOp))
    def test_associativity(self, op):
        a, b, c = 5, 17, 250
        left = op.apply(op.apply(a, b), c)
        right = op.apply(a, op.apply(b, c))
        assert left == right

    def test_int16_addition_wraps(self):
        op = CommutativeOp.ADD_I16
        assert op.apply(32767, 1) == -32768
        assert op.apply(-32768, -1) == 32767

    def test_int32_addition_wraps(self):
        op = CommutativeOp.ADD_I32
        assert op.apply(2**31 - 1, 1) == -(2**31)

    def test_and_identity_is_all_ones(self):
        op = CommutativeOp.AND_64
        assert op.identity == (1 << 64) - 1
        assert op.apply(op.identity, 0xDEAD) == 0xDEAD

    def test_or_and_xor_identity_is_zero(self):
        assert CommutativeOp.OR_64.identity == 0
        assert CommutativeOp.XOR_64.identity == 0

    def test_float_addition(self):
        op = CommutativeOp.ADD_F64
        assert op.apply(1.5, 2.25) == pytest.approx(3.75)
        assert isinstance(op.apply(1, 2), float)

    def test_reduce_matches_sequential_fold(self):
        op = CommutativeOp.ADD_I64
        deltas = [1, 2, 3, 4, 5]
        assert op.reduce(deltas) == 15

    def test_word_bytes(self):
        assert CommutativeOp.ADD_I16.word_bytes == 2
        assert CommutativeOp.ADD_I32.word_bytes == 4
        assert CommutativeOp.ADD_I64.word_bytes == 8
        assert CommutativeOp.ADD_F32.word_bytes == 4
        assert CommutativeOp.OR_64.word_bytes == 8

    def test_commutes_with_only_same_op(self):
        assert commutes_with(CommutativeOp.ADD_I64, CommutativeOp.ADD_I64)
        assert not commutes_with(CommutativeOp.ADD_I64, CommutativeOp.OR_64)
        assert not commutes_with(CommutativeOp.AND_64, CommutativeOp.OR_64)


class TestDeltaBuffer:
    def test_starts_empty(self):
        buffer = DeltaBuffer(CommutativeOp.ADD_I64)
        assert buffer.is_empty()
        assert buffer.delta(0x100) == 0

    def test_accumulates_updates(self):
        buffer = DeltaBuffer(CommutativeOp.ADD_I64)
        buffer.update(0x100, 3)
        buffer.update(0x100, 4)
        buffer.update(0x108, 1)
        assert buffer.delta(0x100) == 7
        assert buffer.delta(0x108) == 1
        assert buffer.touched_offsets() == [0x100, 0x108]

    def test_or_buffer_accumulates_bits(self):
        buffer = DeltaBuffer(CommutativeOp.OR_64)
        buffer.update(0x0, 0b0001)
        buffer.update(0x0, 0b1000)
        assert buffer.delta(0x0) == 0b1001

    def test_merge_into_applies_deltas_to_base(self):
        buffer = DeltaBuffer(CommutativeOp.ADD_I64)
        buffer.update(0x0, 5)
        merged = buffer.merge_into({0x0: 10, 0x8: 2})
        assert merged == {0x0: 15, 0x8: 2}

    def test_clear(self):
        buffer = DeltaBuffer(CommutativeOp.ADD_I64)
        buffer.update(0x0, 5)
        buffer.clear()
        assert buffer.is_empty()


class TestReducePartialUpdates:
    def test_order_independent(self):
        op = CommutativeOp.ADD_I64
        buffers = []
        for i in range(4):
            buffer = DeltaBuffer(op)
            buffer.update(0x0, i + 1)
            buffers.append(buffer)
        base = {0x0: 100}
        forward = reduce_partial_updates(op, base, buffers)
        backward = reduce_partial_updates(op, base, list(reversed(buffers)))
        assert forward == backward == {0x0: 110}

    def test_mismatched_op_rejected(self):
        add_buffer = DeltaBuffer(CommutativeOp.ADD_I64)
        with pytest.raises(ValueError):
            reduce_partial_updates(CommutativeOp.OR_64, {}, [add_buffer])

    def test_untouched_words_unchanged(self):
        op = CommutativeOp.OR_64
        buffer = DeltaBuffer(op)
        buffer.update(0x8, 0b10)
        result = reduce_partial_updates(op, {0x0: 7, 0x8: 1}, [buffer])
        assert result == {0x0: 7, 0x8: 3}
