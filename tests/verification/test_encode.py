"""Repro-file codec: canonical round trips, loud failure on any damage."""

from __future__ import annotations

import json

import pytest

from repro.verification import encode
from repro.verification.invariants import check_invariants
from repro.verification.model import CoherenceModel, ModelConfig


CONFIG = ModelConfig(n_cores=2, n_ops=1, protocol="MEUSI", value_base=2)


def _sample_repro() -> dict:
    """A small, real repro document: one mutated-model violation."""
    model = CoherenceModel(CONFIG, mutation="dir.GetX.keep_sharers")
    # Walk breadth-first until the mutation produces a violation.
    frontier = [(model.initial_state(), [])]
    seen = {model.initial_state().key()}
    while frontier:
        state, trace = frontier.pop(0)
        violations = check_invariants(state, CONFIG)
        if violations:
            return encode.make_repro(
                lane="test",
                kind="model-trace",
                config=encode.config_to_jsonable(CONFIG),
                trace=trace,
                violation=encode.violation_to_jsonable(violations[0]),
                mutation="dir.GetX.keep_sharers",
            )
        for rule, successor in model.ordered_successors(state):
            if successor.key() not in seen:
                seen.add(successor.key())
                frontier.append((successor, trace + [rule]))
    raise AssertionError("mutated model produced no violation")


class TestRoundTrips:
    def test_config_round_trip(self):
        data = encode.config_to_jsonable(CONFIG)
        assert encode.config_from_jsonable(data) == CONFIG

    def test_state_round_trip_preserves_key(self):
        model = CoherenceModel(CONFIG)
        state = model.initial_state()
        for _ in range(4):
            successors = model.ordered_successors(state)
            assert successors
            state = successors[0][1]
        restored = encode.state_from_jsonable(encode.state_to_jsonable(state))
        assert restored.key() == state.key()

    def test_state_digest_is_stable_across_encodes(self):
        state = CoherenceModel(CONFIG).initial_state()
        assert encode.state_digest(state) == encode.state_digest(state)

    def test_canonical_dumps_is_key_order_independent(self):
        assert encode.canonical_dumps({"b": 1, "a": 2}) == encode.canonical_dumps(
            {"a": 2, "b": 1}
        )

    def test_write_then_load_round_trips(self, tmp_path):
        repro = _sample_repro()
        path = str(tmp_path / "repro.json")
        encode.write_repro(path, repro)
        loaded = encode.load_repro(path)
        for field in ("schema", "lane", "kind", "config", "mutation", "trace", "violation"):
            assert loaded[field] == repro[field]
        assert "crc32" in loaded


class TestDamageFailsLoudly:
    def test_truncated_file(self, tmp_path):
        path = str(tmp_path / "repro.json")
        encode.write_repro(path, _sample_repro())
        text = open(path).read()
        with open(path, "w") as handle:
            handle.write(text[: len(text) // 2])
        with pytest.raises(encode.ReproFileError, match="truncated or corrupt"):
            encode.load_repro(path)

    def test_flipped_content_fails_checksum(self, tmp_path):
        path = str(tmp_path / "repro.json")
        encode.write_repro(path, _sample_repro())
        document = json.loads(open(path).read())
        document["trace"] = document["trace"][:-1]  # drop one step, keep crc32
        with open(path, "w") as handle:
            json.dump(document, handle, sort_keys=True)
        with pytest.raises(encode.ReproFileError, match="checksum mismatch"):
            encode.load_repro(path)

    def test_missing_field(self, tmp_path):
        path = str(tmp_path / "repro.json")
        encode.write_repro(path, _sample_repro())
        document = json.loads(open(path).read())
        del document["violation"]
        with open(path, "w") as handle:
            json.dump(document, handle, sort_keys=True)
        with pytest.raises(encode.ReproFileError, match="missing field"):
            encode.load_repro(path)

    def test_wrong_schema(self, tmp_path):
        path = str(tmp_path / "repro.json")
        encode.write_repro(path, _sample_repro())
        document = json.loads(open(path).read())
        document["schema"] = "something-else/9"
        with open(path, "w") as handle:
            json.dump(document, handle, sort_keys=True)
        with pytest.raises(encode.ReproFileError, match="schema"):
            encode.load_repro(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(encode.ReproFileError, match="cannot read"):
            encode.load_repro(str(tmp_path / "absent.json"))

    def test_unknown_kind_rejected_at_assembly(self):
        repro = _sample_repro()
        with pytest.raises(ValueError, match="unknown repro kind"):
            encode.make_repro(
                lane="test",
                kind="not-a-kind",
                config=repro["config"],
                trace=repro["trace"],
                violation=repro["violation"],
                mutation=None,
            )
