"""Differential cross-checks: model vs live engines, stream minimization."""

from __future__ import annotations

import pytest

from repro.verification.differential import (
    StreamConfig,
    check_live,
    generate_stream,
    replay_stream_model,
    run_differential,
    shrink_stream,
)


class TestStreamGeneration:
    def test_stream_is_deterministic_per_seed(self):
        config = StreamConfig(seed=5)
        assert generate_stream(config) == generate_stream(config)

    def test_streams_differ_across_seeds(self):
        assert generate_stream(StreamConfig(seed=0)) != generate_stream(
            StreamConfig(seed=1)
        )

    def test_config_round_trips(self):
        config = StreamConfig(protocol="COUP", n_cores=3, seed=9, length=32)
        assert StreamConfig.from_jsonable(config.to_jsonable()) == config


class TestCleanRuns:
    @pytest.mark.parametrize("protocol", ["MESI", "COUP", "MEUSI", "RMO"])
    def test_all_protocols_verify(self, protocol):
        result = run_differential(StreamConfig(protocol=protocol, seed=0))
        assert result.verified, result.failure
        assert "model-correspondence" in result.checks
        assert "kernel-equivalence" in result.checks
        assert "directory-invariants" in result.checks

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_meusi_across_seeds(self, seed):
        result = run_differential(StreamConfig(protocol="MEUSI", seed=seed))
        assert result.verified, result.failure

    def test_model_only_mode(self):
        result = run_differential(StreamConfig(seed=0), live=False)
        assert result.verified
        assert result.checks == ["model-correspondence"]

    def test_live_checks_pass_standalone(self):
        config = StreamConfig(protocol="MEUSI", seed=0)
        failure, checks = check_live(config, generate_stream(config))
        assert failure is None
        assert checks == [
            "kernel-equivalence",
            "directory-invariants",
            "value-correspondence",
        ]


class TestMutationCatch:
    CASES = [
        ("dir.GetX.keep_sharers", 1),
        ("dir.PutU.drop_delta", 0),
        ("core.local_update_in_u.drop_ghost", 0),
    ]

    @pytest.mark.parametrize("mutation,seed", CASES)
    def test_mutation_fails_and_shrinks(self, mutation, seed):
        config = StreamConfig(protocol="MEUSI", seed=seed)
        stream = generate_stream(config)
        failure = replay_stream_model(config, stream, mutation=mutation)
        assert failure is not None, f"{mutation} not caught at seed {seed}"
        minimal, min_failure = shrink_stream(config, stream, mutation=mutation)
        assert len(minimal) <= 4, minimal  # all three shrink to 3 transactions
        assert min_failure.reason.startswith("model-")
        # The minimal stream replays to the same class of failure.
        replayed = replay_stream_model(config, minimal, mutation=mutation)
        assert replayed is not None
        assert replayed.reason == min_failure.reason

    def test_shrink_is_deterministic_and_idempotent(self):
        mutation, seed = self.CASES[0]
        config = StreamConfig(protocol="MEUSI", seed=seed)
        stream = generate_stream(config)
        first, _ = shrink_stream(config, stream, mutation=mutation)
        second, _ = shrink_stream(config, stream, mutation=mutation)
        assert first == second
        again, _ = shrink_stream(config, first, mutation=mutation)
        assert again == first

    def test_mutated_run_reports_failure_summary(self):
        result = run_differential(
            StreamConfig(protocol="MEUSI", seed=1),
            mutation="dir.GetX.keep_sharers",
        )
        assert not result.verified
        summary = result.summary()
        assert summary["verified"] is False
        assert summary["failure"] == "model-invariant"
