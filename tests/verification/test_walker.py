"""Randomized interleaving swarm: determinism, diversity, budget semantics."""

from __future__ import annotations

from repro.verification.model import ModelConfig
from repro.verification.walker import (
    random_walk,
    rule_class,
    run_swarm,
    walker_disabled_classes,
)


CONFIG = ModelConfig(n_cores=2, n_ops=2, protocol="MEUSI", value_base=2)


class TestDeterminism:
    def test_walk_is_a_pure_function_of_seed_and_index(self):
        first = random_walk(CONFIG, 7, max_steps=300, walker_index=2)
        second = random_walk(CONFIG, 7, max_steps=300, walker_index=2)
        assert first.trace == second.trace
        assert first.steps == second.steps

    def test_different_indices_diverge(self):
        a = random_walk(CONFIG, 7, max_steps=300, walker_index=0)
        b = random_walk(CONFIG, 7, max_steps=300, walker_index=1)
        assert a.trace != b.trace

    def test_swarm_runs_are_identical(self):
        first = run_swarm(CONFIG, n_walkers=4, max_steps=200, seed=3)
        second = run_swarm(CONFIG, n_walkers=4, max_steps=200, seed=3)
        assert first.summary() == second.summary()
        assert [w.trace for w in first.walks] == [w.trace for w in second.walks]


class TestDiversity:
    def test_walkers_disable_different_rule_classes(self):
        subsets = {walker_disabled_classes(0, index) for index in range(8)}
        assert len(subsets) > 1

    def test_rule_class_buckets_rules(self):
        assert rule_class("core0.read_miss") == rule_class("core1.read_miss")
        assert rule_class("core0.read_miss") != rule_class("dir.GetX")


class TestSwarm:
    def test_clean_model_verifies(self):
        swarm = run_swarm(CONFIG, n_walkers=4, max_steps=300, seed=0)
        assert swarm.verified
        assert swarm.total_steps > 0
        assert swarm.summary()["failed_walker"] is None

    def test_mutation_is_caught_with_a_trace(self):
        swarm = run_swarm(
            CONFIG,
            n_walkers=8,
            max_steps=800,
            seed=1,
            mutation="dir.GetX.keep_sharers",
        )
        assert not swarm.verified
        failure = swarm.first_failure
        assert failure is not None
        assert failure.violation is not None
        assert failure.trace  # the raw counterexample the shrinker consumes

    def test_budget_bounds_walk_count_not_walk_content(self):
        # A budget that admits only two walks must reproduce exactly the
        # first two walks of an unbudgeted swarm.
        calls = iter([True, True, False])
        budgeted = run_swarm(
            CONFIG,
            n_walkers=8,
            max_steps=200,
            seed=5,
            should_continue=lambda: next(calls),
        )
        full = run_swarm(CONFIG, n_walkers=8, max_steps=200, seed=5)
        assert len(budgeted.walks) == 2
        assert [w.trace for w in budgeted.walks] == [
            w.trace for w in full.walks[:2]
        ]
