"""Sharded exhaustive exploration: bit-identity, fault recovery, resume."""

from __future__ import annotations

import pytest

from repro.experiments import faults
from repro.verification import encode
from repro.verification.checker import ModelChecker
from repro.verification.model import CoherenceModel, ModelConfig
from repro.verification.parallel import (
    check_sharded,
    counterexample_trace,
    experiment_id,
    shard_of,
)
from repro.verification.shrink import replay_model_trace


CONFIG = ModelConfig(n_cores=2, n_ops=1, protocol="MEUSI", value_base=2)
MUTATION = "dir.GetX.keep_sharers"


@pytest.fixture(scope="module")
def serial_result():
    return ModelChecker(CONFIG).run()


@pytest.fixture()
def fault_env(monkeypatch):
    """Activate a REPRO_FAULT spec for the test, restoring the idle plan."""

    def activate(spec: str):
        monkeypatch.setenv("REPRO_FAULT", spec)
        return faults.refresh_active_plan()

    yield activate
    monkeypatch.delenv("REPRO_FAULT", raising=False)
    faults.refresh_active_plan()


def _counts(result):
    return (result.n_states, result.n_transitions, result.deadlocks)


class TestBitIdentity:
    def test_inline_jobs1_matches_serial(self, serial_result):
        sharded = check_sharded(CONFIG, jobs=1)
        assert _counts(sharded.result) == _counts(serial_result)
        assert sharded.result.verified

    def test_jobs4_matches_serial(self, serial_result):
        sharded = check_sharded(CONFIG, jobs=4)
        assert _counts(sharded.result) == _counts(serial_result)
        assert sharded.jobs == 4

    def test_shard_partition_is_total_and_stable(self):
        state = encode.state_to_jsonable(CoherenceModel(CONFIG).initial_state())
        shard = shard_of(state, 4)
        assert 0 <= shard < 4
        assert shard == shard_of(state, 4)

    def test_experiment_id_carries_mutation(self):
        assert experiment_id(CONFIG, None) == "verify-MEUSI-2c-1o"
        assert experiment_id(CONFIG, MUTATION) == f"verify-MEUSI-2c-1o-mut.{MUTATION}"


class TestMutationCatch:
    def test_mutation_yields_replayable_bfs_traces(self):
        sharded = check_sharded(CONFIG, jobs=2, mutation=MUTATION)
        assert not sharded.result.verified
        assert sharded.result.violations
        assert len(sharded.violation_traces) == len(sharded.result.violations)
        model = CoherenceModel(CONFIG, mutation=MUTATION)
        for trace in sharded.violation_traces:
            assert replay_model_trace(model, trace) is not None


class TestJournalResume:
    def test_checkpoint_then_resume_of_complete_run(self, tmp_path, serial_result):
        journal = str(tmp_path / "journal")
        first = check_sharded(CONFIG, jobs=2, journal_dir=journal)
        assert _counts(first.result) == _counts(serial_result)
        assert not first.resumed_complete
        second = check_sharded(CONFIG, jobs=2, journal_dir=journal, resume=True)
        assert second.resumed_complete
        assert _counts(second.result) == _counts(serial_result)

    def test_fresh_run_refuses_populated_journal(self, tmp_path):
        journal = str(tmp_path / "journal")
        check_sharded(CONFIG, jobs=1, journal_dir=journal)
        with pytest.raises(ValueError, match="already holds segments"):
            check_sharded(CONFIG, jobs=1, journal_dir=journal)

    def test_torn_write_crashes_then_resumes_bit_identical(
        self, tmp_path, serial_result, fault_env
    ):
        journal = str(tmp_path / "journal")
        exp = experiment_id(CONFIG, None)
        plan = fault_env(f"torn:exp={exp},point=level-0005,times=1")
        with pytest.raises(faults.SimulatedCrash):
            check_sharded(
                CONFIG, jobs=2, journal_dir=journal, torn_hook=plan.torn_hook()
            )
        # The crash left a torn tail; a resume folds the intact levels and
        # finishes the exploration with identical counts.
        resumed = check_sharded(CONFIG, jobs=2, journal_dir=journal, resume=True)
        assert not resumed.resumed_complete
        assert _counts(resumed.result) == _counts(serial_result)

    def test_killed_shard_workers_are_retried(self, serial_result, fault_env):
        exp = experiment_id(CONFIG, None)
        fault_env(f"kill:exp={exp},point=level-0003,times=1")
        sharded = check_sharded(CONFIG, jobs=2)
        assert _counts(sharded.result) == _counts(serial_result)


class TestCounterexampleTrace:
    def test_trace_reconstruction_walks_parent_pointers(self):
        # levels[level] = list of (state_jsonable, parent_index_in_prev, rule)
        levels = [
            [({"id": "root"}, -1, None)],
            [({"id": "a"}, 0, "r1"), ({"id": "b"}, 0, "r2")],
            [({"id": "c"}, 1, "r3")],
        ]
        assert counterexample_trace(levels, 2, 0) == ["r2", "r3"]
