"""The ``python -m repro.verification`` CLI: exit codes and repro artifacts.

Exit contract: 0 = verified / repro reproduces, 1 = violation found / repro
does not reproduce, 2 = unreadable or damaged repro file.
"""

from __future__ import annotations

import glob
import json
import os

import pytest

from repro.verification.__main__ import main
from repro.verification import encode


MUTATION = "dir.GetX.keep_sharers"


def _exhaustive_args(tmp_path, *extra):
    return [
        "exhaustive",
        "--protocol",
        "MEUSI",
        "--cores",
        "2",
        "--ops",
        "1",
        "--repro-dir",
        str(tmp_path / "repros"),
        *extra,
    ]


class TestExhaustiveCommand:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        assert main(_exhaustive_args(tmp_path, "--jobs", "2")) == 0
        assert "verified=True" in capsys.readouterr().out

    def test_mutated_run_writes_minimized_repro(self, tmp_path, capsys):
        code = main(_exhaustive_args(tmp_path, "--mutate", MUTATION))
        assert code == 1
        paths = glob.glob(str(tmp_path / "repros" / "repro-*.json"))
        assert paths
        repro = encode.load_repro(paths[0])
        assert repro["mutation"] == MUTATION
        assert repro["kind"] == "model-trace"
        assert 0 < len(repro["trace"]) < 30  # minimized, not the raw BFS path


class TestSwarmCommand:
    def test_clean_swarm_exits_zero(self, tmp_path):
        code = main(
            [
                "swarm",
                "--protocol",
                "MEUSI",
                "--cores",
                "2",
                "--ops",
                "2",
                "--walkers",
                "2",
                "--max-steps",
                "200",
                "--seed",
                "0",
                "--seconds",
                "60",
                "--repro-dir",
                str(tmp_path / "repros"),
            ]
        )
        assert code == 0


class TestDifferentialCommand:
    def test_mutated_stream_repro_round_trips_through_replay(self, tmp_path):
        repro_dir = str(tmp_path / "repros")
        code = main(
            [
                "differential",
                "--protocol",
                "MEUSI",
                "--seed",
                "1",
                "--points",
                "1",
                "--mutate",
                MUTATION,
                "--repro-dir",
                repro_dir,
            ]
        )
        assert code == 1
        paths = glob.glob(os.path.join(repro_dir, "repro-*.json"))
        assert len(paths) == 1
        repro = encode.load_repro(paths[0])
        assert repro["kind"] == "stream"
        assert len(repro["trace"]) <= 4
        # The written repro replays: exit 0.
        assert main(["replay", paths[0]]) == 0


class TestReplayCommand:
    @pytest.fixture()
    def stream_repro(self, tmp_path):
        repro_dir = str(tmp_path / "repros")
        main(
            [
                "differential",
                "--protocol",
                "MEUSI",
                "--seed",
                "1",
                "--points",
                "1",
                "--mutate",
                MUTATION,
                "--repro-dir",
                repro_dir,
            ]
        )
        (path,) = glob.glob(os.path.join(repro_dir, "repro-*.json"))
        return path

    def test_damaged_repro_exits_two(self, stream_repro):
        text = open(stream_repro).read()
        with open(stream_repro, "w") as handle:
            handle.write(text[: len(text) // 2])
        assert main(["replay", stream_repro]) == 2

    def test_benign_repro_exits_one(self, stream_repro, tmp_path):
        # A well-formed repro whose trace does NOT reproduce any violation:
        # replay must report that honestly with exit 1, not crash.
        document = json.loads(open(stream_repro).read())
        document["trace"] = [[0, 0, "load"]]
        document.pop("crc32")
        benign = str(tmp_path / "benign.json")
        encode.write_repro(benign, document)
        assert main(["replay", benign]) == 1

    def test_model_trace_repro_from_smoke_self_test_replays(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_SWARM_SECONDS", "5")
        monkeypatch.chdir(tmp_path)
        assert main(["smoke", "--jobs", "2"]) == 0
        (path,) = glob.glob(
            str(tmp_path / "results" / "verify-repros" / "repro-smoke-*.json")
        )
        assert main(["replay", path]) == 0
