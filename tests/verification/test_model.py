"""Tests for the protocol verification model and its building blocks."""

from __future__ import annotations

import pytest

from repro.verification.model import (
    CacheLine,
    CacheState,
    CoherenceModel,
    DirState,
    DirectoryLine,
    GlobalState,
    ModelConfig,
    MsgType,
)


class TestModelConfig:
    def test_defaults(self):
        config = ModelConfig()
        assert config.supports_update_state

    def test_mesi_disables_update_state(self):
        assert not ModelConfig(protocol="MESI").supports_update_state
        assert ModelConfig(protocol="MUSI").supports_update_state

    def test_validation(self):
        with pytest.raises(ValueError):
            ModelConfig(n_cores=0)
        with pytest.raises(ValueError):
            ModelConfig(n_ops=0)
        with pytest.raises(ValueError):
            ModelConfig(protocol="MOESI")
        with pytest.raises(ValueError):
            ModelConfig(value_base=1)


class TestGlobalState:
    def test_initial_state(self):
        model = CoherenceModel(ModelConfig(n_cores=3))
        state = model.initial_state()
        assert len(state.caches) == 3
        assert all(cache.state is CacheState.I for cache in state.caches)
        assert state.directory.state is DirState.UNCACHED
        assert state.network == ()
        assert state.ghost_value == 0

    def test_state_key_is_hashable_and_stable(self):
        model = CoherenceModel(ModelConfig(n_cores=2))
        a = model.initial_state()
        b = model.initial_state()
        assert a.key() == b.key()
        assert hash(a.key()) == hash(b.key())

    def test_directory_replace(self):
        line = DirectoryLine()
        busy = line.replace(state=DirState.BUSY_INV, acks_needed=2)
        assert busy.state is DirState.BUSY_INV
        assert busy.acks_needed == 2
        assert line.state is DirState.UNCACHED  # original unchanged


class TestTransitions:
    def test_initial_state_offers_requests_per_core(self):
        model = CoherenceModel(ModelConfig(n_cores=2, n_ops=2, protocol="MEUSI"))
        rules = [rule for rule, _ in model.successors(model.initial_state())]
        # Each idle core can issue a read, a write, and one GetU per op type.
        assert sum(1 for r in rules if "core0." in r) == 4
        assert sum(1 for r in rules if "core1." in r) == 4

    def test_mesi_initial_state_has_no_update_requests(self):
        model = CoherenceModel(ModelConfig(n_cores=2, n_ops=4, protocol="MESI"))
        rules = [rule for rule, _ in model.successors(model.initial_state())]
        assert not any("update" in rule for rule in rules)

    def test_read_miss_round_trip(self):
        """Follow a single GetS through the network to a stable S/E state."""
        model = CoherenceModel(ModelConfig(n_cores=1, protocol="MESI"))
        state = model.initial_state()
        # Core 0 issues the read miss.
        state = dict(model.successors(state))["core0.read_miss"]
        assert state.caches[0].state is CacheState.IS_D
        # Directory receives GetS and responds with exclusive data.
        state = dict(model.successors(state))["dir.GetS.from0"]
        assert state.directory.state is DirState.EXCLUSIVE
        # Cache receives the data and becomes E; it sends an Unblock.
        successors = dict(model.successors(state))
        state = successors["core0.recv_Data"]
        assert state.caches[0].state is CacheState.E
        # Directory receives the unblock and is ready for new requests.
        state = dict(model.successors(state))["dir.Unblock.from0"]
        assert state.directory.unblocks_pending == 0

    def test_update_miss_grants_exclusive_when_unshared(self):
        model = CoherenceModel(ModelConfig(n_cores=1, n_ops=1, protocol="MEUSI"))
        state = model.initial_state()
        state = dict(model.successors(state))["core0.update_miss_op0"]
        state = dict(model.successors(state))["dir.GetU.from0"]
        assert state.directory.state is DirState.EXCLUSIVE
        state = dict(model.successors(state))["core0.recv_Data"]
        assert state.caches[0].state is CacheState.M
        assert state.ghost_value == 1

    def test_two_updaters_reach_u_state(self):
        """Drive two cores into U and check the directory tracks both."""
        model = CoherenceModel(
            ModelConfig(n_cores=2, n_ops=1, protocol="MEUSI", value_base=4)
        )
        state = model.initial_state()
        state = dict(model.successors(state))["core0.update_miss_op0"]
        state = dict(model.successors(state))["dir.GetU.from0"]
        state = dict(model.successors(state))["core0.recv_Data"]
        state = dict(model.successors(state))["dir.Unblock.from0"]
        # Second core requests update permission: the owner is downgraded.
        state = dict(model.successors(state))["core1.update_miss_op0"]
        state = dict(model.successors(state))["dir.GetU.from1"]
        assert state.directory.state is DirState.BUSY_WB
        state = dict(model.successors(state))["core0.recv_Inv"]
        state = dict(model.successors(state))["dir.DataWb.from0"]
        assert state.directory.state is DirState.UPDATE
        state = dict(model.successors(state))["core1.recv_GrantU"]
        assert state.caches[1].state is CacheState.U
        assert state.ghost_value == 2  # one update in M, one buffered in U
