"""The harness catches what it claims to catch.

One injected mutation (``REPRO_VERIFY_MUTATE``) must be detected by ALL
three lanes — sharded exhaustive search, the randomized swarm, and the
differential cross-check — and each lane's counterexample must minimize
and replay.  A verification harness that cannot demonstrate this proves
nothing when it reports "verified".
"""

from __future__ import annotations

import pytest

from repro.verification.differential import (
    StreamConfig,
    generate_stream,
    replay_stream_model,
    shrink_stream,
)
from repro.verification.model import CoherenceModel, ModelConfig, mutation_from_env
from repro.verification.parallel import check_sharded
from repro.verification.shrink import replay_model_trace, shrink_model_trace
from repro.verification.walker import run_swarm


MUTATION = "dir.GetX.keep_sharers"
MODEL_CONFIG = ModelConfig(n_cores=2, n_ops=1, protocol="MEUSI", value_base=2)
SWARM_CONFIG = ModelConfig(n_cores=2, n_ops=2, protocol="MEUSI", value_base=2)


class TestAllThreeLanesCatchTheMutation:
    def test_exhaustive_lane(self):
        sharded = check_sharded(MODEL_CONFIG, jobs=2, mutation=MUTATION)
        assert not sharded.result.verified
        assert sharded.violation_traces
        model = CoherenceModel(MODEL_CONFIG, mutation=MUTATION)
        minimal, violation = shrink_model_trace(model, sharded.violation_traces[0])
        assert violation is not None
        assert replay_model_trace(model, minimal) is not None

    def test_swarm_lane(self):
        swarm = run_swarm(
            SWARM_CONFIG, n_walkers=8, max_steps=800, seed=1, mutation=MUTATION
        )
        failure = swarm.first_failure
        assert failure is not None and failure.violation is not None
        model = CoherenceModel(SWARM_CONFIG, mutation=MUTATION)
        minimal, _ = shrink_model_trace(model, failure.trace)
        assert len(minimal) < len(failure.trace)
        assert replay_model_trace(model, minimal) is not None

    def test_differential_lane(self):
        config = StreamConfig(protocol="MEUSI", seed=1)
        stream = generate_stream(config)
        assert replay_stream_model(config, stream, mutation=MUTATION) is not None
        minimal, failure = shrink_stream(config, stream, mutation=MUTATION)
        assert failure.reason == "model-invariant"
        assert replay_stream_model(config, minimal, mutation=MUTATION) is not None


class TestMutationKnob:
    def test_env_knob_selects_the_mutation(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_MUTATE", MUTATION)
        assert mutation_from_env() == MUTATION

    def test_empty_env_means_no_mutation(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY_MUTATE", raising=False)
        assert mutation_from_env() is None

    def test_unknown_mutation_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_MUTATE", "dir.NoSuchRule.break")
        with pytest.raises(ValueError, match="names no known mutation"):
            mutation_from_env()

    def test_unknown_mutation_rejected_at_model_construction(self):
        with pytest.raises(ValueError):
            CoherenceModel(MODEL_CONFIG, mutation="dir.NoSuchRule.break")
