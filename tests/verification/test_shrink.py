"""Delta-debugging minimization: determinism, idempotence, 1-minimality."""

from __future__ import annotations

import pytest

from repro.verification.model import CoherenceModel, ModelConfig
from repro.verification.shrink import ddmin, replay_model_trace, shrink_model_trace
from repro.verification.walker import random_walk


CONFIG = ModelConfig(n_cores=2, n_ops=2, protocol="MEUSI", value_base=2)
MUTATION = "dir.GetX.keep_sharers"
# Walker 4 of seed 1 hits the keep_sharers violation within 800 steps.
SEED, WALKER = 1, 4


def _failing_walk():
    walk = random_walk(CONFIG, SEED, max_steps=800, walker_index=WALKER, mutation=MUTATION)
    assert walk.violation is not None, "expected the mutated walk to fail"
    return walk


class TestDdmin:
    def test_minimizes_to_the_failure_kernel(self):
        # Fails iff both 3 and 7 survive: the unique 1-minimal answer.
        fails = lambda items: 3 in items and 7 in items  # noqa: E731
        assert ddmin(list(range(10)), fails) == [3, 7]

    def test_deterministic(self):
        fails = lambda items: sum(items) >= 10  # noqa: E731
        trace = [1, 2, 3, 4, 5, 6]
        assert ddmin(trace, fails) == ddmin(trace, fails)

    def test_idempotent(self):
        fails = lambda items: 3 in items and 7 in items  # noqa: E731
        minimal = ddmin(list(range(10)), fails)
        assert ddmin(minimal, fails) == minimal

    def test_rejects_passing_input(self):
        with pytest.raises(ValueError, match="does not reproduce"):
            ddmin([1, 2, 3], lambda items: False)

    def test_preserves_order(self):
        fails = lambda items: 7 in items and 3 in items  # noqa: E731
        assert ddmin([9, 7, 5, 3, 1], fails) == [7, 3]


class TestShrinkModelTrace:
    def test_minimal_trace_still_violates(self):
        walk = _failing_walk()
        model = CoherenceModel(CONFIG, mutation=MUTATION)
        minimal, violation = shrink_model_trace(model, walk.trace)
        assert violation is not None
        assert len(minimal) < len(walk.trace)
        assert replay_model_trace(model, minimal) is not None

    def test_shrink_is_deterministic(self):
        walk = _failing_walk()
        model = CoherenceModel(CONFIG, mutation=MUTATION)
        first, _ = shrink_model_trace(model, walk.trace)
        second, _ = shrink_model_trace(model, walk.trace)
        assert first == second

    def test_shrink_is_idempotent(self):
        walk = _failing_walk()
        model = CoherenceModel(CONFIG, mutation=MUTATION)
        minimal, _ = shrink_model_trace(model, walk.trace)
        again, _ = shrink_model_trace(model, minimal)
        assert again == minimal

    def test_minimal_trace_is_one_minimal(self):
        walk = _failing_walk()
        model = CoherenceModel(CONFIG, mutation=MUTATION)
        minimal, _ = shrink_model_trace(model, walk.trace)
        for index in range(len(minimal)):
            candidate = minimal[:index] + minimal[index + 1 :]
            assert replay_model_trace(model, candidate) is None, (
                f"dropping step {index} ({minimal[index]}) still violates — "
                "the trace is not 1-minimal"
            )

    def test_every_minimal_step_fires_on_replay(self):
        # Skip-semantics replay could in principle skip steps; 1-minimality
        # guarantees a minimal trace contains none (a skipped step would be
        # removable).  Spot-check by replaying step counts.
        walk = _failing_walk()
        model = CoherenceModel(CONFIG, mutation=MUTATION)
        minimal, _ = shrink_model_trace(model, walk.trace)
        state = model.initial_state()
        fired = 0
        for rule in minimal:
            successor = next(
                (s for name, s in model.ordered_successors(state) if name == rule),
                None,
            )
            if successor is None:
                continue
            state = successor
            fired += 1
        assert fired == len(minimal)

    def test_clean_trace_rejected(self):
        model = CoherenceModel(CONFIG)  # no mutation: walks cannot fail
        walk = random_walk(CONFIG, 0, max_steps=50, walker_index=0)
        assert walk.violation is None
        with pytest.raises(ValueError, match="does not reproduce"):
            shrink_model_trace(model, walk.trace)
