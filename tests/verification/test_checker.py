"""Tests for the explicit-state model checker and the Fig. 7 inventories."""

from __future__ import annotations

import pytest

from repro.verification import (
    INVENTORIES,
    TWO_LEVEL_MESI,
    TWO_LEVEL_MEUSI,
    directory_type_field_bits,
    extra_states_over_mesi,
    verify_protocol,
)
from repro.verification.checker import ModelChecker
from repro.verification.model import ModelConfig


class TestExhaustiveVerification:
    """Small-configuration exhaustive runs (kept fast for CI)."""

    def test_single_core_mesi_verifies(self):
        result = verify_protocol("MESI", n_cores=1, n_ops=1)
        assert result.verified
        assert result.n_states > 10

    def test_single_core_meusi_verifies(self):
        result = verify_protocol("MEUSI", n_cores=1, n_ops=1)
        assert result.verified

    def test_two_core_mesi_verifies(self):
        result = verify_protocol("MESI", n_cores=2, n_ops=1)
        assert result.verified
        assert result.deadlocks == 0

    def test_two_core_meusi_verifies(self):
        result = verify_protocol("MEUSI", n_cores=2, n_ops=1)
        assert result.verified
        assert result.deadlocks == 0

    def test_meusi_explores_more_states_than_mesi(self):
        mesi = verify_protocol("MESI", n_cores=2, n_ops=1)
        meusi = verify_protocol("MEUSI", n_cores=2, n_ops=1)
        assert meusi.n_states > mesi.n_states

    def test_states_grow_with_cores(self):
        one = verify_protocol("MEUSI", n_cores=1, n_ops=1)
        two = verify_protocol("MEUSI", n_cores=2, n_ops=1)
        assert two.n_states > one.n_states

    def test_states_grow_mildly_with_ops(self):
        """Fig. 8's key observation: op count matters far less than core count."""
        one_op = verify_protocol("MEUSI", n_cores=2, n_ops=1)
        two_ops = verify_protocol("MEUSI", n_cores=2, n_ops=2)
        one_core_growth = (
            verify_protocol("MEUSI", n_cores=2, n_ops=1).n_states
            / verify_protocol("MEUSI", n_cores=1, n_ops=1).n_states
        )
        ops_growth = two_ops.n_states / one_op.n_states
        assert two_ops.n_states > one_op.n_states
        assert ops_growth < one_core_growth

    def test_state_budget_marks_incomplete(self):
        checker = ModelChecker(ModelConfig(n_cores=2, n_ops=1), max_states=50)
        result = checker.run()
        assert not result.completed
        assert result.n_states >= 50

    def test_summary_fields(self):
        result = verify_protocol("MESI", n_cores=1)
        summary = result.summary()
        assert summary["protocol"] == "MESI"
        assert summary["states"] == result.n_states
        assert summary["verified"] is True


class TestInventories:
    def test_two_level_mesi_state_counts_match_paper(self):
        l1 = TWO_LEVEL_MESI.controller("L1")
        l2 = TWO_LEVEL_MESI.controller("L2")
        assert l1.n_stable == 4 and l1.n_transient == 8 and l1.n_total == 12
        assert l2.n_total == 6

    def test_two_level_meusi_adds_one_l1_transient(self):
        l1 = TWO_LEVEL_MEUSI.controller("L1")
        assert l1.n_total == 13
        assert "NN" in l1.transient_states
        extra = extra_states_over_mesi(levels=2)
        assert extra["L1"] == 1
        assert extra["L2"] == 0

    def test_three_level_counts_match_paper(self):
        mesi_l1 = INVENTORIES[("MESI", 3)].controller("L1")
        meusi_l1 = INVENTORIES[("MEUSI", 3)].controller("L1")
        meusi_l2 = INVENTORIES[("MEUSI", 3)].controller("L2")
        assert mesi_l1.n_total == 14
        assert meusi_l1.n_total == 15
        assert meusi_l2.n_total == 43
        extra = extra_states_over_mesi(levels=3)
        assert extra["L1"] == 1
        assert extra["L2"] == 5
        assert extra["L3"] == 0

    def test_type_field_bits(self):
        assert directory_type_field_bits(8) == 4  # the paper's 4 bits per line
        assert directory_type_field_bits(1) == 1
        assert directory_type_field_bits(15) == 4
        assert directory_type_field_bits(16) == 5
        with pytest.raises(ValueError):
            directory_type_field_bits(-1)
