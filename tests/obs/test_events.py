"""JSONL event segments: framing, fork-safety, folding, profile digests."""

from __future__ import annotations

import json
import os

from obs_helpers import reset_obs_state  # noqa: F401 (autouse fixture)
from repro.obs import events
from repro.obs.registry import N_BUCKETS


def _phase_sample(count: int, total_s: float, bucket: int) -> dict:
    buckets = [0] * N_BUCKETS
    buckets[bucket] = count
    return {"buckets": buckets, "count": count, "max_s": total_s, "total_s": total_s}


class TestEventWriter:
    def test_segment_name_embeds_pid_and_suffix(self, tmp_path):
        with events.EventWriter(str(tmp_path), "worker") as writer:
            assert os.path.basename(writer.path) == (
                f"worker-{os.getpid():07d}-000.jsonl"
            )
        with events.EventWriter(str(tmp_path), "worker") as second:
            assert second.path.endswith("-001.jsonl")

    def test_records_are_canonical_json_lines(self, tmp_path):
        with events.EventWriter(str(tmp_path), "s") as writer:
            writer.emit("point_done", {"point": "p0", "status": "ok"})
            writer.emit("point_done", {"point": "p1", "status": "ok"})
            path = writer.path
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        assert len(lines) == 2
        for seq, line in enumerate(lines):
            record = json.loads(line)
            # Canonical: sorted keys, compact separators, exact round trip.
            assert line == json.dumps(record, sort_keys=True, separators=(",", ":"))
            assert record["kind"] == "point_done"
            assert record["seq"] == seq
            assert record["pid"] == os.getpid()
            assert record["t_s"] >= 0.0

    def test_process_writer_is_cached_per_pid(self, tmp_path):
        first = events.process_writer(str(tmp_path))
        second = events.process_writer(str(tmp_path))
        assert first is second
        events.reset_process_writer()
        third = events.process_writer(str(tmp_path))
        assert third is not first


class TestReaders:
    def test_read_segment_skips_torn_and_foreign_lines(self, tmp_path):
        path = tmp_path / "worker-0000001-000.jsonl"
        good = json.dumps({"kind": "point_done", "seq": 0}, sort_keys=True)
        path.write_text(
            good + "\n" + "not json at all\n" + '{"no_kind": 1}\n' + '{"kind": "worke',
            encoding="utf-8",
        )
        records = events.read_segment(str(path))
        assert records == [{"kind": "point_done", "seq": 0}]

    def test_read_segment_missing_file_is_empty(self, tmp_path):
        assert events.read_segment(str(tmp_path / "absent.jsonl")) == []

    def test_fold_events_missing_dir_is_none(self, tmp_path):
        assert events.fold_events(str(tmp_path / "nowhere")) is None
        assert events.fold_events(str(tmp_path)) is None  # exists but empty

    def test_fold_sums_counters_and_merges_phases(self, tmp_path):
        with events.EventWriter(str(tmp_path), "worker") as worker:
            worker.emit(
                "point_obs",
                {
                    "counters": {"kernel.slow_events": 10, "kernel.stint.enter": 1},
                    "phases": {"eval_mask": _phase_sample(4, 0.004, 6)},
                    "point": "a",
                    "status": "ok",
                },
            )
            worker.emit(
                "point_obs",
                {
                    "counters": {"kernel.slow_events": 5},
                    "phases": {"eval_mask": _phase_sample(2, 0.002, 6)},
                    "point": "b",
                    "status": "ok",
                },
            )
        with events.EventWriter(str(tmp_path), "campaign") as campaign:
            campaign.emit("campaign_obs", {"counters": {"supervisor.spawn": 2}})
            campaign.emit("point_done", {"point": "a", "status": "ok", "cached": False})
            campaign.emit("worker", {"event": "spawn", "worker": 123, "pid": 123})
        fold = events.fold_events(str(tmp_path))
        assert fold is not None
        assert fold["counters"] == {
            "kernel.slow_events": 15,
            "kernel.stint.enter": 1,
            "supervisor.spawn": 2,
        }
        assert fold["n_segments"] == 2
        assert fold["n_events"] == 5
        eval_mask = fold["phases"]["eval_mask"]
        assert eval_mask["count"] == 6
        assert eval_mask["buckets"][6] == 6
        assert [p["point"] for p in fold["points"]] == ["a"]
        assert [w["event"] for w in fold["workers"]] == ["spawn"]


class TestProfileSummary:
    def test_top_phases_ranked_by_total_and_groups_stripped(self, tmp_path):
        fold = {
            "counters": {
                "kernel.bail.hard_margin": 3,
                "kernel.bail.strikes": 7,
                "kernel.merge.decline.few_parked": 12,
                "kernel.slow_events": 100,
            },
            "phases": {
                "cheap": _phase_sample(10, 0.001, 2),
                "dear": _phase_sample(2, 0.5, 20),
            },
        }
        profile = events.profile_summary(fold, top_phases=1)
        assert [row["phase"] for row in profile["top_phases"]] == ["dear"]
        assert profile["top_phases"][0]["calls"] == 2
        assert profile["bail_reasons"] == {"hard_margin": 3, "strikes": 7}
        assert profile["merge_gate"] == {"decline.few_parked": 12}

    def test_empty_fold_degrades(self):
        profile = events.profile_summary({})
        assert profile == {"bail_reasons": {}, "merge_gate": {}, "top_phases": []}
