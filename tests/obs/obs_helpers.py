"""Obs-suite fixtures: every test leaves telemetry exactly as it found it.

The obs module caches its configuration process-wide and the event layer
caches a per-process writer; both are torn down after each test so the rest
of the suite keeps running with telemetry off (``REPRO_OBS`` unset).

Not a ``conftest.py``: the benchmark suite imports its own helpers with
``from conftest import ...``, which a second basename-colliding conftest in
the tree would shadow.  Each obs test module imports the fixture instead
(the ``lint_helpers`` idiom).
"""

from __future__ import annotations

import pytest

import repro.obs as obs
from repro.obs import events


@pytest.fixture(autouse=True)
def reset_obs_state(monkeypatch):
    monkeypatch.delenv("REPRO_OBS", raising=False)
    monkeypatch.delenv("REPRO_OBS_DIR", raising=False)
    obs.reconfigure()
    yield
    events.reset_process_writer()
    obs.reconfigure()
