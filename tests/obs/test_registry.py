"""Unit tests for the telemetry registry: modes, counters, phase timing."""

from __future__ import annotations

import pytest

import repro.obs as obs
from obs_helpers import reset_obs_state  # noqa: F401 (autouse fixture)
from repro.obs.registry import (
    N_BUCKETS,
    ObsRegistry,
    bucket_bound_us,
    bucket_index,
    merge_phase,
    phase_percentile_us,
)


class TestModes:
    def test_default_is_off_with_no_registry(self):
        assert obs.mode() == "off"
        assert obs.get_registry() is None
        assert obs.timing_registry() is None
        assert not obs.events_enabled()

    def test_env_selects_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "counters")
        obs.reconfigure()
        assert obs.mode() == "counters"
        registry = obs.get_registry()
        assert registry is not None and not registry.timing
        assert obs.timing_registry() is None

    def test_full_mode_enables_timing_and_events(self):
        registry = obs.reconfigure("full")
        assert registry is not None and registry.timing
        assert obs.timing_registry() is registry
        assert obs.events_enabled()

    def test_empty_env_value_means_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "")
        obs.reconfigure()
        assert obs.mode() == "off"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="REPRO_OBS"):
            obs.reconfigure("verbose")

    def test_events_dir_from_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        obs.reconfigure()
        assert obs.events_dir() == str(tmp_path)

    def test_reconfigure_override_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_OBS", "off")
        registry = obs.reconfigure("counters", str(tmp_path))
        assert registry is not None
        assert obs.events_dir() == str(tmp_path)


class TestCounters:
    def test_inc_and_read(self):
        registry = ObsRegistry(timing=False)
        registry.inc("kernel.stint.enter")
        registry.inc("kernel.stint.enter")
        registry.inc("kernel.slow_events", 41)
        assert registry.counter("kernel.stint.enter") == 2
        assert registry.counter("kernel.slow_events") == 41
        assert registry.counter("never.touched") == 0

    def test_snapshot_keys_are_sorted(self):
        registry = ObsRegistry(timing=False)
        for name in ("z.last", "a.first", "m.middle"):
            registry.inc(name)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a.first", "m.middle", "z.last"]

    def test_clear(self):
        registry = ObsRegistry(timing=True)
        registry.inc("x")
        registry.observe("p", 0.001)
        registry.clear()
        assert registry.counter("x") == 0
        assert registry.phase("p") is None


class TestPhaseTiming:
    def test_observe_accumulates(self):
        registry = ObsRegistry(timing=True)
        registry.observe("eval_mask", 0.002)
        registry.observe("eval_mask", 0.004)
        stats = registry.phase("eval_mask")
        assert stats is not None
        assert stats.count == 2
        assert stats.total_s == pytest.approx(0.006)
        assert stats.max_s == pytest.approx(0.004)
        assert sum(stats.buckets) == 2

    def test_bucket_index_geometry(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(-1.0) == 0
        assert bucket_index(0.4e-6) == 0  # below the 1us floor
        assert bucket_index(3e-6) == 2  # (2us, 4us]
        assert bucket_index(1e-3) == 10  # 1000us -> bit_length 10
        assert bucket_index(3600.0) == N_BUCKETS - 1  # tail absorbs

    def test_bucket_bounds_double(self):
        assert bucket_bound_us(0) == 1.0
        assert bucket_bound_us(3) == 8.0

    def test_clock_is_monotonic_nonnegative_delta(self):
        registry = ObsRegistry(timing=True)
        t0 = registry.clock()
        t1 = registry.clock()
        assert t1 >= t0


class TestDelta:
    def test_delta_reports_only_changes(self):
        registry = ObsRegistry(timing=True)
        registry.inc("stable", 5)
        registry.observe("warm", 0.001)
        baseline = registry.snapshot()
        registry.inc("fresh", 2)
        registry.observe("warm", 0.002)
        delta = registry.delta(baseline)
        assert delta["counters"] == {"fresh": 2}
        assert list(delta["phases"]) == ["warm"]
        warm = delta["phases"]["warm"]
        assert warm["count"] == 1
        assert warm["total_s"] == pytest.approx(0.002)
        assert sum(warm["buckets"]) == 1

    def test_delta_with_no_change_is_empty(self):
        registry = ObsRegistry(timing=True)
        registry.inc("x")
        registry.observe("p", 0.001)
        baseline = registry.snapshot()
        delta = registry.delta(baseline)
        assert delta == {"counters": {}, "phases": {}}

    def test_delta_from_empty_baseline_is_snapshot_counters(self):
        registry = ObsRegistry(timing=False)
        registry.inc("a", 3)
        delta = registry.delta({"counters": {}, "phases": {}})
        assert delta["counters"] == {"a": 3}


class TestFoldHelpers:
    def test_merge_phase_sums_and_maxes(self):
        into = {}
        sample = {"buckets": [1, 2], "count": 3, "max_s": 0.5, "total_s": 0.9}
        merge_phase(into, "p", sample)
        merge_phase(into, "p", sample)
        entry = into["p"]
        assert entry["count"] == 6
        assert entry["total_s"] == pytest.approx(1.8)
        assert entry["max_s"] == 0.5
        assert entry["buckets"][:2] == [2, 4]
        assert len(entry["buckets"]) == N_BUCKETS

    def test_merge_phase_ignores_malformed(self):
        into = {}
        merge_phase(into, "p", {"count": "three"})
        merge_phase(into, "p", {"count": 0})
        assert into == {}

    def test_phase_percentile(self):
        # 10 samples: 8 in bucket 2 (<=4us), 2 in bucket 5 (<=32us).
        buckets = [0] * N_BUCKETS
        buckets[2] = 8
        buckets[5] = 2
        phase = {"count": 10, "buckets": buckets}
        assert phase_percentile_us(phase, 0.50) == 4.0
        assert phase_percentile_us(phase, 0.95) == 32.0
        assert phase_percentile_us({"count": 0, "buckets": buckets}, 0.5) is None
