"""The telemetry contract: REPRO_OBS never perturbs simulation results.

Runs the same columnar traces through the batched kernel with telemetry off
and with telemetry at ``full``, and asserts the serialized results are
**byte-identical** — across all three protocol engines and two workload
shapes (one commutative-heavy, one mixed).  This is the grid the golden
fingerprints rely on: instrumentation may observe the kernel, never steer it.
"""

from __future__ import annotations

import json

import pytest

import repro.obs as obs
from obs_helpers import reset_obs_state  # noqa: F401 (autouse fixture)
from repro.sim.config import small_test_config
from repro.sim.simulator import simulate
from repro.workloads.base import UpdateStyle
from repro.workloads.synthetic import MixedOpWorkload, SharedCounterWorkload

N_CORES = 8

PROTOCOLS = ("MESI", "COUP", "RMO")

WORKLOADS = {
    "shared-counter": lambda: SharedCounterWorkload(
        updates_per_core=200, update_style=UpdateStyle.COMMUTATIVE
    ),
    "mixed-ops": lambda: MixedOpWorkload(updates_per_core=120, switch_every=7),
}


def _canonical(result) -> str:
    return json.dumps(result.to_jsonable(), sort_keys=True)


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
def test_full_telemetry_is_bit_identical_to_off(protocol, workload_name, tmp_path):
    factory = WORKLOADS[workload_name]
    trace = factory().generate_columnar(N_CORES)
    config = small_test_config(N_CORES)

    obs.reconfigure("off")
    baseline = _canonical(simulate(trace, config, protocol, track_values=True))

    registry = obs.reconfigure("full", str(tmp_path))
    instrumented = _canonical(simulate(trace, config, protocol, track_values=True))

    assert instrumented == baseline

    # The run must actually have been observed — a silent no-op registry
    # would make the identity above vacuous.
    snap = registry.snapshot()
    assert snap["counters"].get("kernel.stint.enter", 0) > 0
    assert snap["counters"].get("protocol.invalidations", 0) >= 0
    assert any(name == "eval_mask" for name in snap["phases"])


def test_counters_mode_is_bit_identical_too():
    trace = WORKLOADS["mixed-ops"]().generate_columnar(N_CORES)
    config = small_test_config(N_CORES)

    obs.reconfigure("off")
    baseline = _canonical(simulate(trace, config, "COUP", track_values=True))

    registry = obs.reconfigure("counters")
    counted = _canonical(simulate(trace, config, "COUP", track_values=True))

    assert counted == baseline
    snap = registry.snapshot()
    assert snap["counters"]  # counters flowed
    assert snap["phases"] == {}  # but no timing in counters mode
