"""The report CLI: rendering, JSON mode, and exit codes."""

from __future__ import annotations

import json

from obs_helpers import reset_obs_state  # noqa: F401 (autouse fixture)
from repro.obs import events, report
from repro.obs.registry import N_BUCKETS


def _write_stream(directory: str) -> None:
    buckets = [0] * N_BUCKETS
    buckets[7] = 5
    with events.EventWriter(directory, "worker") as worker:
        worker.emit(
            "point_obs",
            {
                "counters": {
                    "kernel.bail.hard_margin": 2,
                    "kernel.merge.decline.cooldown": 9,
                    "kernel.merge.retired": 400,
                },
                "phases": {
                    "resolve_slow_batch": {
                        "buckets": buckets,
                        "count": 5,
                        "max_s": 0.01,
                        "total_s": 0.02,
                    }
                },
                "point": "fig/c8/COUP",
                "status": "ok",
            },
        )
    with events.EventWriter(directory, "campaign") as campaign:
        campaign.emit(
            "point_done",
            {"point": "fig/c8/COUP", "status": "ok", "cached": False, "attempts": 1},
        )
        campaign.emit(
            "worker",
            {"event": "dispatch", "worker": 77, "pid": 77, "task": "point:fig/c8"},
        )


class TestRender:
    def test_sections_present(self, tmp_path):
        _write_stream(str(tmp_path))
        fold = events.fold_events(str(tmp_path))
        text = report.render(fold)
        assert "Phase breakdown" in text
        assert "resolve_slow_batch" in text
        assert "Merge-gate accept/decline Pareto" in text
        assert "decline.cooldown" in text
        assert "Bail-reason Pareto" in text
        assert "hard_margin" in text
        assert "Campaign points: 1 total, 1 ok, 0 cached" in text
        assert "Worker timeline" in text
        assert "dispatch" in text

    def test_pareto_orders_by_frequency(self, tmp_path):
        _write_stream(str(tmp_path))
        fold = events.fold_events(str(tmp_path))
        text = report.render(fold)
        gate_section = text.split("Merge-gate accept/decline Pareto")[1]
        assert gate_section.index("retired") < gate_section.index("decline.cooldown")


class TestMain:
    def test_exit_zero_and_prints(self, tmp_path, capsys):
        _write_stream(str(tmp_path))
        assert report.main(["--obs-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "repro.obs report" in out

    def test_json_mode_round_trips(self, tmp_path, capsys):
        _write_stream(str(tmp_path))
        assert report.main(["--obs-dir", str(tmp_path), "--json"]) == 0
        fold = json.loads(capsys.readouterr().out)
        assert fold["counters"]["kernel.merge.retired"] == 400

    def test_no_segments_exits_one(self, tmp_path, capsys):
        assert report.main(["--obs-dir", str(tmp_path)]) == 1
        assert "no obs event segments" in capsys.readouterr().err
