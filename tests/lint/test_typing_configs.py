"""The strict-typing lane: configs exist and (when installed) the tools run.

mypy and ruff are CI-lane dependencies, deliberately absent from the
minimal tier-1 image; their smoke tests skip when the tools are missing.
"""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sys

import pytest

from lint_helpers import REPO_ROOT

PYPROJECT = os.path.join(REPO_ROOT, "pyproject.toml")


def _has(tool: str) -> bool:
    return importlib.util.find_spec(tool) is not None


def test_pyproject_configures_the_lane():
    with open(PYPROJECT) as handle:
        text = handle.read()
    assert "[tool.mypy]" in text
    assert "strict = true" in text
    assert "[tool.ruff" in text


def test_package_ships_py_typed():
    assert os.path.exists(os.path.join(REPO_ROOT, "src", "repro", "py.typed"))


@pytest.mark.skipif(not _has("mypy"), reason="mypy not installed (CI-only lane)")
def test_mypy_strict_settings_and_runner():
    proc = subprocess.run(
        [
            sys.executable, "-m", "mypy", "--strict",
            "src/repro/experiments/settings.py",
            "src/repro/lint",
        ],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout


@pytest.mark.skipif(not _has("ruff"), reason="ruff not installed (CI-only lane)")
def test_ruff_clean():
    proc = subprocess.run(
        [sys.executable, "-m", "ruff", "check", "src/repro"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout
