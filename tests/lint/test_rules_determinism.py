"""Fixture suites for the determinism rules (D101-D104)."""

from __future__ import annotations

from repro.lint.rules.determinism import (
    UnorderedIterationRule,
    UnseededRngRule,
    UnsortedSerializationRule,
    WallClockRule,
)

from lint_helpers import codes, lines_of, lint_sources  # noqa: F401 (fixture)

SIM = "src/repro/sim/fixture.py"
PLOTS = "src/repro/plots.py"  # outside the result-affecting scope


class TestD101UnseededRng:
    def test_global_draw_fires(self, lint_sources):
        report = lint_sources(
            {SIM: "import random\nx = random.random()\n"},
            rules=[UnseededRngRule()],
        )
        assert codes(report) == ["D101"]
        assert lines_of(report, "D101") == [2]

    def test_numpy_global_draw_fires(self, lint_sources):
        source = "import numpy as np\nnp.random.shuffle([1, 2])\n"
        report = lint_sources({SIM: source}, rules=[UnseededRngRule()])
        assert codes(report) == ["D101"]

    def test_unseeded_constructor_fires(self, lint_sources):
        source = "import numpy as np\nrng = np.random.default_rng()\n"
        report = lint_sources({SIM: source}, rules=[UnseededRngRule()])
        assert codes(report) == ["D101"]

    def test_seeded_generators_pass(self, lint_sources):
        source = (
            "import random\n"
            "import numpy as np\n"
            "rng = np.random.default_rng(42)\n"
            "r = random.Random(7)\n"
            "x = rng.normal()\n"
            "y = r.randint(0, 3)\n"
        )
        report = lint_sources({SIM: source}, rules=[UnseededRngRule()])
        assert report.ok

    def test_applies_everywhere(self, lint_sources):
        # D101 is not scoped to result-affecting modules: a global draw in
        # an experiment script is just as unreproducible.
        report = lint_sources(
            {PLOTS: "import random\nrandom.random()\n"},
            rules=[UnseededRngRule()],
        )
        assert codes(report) == ["D101"]


class TestD102UnorderedIteration:
    def test_dict_values_loop_fires(self, lint_sources):
        source = "def f(d):\n    for v in d.values():\n        print(v)\n"
        report = lint_sources({SIM: source}, rules=[UnorderedIterationRule()])
        assert codes(report) == ["D102"]
        assert lines_of(report, "D102") == [2]

    def test_set_literal_fires(self, lint_sources):
        source = "def f():\n    return [x for x in {3, 1, 2}]\n"
        report = lint_sources({SIM: source}, rules=[UnorderedIterationRule()])
        assert codes(report) == ["D102"]

    def test_transparent_wrapper_fires(self, lint_sources):
        source = "def f(d):\n    for v in list(d.items()):\n        print(v)\n"
        report = lint_sources({SIM: source}, rules=[UnorderedIterationRule()])
        assert codes(report) == ["D102"]

    def test_sorted_wrap_passes(self, lint_sources):
        source = "def f(d):\n    for v in sorted(d.values()):\n        print(v)\n"
        report = lint_sources({SIM: source}, rules=[UnorderedIterationRule()])
        assert report.ok

    def test_order_insensitive_reducer_passes(self, lint_sources):
        source = (
            "def f(d, s):\n"
            "    total = sum(len(v) for v in d.values())\n"
            "    flag = all(x > 0 for x in s)\n"
            "    return total, flag\n"
        )
        report = lint_sources({SIM: source}, rules=[UnorderedIterationRule()])
        assert report.ok

    def test_out_of_scope_module_passes(self, lint_sources):
        source = "def f(d):\n    for v in d.values():\n        print(v)\n"
        report = lint_sources({PLOTS: source}, rules=[UnorderedIterationRule()])
        assert report.ok


class TestD103WallClock:
    def test_perf_counter_fires(self, lint_sources):
        source = "import time\ndef f():\n    return time.perf_counter()\n"
        report = lint_sources({SIM: source}, rules=[WallClockRule()])
        assert codes(report) == ["D103"]
        assert lines_of(report, "D103") == [3]

    def test_datetime_now_fires(self, lint_sources):
        source = "from datetime import datetime\nstamp = datetime.now()\n"
        report = lint_sources({SIM: source}, rules=[WallClockRule()])
        assert codes(report) == ["D103"]

    def test_out_of_scope_module_passes(self, lint_sources):
        # Experiment drivers legitimately time themselves for reporting.
        source = "import time\nelapsed = time.perf_counter()\n"
        report = lint_sources({PLOTS: source}, rules=[WallClockRule()])
        assert report.ok


class TestD104UnsortedSerialization:
    def test_dumps_without_sort_keys_fires(self, lint_sources):
        source = "import json\npayload = json.dumps({'b': 1, 'a': 2})\n"
        report = lint_sources({PLOTS: source}, rules=[UnsortedSerializationRule()])
        assert codes(report) == ["D104"]
        assert lines_of(report, "D104") == [2]

    def test_sort_keys_false_fires(self, lint_sources):
        source = "import json\npayload = json.dumps({}, sort_keys=False)\n"
        report = lint_sources({PLOTS: source}, rules=[UnsortedSerializationRule()])
        assert codes(report) == ["D104"]

    def test_sort_keys_true_passes(self, lint_sources):
        source = "import json\npayload = json.dumps({}, sort_keys=True)\n"
        report = lint_sources({PLOTS: source}, rules=[UnsortedSerializationRule()])
        assert report.ok
