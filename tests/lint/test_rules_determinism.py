"""Fixture suites for the determinism rules (D101-D104)."""

from __future__ import annotations

from repro.lint.rules.determinism import (
    UnorderedIterationRule,
    UnseededRngRule,
    UnsortedSerializationRule,
    WallClockRule,
)

from lint_helpers import codes, lines_of, lint_sources  # noqa: F401 (fixture)

SIM = "src/repro/sim/fixture.py"
PLOTS = "src/repro/plots.py"  # outside the result-affecting scope
OBS_ISLAND = "src/repro/obs/registry.py"  # the one allowlisted wall-clock module
OBS_OTHER = "src/repro/obs/events.py"  # obs scope, NOT allowlisted
VERIFY = "src/repro/verification/fixture.py"  # verification scope (D101/D102)


class TestD101UnseededRng:
    def test_global_draw_fires(self, lint_sources):
        report = lint_sources(
            {SIM: "import random\nx = random.random()\n"},
            rules=[UnseededRngRule()],
        )
        assert codes(report) == ["D101"]
        assert lines_of(report, "D101") == [2]

    def test_numpy_global_draw_fires(self, lint_sources):
        source = "import numpy as np\nnp.random.shuffle([1, 2])\n"
        report = lint_sources({SIM: source}, rules=[UnseededRngRule()])
        assert codes(report) == ["D101"]

    def test_unseeded_constructor_fires(self, lint_sources):
        source = "import numpy as np\nrng = np.random.default_rng()\n"
        report = lint_sources({SIM: source}, rules=[UnseededRngRule()])
        assert codes(report) == ["D101"]

    def test_seeded_generators_pass(self, lint_sources):
        source = (
            "import random\n"
            "import numpy as np\n"
            "rng = np.random.default_rng(42)\n"
            "r = random.Random(7)\n"
            "x = rng.normal()\n"
            "y = r.randint(0, 3)\n"
        )
        report = lint_sources({SIM: source}, rules=[UnseededRngRule()])
        assert report.ok

    def test_applies_everywhere(self, lint_sources):
        # D101 is not scoped to result-affecting modules: a global draw in
        # an experiment script is just as unreproducible.
        report = lint_sources(
            {PLOTS: "import random\nrandom.random()\n"},
            rules=[UnseededRngRule()],
        )
        assert codes(report) == ["D101"]


class TestD102UnorderedIteration:
    def test_dict_values_loop_fires(self, lint_sources):
        source = "def f(d):\n    for v in d.values():\n        print(v)\n"
        report = lint_sources({SIM: source}, rules=[UnorderedIterationRule()])
        assert codes(report) == ["D102"]
        assert lines_of(report, "D102") == [2]

    def test_set_literal_fires(self, lint_sources):
        source = "def f():\n    return [x for x in {3, 1, 2}]\n"
        report = lint_sources({SIM: source}, rules=[UnorderedIterationRule()])
        assert codes(report) == ["D102"]

    def test_transparent_wrapper_fires(self, lint_sources):
        source = "def f(d):\n    for v in list(d.items()):\n        print(v)\n"
        report = lint_sources({SIM: source}, rules=[UnorderedIterationRule()])
        assert codes(report) == ["D102"]

    def test_sorted_wrap_passes(self, lint_sources):
        source = "def f(d):\n    for v in sorted(d.values()):\n        print(v)\n"
        report = lint_sources({SIM: source}, rules=[UnorderedIterationRule()])
        assert report.ok

    def test_order_insensitive_reducer_passes(self, lint_sources):
        source = (
            "def f(d, s):\n"
            "    total = sum(len(v) for v in d.values())\n"
            "    flag = all(x > 0 for x in s)\n"
            "    return total, flag\n"
        )
        report = lint_sources({SIM: source}, rules=[UnorderedIterationRule()])
        assert report.ok

    def test_out_of_scope_module_passes(self, lint_sources):
        source = "def f(d):\n    for v in d.values():\n        print(v)\n"
        report = lint_sources({PLOTS: source}, rules=[UnorderedIterationRule()])
        assert report.ok

    def test_verification_module_fires(self, lint_sources):
        # The verification harness is in D102's scope: a hash-order
        # iteration in the sharded fold would break the jobs-independence
        # guarantee silently.
        source = "def f(d):\n    for v in d.values():\n        print(v)\n"
        report = lint_sources({VERIFY: source}, rules=[UnorderedIterationRule()])
        assert codes(report) == ["D102"]
        assert lines_of(report, "D102") == [2]

    def test_verification_sorted_wrap_passes(self, lint_sources):
        source = "def f(d):\n    for v in sorted(d.values()):\n        print(v)\n"
        report = lint_sources({VERIFY: source}, rules=[UnorderedIterationRule()])
        assert report.ok

    def test_verification_d101_fires_too(self, lint_sources):
        # D101 has no scope: unseeded draws in verification code break
        # seed-reproducibility of walks and streams just the same.
        report = lint_sources(
            {VERIFY: "import random\nx = random.random()\n"},
            rules=[UnseededRngRule()],
        )
        assert codes(report) == ["D101"]

    def test_verification_wall_clock_exempt(self, lint_sources):
        # D103 deliberately does NOT scan the verification harness: the
        # checker's progress reporting and the CLI's swarm budget read the
        # host clock, and no clock value reaches a verification verdict.
        source = "import time\ndef f():\n    return time.perf_counter()\n"
        report = lint_sources({VERIFY: source}, rules=[WallClockRule()])
        assert report.ok


class TestD103WallClock:
    def test_perf_counter_fires(self, lint_sources):
        source = "import time\ndef f():\n    return time.perf_counter()\n"
        report = lint_sources({SIM: source}, rules=[WallClockRule()])
        assert codes(report) == ["D103"]
        assert lines_of(report, "D103") == [3]

    def test_datetime_now_fires(self, lint_sources):
        source = "from datetime import datetime\nstamp = datetime.now()\n"
        report = lint_sources({SIM: source}, rules=[WallClockRule()])
        assert codes(report) == ["D103"]

    def test_out_of_scope_module_passes(self, lint_sources):
        # Experiment drivers legitimately time themselves for reporting.
        source = "import time\nelapsed = time.perf_counter()\n"
        report = lint_sources({PLOTS: source}, rules=[WallClockRule()])
        assert report.ok


class TestD103ObsWallClockAllowlist:
    """The telemetry island: ``OBS_WALLCLOCK_MODULES`` scoping and audit."""

    CLOCK = "import time\ndef clock():\n    return time.perf_counter()\n"

    def test_allowlisted_module_may_read_the_clock(self, lint_sources):
        report = lint_sources({OBS_ISLAND: self.CLOCK}, rules=[WallClockRule()])
        assert report.ok

    def test_non_allowlisted_obs_module_fires(self, lint_sources):
        source = "import time\nstamp = time.time()\n"
        report = lint_sources(
            {OBS_ISLAND: self.CLOCK, OBS_OTHER: source}, rules=[WallClockRule()]
        )
        assert codes(report) == ["D103"]
        assert lines_of(report, "D103") == [2]
        [violation] = report.violations
        assert "OBS_WALLCLOCK_MODULES" in violation.message

    def test_result_affecting_module_still_fires_alongside_obs(self, lint_sources):
        report = lint_sources(
            {
                OBS_ISLAND: self.CLOCK,
                SIM: "import time\nt = time.perf_counter()\n",
            },
            rules=[WallClockRule()],
        )
        assert codes(report) == ["D103"]

    def test_stale_entry_no_clock_read_is_flagged(self, lint_sources):
        # The allowlisted module exists but no longer reads the clock: the
        # audit demands the island shrink rather than stay silently stale.
        report = lint_sources({OBS_ISLAND: "x = 1\n"}, rules=[WallClockRule()])
        assert codes(report) == ["D103"]
        [violation] = report.violations
        assert "stale" in violation.message

    def test_stale_entry_module_missing_is_flagged(self, lint_sources):
        # Obs modules are being linted but the allowlisted one is gone.
        report = lint_sources(
            {OBS_OTHER: "y = 2\n"}, rules=[WallClockRule()]
        )
        assert codes(report) == ["D103"]
        [violation] = report.violations
        assert "not part of the linted tree" in violation.message
        assert violation.path == OBS_ISLAND

    def test_audit_skipped_without_obs_modules_in_scope(self, lint_sources):
        # A partial lint (one sim file) must not demand the obs island be
        # present — the audit only runs when obs modules are in the set.
        report = lint_sources(
            {SIM: "value = 3\n"}, rules=[WallClockRule()]
        )
        assert report.ok


class TestD104UnsortedSerialization:
    def test_dumps_without_sort_keys_fires(self, lint_sources):
        source = "import json\npayload = json.dumps({'b': 1, 'a': 2})\n"
        report = lint_sources({PLOTS: source}, rules=[UnsortedSerializationRule()])
        assert codes(report) == ["D104"]
        assert lines_of(report, "D104") == [2]

    def test_sort_keys_false_fires(self, lint_sources):
        source = "import json\npayload = json.dumps({}, sort_keys=False)\n"
        report = lint_sources({PLOTS: source}, rules=[UnsortedSerializationRule()])
        assert codes(report) == ["D104"]

    def test_sort_keys_true_passes(self, lint_sources):
        source = "import json\npayload = json.dumps({}, sort_keys=True)\n"
        report = lint_sources({PLOTS: source}, rules=[UnsortedSerializationRule()])
        assert report.ok
