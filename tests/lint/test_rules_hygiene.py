"""Fixture suites for the hot-path hygiene rules (H301-H303)."""

from __future__ import annotations

from repro.lint.rules.hygiene import (
    AttrOutsideInitRule,
    EnvRegistryRule,
    SlotsRequiredRule,
)

from lint_helpers import codes, lines_of, lint_sources  # noqa: F401 (fixture)

HOT = "src/repro/sim/kernel.py"  # a hot-path slots module
COLD = "src/repro/experiments/fixture.py"


class TestH301SlotsRequired:
    def test_unslotted_class_fires(self, lint_sources):
        source = "class PerAccessState:\n    def __init__(self):\n        self.x = 0\n"
        report = lint_sources({HOT: source}, rules=[SlotsRequiredRule()])
        assert codes(report) == ["H301"]
        assert lines_of(report, "H301") == [1]

    def test_unslotted_dataclass_fires(self, lint_sources):
        source = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class PerAccessState:\n"
            "    x: int = 0\n"
        )
        report = lint_sources({HOT: source}, rules=[SlotsRequiredRule()])
        assert codes(report) == ["H301"]

    def test_slotted_forms_pass(self, lint_sources):
        source = (
            "from dataclasses import dataclass\n"
            "class Plain:\n"
            "    __slots__ = ('x',)\n"
            "@dataclass(slots=True)\n"
            "class Data:\n"
            "    x: int = 0\n"
        )
        report = lint_sources({HOT: source}, rules=[SlotsRequiredRule()])
        assert report.ok

    def test_exempt_kinds_pass(self, lint_sources):
        source = (
            "import enum\n"
            "from typing import NamedTuple, Protocol\n"
            "class Kind(enum.Enum):\n"
            "    A = 1\n"
            "class Oops(Exception):\n"
            "    pass\n"
            "class Point(NamedTuple):\n"
            "    x: int\n"
            "class Reader(Protocol):\n"
            "    def read(self) -> int: ...\n"
        )
        report = lint_sources({HOT: source}, rules=[SlotsRequiredRule()])
        assert report.ok

    def test_cold_module_out_of_scope(self, lint_sources):
        source = "class Anything:\n    pass\n"
        report = lint_sources({COLD: source}, rules=[SlotsRequiredRule()])
        assert report.ok


class TestH302AttrOutsideInit:
    def test_late_attribute_fires(self, lint_sources):
        source = (
            "class Engine:\n"
            "    __slots__ = ('x', 'y')\n"
            "    def __init__(self):\n"
            "        self.x = 0\n"
            "    def step(self):\n"
            "        self.y = 1\n"
            "        self.z = 2\n"
        )
        report = lint_sources({HOT: source}, rules=[AttrOutsideInitRule()])
        # self.y rebinds a slot; self.z invents new state.
        assert codes(report) == ["H302"]
        assert lines_of(report, "H302") == [7]

    def test_declared_rebinds_pass(self, lint_sources):
        source = (
            "class Engine:\n"
            "    def __init__(self):\n"
            "        self.count = 0\n"
            "    def step(self):\n"
            "        self.count += 1\n"
            "        self.count = 2\n"
        )
        report = lint_sources({HOT: source}, rules=[AttrOutsideInitRule()])
        assert report.ok

    def test_inherited_attr_resolves_across_modules(self, lint_sources):
        base = (
            "class Base:\n"
            "    def __init__(self):\n"
            "        self.shared = 0\n"
        )
        child = (
            "from repro.sim.fixture_base import Base\n"
            "class Child(Base):\n"
            "    def step(self):\n"
            "        self.shared = 1\n"
        )
        report = lint_sources(
            {
                "src/repro/sim/fixture_base.py": base,
                HOT: child,
            },
            rules=[AttrOutsideInitRule()],
        )
        assert report.ok

    def test_unresolvable_base_is_exempt(self, lint_sources):
        # A base class outside the linted set: nothing can be proven, so
        # the class is skipped rather than flagged.
        source = (
            "from repro.vendor import Mystery\n"
            "class Child(Mystery):\n"
            "    def step(self):\n"
            "        self.whatever = 1\n"
        )
        report = lint_sources({HOT: source}, rules=[AttrOutsideInitRule()])
        assert report.ok


class TestH303EnvRegistry:
    def test_unregistered_knob_fires(self, lint_sources):
        source = "import os\nvalue = os.environ.get('REPRO_TURBO', '1')\n"
        report = lint_sources({COLD: source}, rules=[EnvRegistryRule()])
        assert codes(report) == ["H303"]
        assert lines_of(report, "H303") == [2]

    def test_subscript_read_fires(self, lint_sources):
        source = "import os\nvalue = os.environ['REPRO_TURBO']\n"
        report = lint_sources({COLD: source}, rules=[EnvRegistryRule()])
        assert codes(report) == ["H303"]

    def test_getenv_of_registered_knob_passes(self, lint_sources):
        source = (
            "import os\n"
            "scale = os.environ.get('REPRO_SCALE', '1.0')\n"
            "kernel = os.getenv('REPRO_SIM_KERNEL', 'auto')\n"
        )
        report = lint_sources({COLD: source}, rules=[EnvRegistryRule()])
        assert report.ok

    def test_non_repro_names_ignored(self, lint_sources):
        source = "import os\nhome = os.environ.get('HOME', '')\n"
        report = lint_sources({COLD: source}, rules=[EnvRegistryRule()])
        assert report.ok

    def test_registered_knobs_are_documented(self):
        """Every registered knob must appear in README.md (the run-level
        check fires only when settings.py is part of the linted set)."""
        import os

        from lint_helpers import REPO_ROOT
        from repro.experiments.settings import ENV_KNOBS

        with open(os.path.join(REPO_ROOT, "README.md")) as handle:
            readme = handle.read()
        for knob in ENV_KNOBS:
            assert knob.name in readme, f"{knob.name} missing from README.md"
