"""Budget audit, CLI behaviour, and the shipped tree's cleanliness."""

from __future__ import annotations

import json
import os
import subprocess
import sys

from repro.lint import budget as budget_mod
from repro.lint import lint_paths

from lint_helpers import REPO_ROOT

SRC_REPRO = os.path.join(REPO_ROOT, "src", "repro")
BUDGET = os.path.join(REPO_ROOT, budget_mod.BUDGET_FILENAME)

SUPPRESSED_CLOCK = (
    "import time\n"
    "# repro-lint: disable=D103(fixture reason)\n"
    "stamp = time.perf_counter()\n"
)


def _project(tmp_path, source=SUPPRESSED_CLOCK):
    pkg = tmp_path / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "fixture.py").write_text(source)
    return tmp_path


class TestBudgetAudit:
    def test_matching_budget_passes(self, tmp_path):
        root = _project(tmp_path)
        budget_path = root / "lint-budget.json"
        budget_mod.dump(
            {("src/repro/sim/fixture.py", "D103"): 1}, str(budget_path)
        )
        report = lint_paths(
            [str(root / "src" / "repro")],
            root=str(root),
            budget_path=str(budget_path),
        )
        assert report.ok

    def test_undeclared_suppression_is_x103(self, tmp_path):
        root = _project(tmp_path)
        budget_path = root / "lint-budget.json"
        budget_mod.dump({}, str(budget_path))
        report = lint_paths(
            [str(root / "src" / "repro")],
            root=str(root),
            budget_path=str(budget_path),
        )
        assert [v.code for v in report.violations] == ["X103"]

    def test_stale_budget_entry_is_x103(self, tmp_path):
        root = _project(tmp_path, source="x = 1\n")
        budget_path = root / "lint-budget.json"
        budget_mod.dump(
            {("src/repro/sim/fixture.py", "D103"): 1}, str(budget_path)
        )
        report = lint_paths(
            [str(root / "src" / "repro")],
            root=str(root),
            budget_path=str(budget_path),
        )
        assert [v.code for v in report.violations] == ["X103"]

    def test_dump_is_canonical(self, tmp_path):
        path = tmp_path / "budget.json"
        counts = {("b.py", "D103"): 1, ("a.py", "D102"): 2}
        budget_mod.dump(counts, str(path))
        payload = json.loads(path.read_text())
        entries = payload["suppressions"]
        assert entries == sorted(
            entries, key=lambda e: (e["path"], e["code"])
        )
        assert budget_mod.load(str(path)) == counts


def run_cli(args, cwd):
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        cwd=cwd,
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
    )


class TestCli:
    def test_clean_fixture_exits_zero(self, tmp_path):
        root = _project(tmp_path, source="x = 1\n")
        proc = run_cli(["--no-budget"], cwd=str(root))
        assert proc.returncode == 0, proc.stderr

    def test_findings_exit_one(self, tmp_path):
        root = _project(
            tmp_path, source="import time\nstamp = time.perf_counter()\n"
        )
        proc = run_cli(["--no-budget"], cwd=str(root))
        assert proc.returncode == 1
        assert "D103" in proc.stdout

    def test_no_files_exit_two(self, tmp_path):
        (tmp_path / "src" / "repro").mkdir(parents=True)
        proc = run_cli(["--no-budget"], cwd=str(tmp_path))
        assert proc.returncode == 2

    def test_json_format(self, tmp_path):
        root = _project(
            tmp_path, source="import time\nstamp = time.perf_counter()\n"
        )
        proc = run_cli(["--no-budget", "--format", "json"], cwd=str(root))
        payload = json.loads(proc.stdout)
        assert payload["files"] == 1
        assert [v["code"] for v in payload["violations"]] == ["D103"]

    def test_list_rules(self, tmp_path):
        proc = run_cli(["--list-rules"], cwd=str(tmp_path))
        assert proc.returncode == 0
        for code in ("D101", "D104", "P202", "H303", "X103"):
            assert code in proc.stdout

    def test_write_budget_round_trips(self, tmp_path):
        root = _project(tmp_path)
        proc = run_cli(["--write-budget"], cwd=str(root))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads((root / "lint-budget.json").read_text())
        assert payload["suppressions"] == [
            {"code": "D103", "count": 1, "path": "src/repro/sim/fixture.py"}
        ]


class TestShippedTree:
    """The acceptance gate: the real tree lints clean under its budget."""

    def test_tree_is_clean(self):
        report = lint_paths([SRC_REPRO], root=REPO_ROOT, budget_path=BUDGET)
        assert report.ok, "\n".join(v.render() for v in report.violations)

    def test_budget_matches_actual_suppressions(self):
        """Meta-test: lint-budget.json equals the suppressions actually
        used, bidirectionally — no stale waivers, no undeclared ones."""
        report = lint_paths([SRC_REPRO], root=REPO_ROOT, budget_path=BUDGET)
        declared = budget_mod.load(BUDGET)
        assert report.used_suppression_counts() == declared

    def test_every_suppression_carries_a_reason(self):
        report = lint_paths([SRC_REPRO], root=REPO_ROOT, budget_path=BUDGET)
        for path, suppression in report.suppressions:
            assert suppression.reason.strip(), (
                f"{path}:{suppression.comment_line} has an empty reason"
            )
