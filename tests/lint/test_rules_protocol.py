"""Fixture suites for the protocol-contract rules (P201-P203)."""

from __future__ import annotations

from repro.lint.rules.protocol import (
    BatchContractRule,
    StateAlphabetRule,
    UnknownEnumMemberRule,
)

from lint_helpers import codes, lines_of, lint_sources  # noqa: F401 (fixture)

CORE = "src/repro/core/fixture.py"


class TestP201UnknownEnumMember:
    def test_unknown_member_fires(self, lint_sources):
        source = (
            "from repro.core.states import StableState\n"
            "state = StableState.BOGUS\n"
        )
        report = lint_sources({CORE: source}, rules=[UnknownEnumMemberRule()])
        assert codes(report) == ["P201"]
        assert lines_of(report, "P201") == [2]

    def test_real_members_pass(self, lint_sources):
        source = (
            "from repro.core.states import LineMode, RequestType, StableState\n"
            "a = StableState.MODIFIED\n"
            "b = LineMode.UPDATE_ONLY\n"
            "c = RequestType.READ\n"
        )
        report = lint_sources({CORE: source}, rules=[UnknownEnumMemberRule()])
        assert report.ok


class TestP202BatchContract:
    def test_bad_hot_commutative_value_fires(self, lint_sources):
        source = (
            "class FancyProtocol:\n"
            "    HOT_COMMUTATIVE = 'sometimes'\n"
        )
        report = lint_sources({CORE: source}, rules=[BatchContractRule()])
        assert "P202" in codes(report)

    def test_local_commutative_without_batch_hook_fires(self, lint_sources):
        source = (
            "class FancyProtocol:\n"
            "    HOT_COMMUTATIVE = 'local'\n"
        )
        report = lint_sources({CORE: source}, rules=[BatchContractRule()])
        assert "P202" in codes(report)

    def test_batch_kernel_without_hot_mask_fires(self, lint_sources):
        source = (
            "class FancyProtocol:\n"
            "    SUPPORTS_BATCH_KERNEL = True\n"
            "    SUPPORTS_INLINE_FAST_PATH = True\n"
            "    HOT_COMMUTATIVE = 'atomic'\n"
        )
        report = lint_sources({CORE: source}, rules=[BatchContractRule()])
        assert "P202" in codes(report)

    def test_full_contract_passes(self, lint_sources):
        source = (
            "class FancyProtocol:\n"
            "    SUPPORTS_BATCH_KERNEL = True\n"
            "    SUPPORTS_INLINE_FAST_PATH = True\n"
            "    HOT_COMMUTATIVE = 'local'\n"
            "    def hot_mask(self, codes):\n"
            "        return codes\n"
            "    def batch_uop_code(self):\n"
            "        return 0\n"
        )
        report = lint_sources({CORE: source}, rules=[BatchContractRule()])
        assert report.ok

    def test_inheriting_engine_passes(self, lint_sources):
        # A subclass of a known hot_mask provider inherits the contract.
        source = (
            "from repro.core.mesi import MesiProtocol\n"
            "class TweakedMesi(MesiProtocol):\n"
            "    SUPPORTS_BATCH_KERNEL = True\n"
            "    SUPPORTS_INLINE_FAST_PATH = True\n"
            "    HOT_COMMUTATIVE = 'atomic'\n"
        )
        report = lint_sources({CORE: source}, rules=[BatchContractRule()])
        assert report.ok

    def test_slow_batch_flag_without_merge_fires(self, lint_sources):
        source = (
            "class FancyProtocol:\n"
            "    SUPPORTS_SLOW_BATCH = True\n"
        )
        report = lint_sources({CORE: source}, rules=[BatchContractRule()])
        assert "P202" in codes(report)

    def test_slow_batch_merge_without_flag_fires(self, lint_sources):
        # Defining the merge while declaring non-participation is a stale
        # flag: the kernel's dispatch would never call the method.
        source = (
            "class FancyProtocol:\n"
            "    SUPPORTS_SLOW_BATCH = False\n"
            "    def resolve_slow_batch(self):\n"
            "        return (0, 0, 0)\n"
        )
        report = lint_sources({CORE: source}, rules=[BatchContractRule()])
        assert "P202" in codes(report)

    def test_slow_batch_contract_passes_with_own_merge(self, lint_sources):
        source = (
            "class FancyProtocol:\n"
            "    SUPPORTS_SLOW_BATCH = True\n"
            "    def resolve_slow_batch(self):\n"
            "        return (0, 0, 0)\n"
        )
        report = lint_sources({CORE: source}, rules=[BatchContractRule()])
        assert report.ok

    def test_slow_batch_contract_inherited_from_mesi_family(self, lint_sources):
        source = (
            "from repro.core.mesi import MesiProtocol\n"
            "class TweakedMesi(MesiProtocol):\n"
            "    SUPPORTS_SLOW_BATCH = True\n"
        )
        report = lint_sources({CORE: source}, rules=[BatchContractRule()])
        assert report.ok

    def test_opting_out_without_defining_merge_passes(self, lint_sources):
        # RMO's shape: participation declined, merge only inherited.
        source = (
            "from repro.core.mesi import MesiProtocol\n"
            "class BankSerialised(MesiProtocol):\n"
            "    SUPPORTS_SLOW_BATCH = False\n"
        )
        report = lint_sources({CORE: source}, rules=[BatchContractRule()])
        assert report.ok

    def test_real_tree_semantic_contract(self):
        # The run-level finalize cross-checks the live PROTOCOLS registry
        # and the 104-entry columnar type-code table; exercised in full by
        # test_tree_is_clean, but assert the gate directly here too.
        from repro.lint.context import ProjectContext
        from repro.lint.engine import load_source_module, run_rules
        from lint_helpers import REPO_ROOT
        import os

        rel = "src/repro/sim/columnar.py"
        module = load_source_module(os.path.join(REPO_ROOT, rel), rel)
        raw, _ = run_rules([module], [BatchContractRule()], ProjectContext(REPO_ROOT))
        assert [v for v in raw if v.code == "P202"] == []


class TestP203StateAlphabet:
    def test_update_in_plain_mesi_engine_fires(self, lint_sources):
        source = (
            "from repro.core.states import StableState\n"
            "def f():\n"
            "    return StableState.UPDATE\n"
        )
        report = lint_sources(
            {"src/repro/core/rmo.py": source}, rules=[StateAlphabetRule()]
        )
        assert codes(report) == ["P203"]
        assert lines_of(report, "P203") == [3]

    def test_update_in_meusi_engine_passes(self, lint_sources):
        source = (
            "from repro.core.states import StableState\n"
            "def f():\n"
            "    return StableState.UPDATE\n"
        )
        report = lint_sources(
            {"src/repro/core/meusi.py": source}, rules=[StateAlphabetRule()]
        )
        assert report.ok

    def test_non_engine_module_out_of_scope(self, lint_sources):
        source = (
            "from repro.core.states import StableState\n"
            "state = StableState.UPDATE\n"
        )
        report = lint_sources({CORE: source}, rules=[StateAlphabetRule()])
        assert report.ok
