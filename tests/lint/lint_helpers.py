"""Helpers and fixtures for the repro-lint tests.

Imported by filename (pytest's prepend import mode puts this directory on
``sys.path``); deliberately NOT a ``conftest.py`` — the benchmarks suite
imports its own ``conftest`` by module name, which a second non-package
conftest would shadow during whole-repo collection.

Rules scope purely on project-relative paths, so fixtures are plain source
strings written under a pretend relpath (``src/repro/sim/fixture.py`` puts a
fixture inside the result-affecting + hot-path scope, ``src/repro/plots.py``
outside it) without touching the real tree.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

import pytest

from repro.lint.context import ProjectContext
from repro.lint.engine import (
    LintReport,
    Rule,
    SourceModule,
    apply_suppressions,
    load_source_module,
    run_rules,
)
from repro.lint.rules import all_rules

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


@pytest.fixture()
def lint_sources(tmp_path):
    """Lint ``{relpath: source}`` fixtures through the full engine."""

    def run(
        sources: Dict[str, str],
        rules: Optional[Sequence[Rule]] = None,
    ) -> LintReport:
        modules: List[SourceModule] = []
        for index, (relpath, source) in enumerate(sorted(sources.items())):
            path = tmp_path / f"fixture_{index}.py"
            path.write_text(source)
            modules.append(load_source_module(str(path), relpath))
        ctx = ProjectContext(REPO_ROOT)
        active = list(rules) if rules is not None else all_rules()
        raw, _classdb = run_rules(modules, active, ctx)
        return apply_suppressions(modules, raw, active)

    return run


def codes(report: LintReport) -> List[str]:
    return [violation.code for violation in report.violations]


def lines_of(report: LintReport, code: str) -> List[int]:
    return [v.line for v in report.violations if v.code == code]
