"""Engine behaviour: suppression directives, meta-findings, rule registry."""

from __future__ import annotations

import pytest

from repro.lint.rules import META_CODES, all_rules, rule_catalogue
from repro.lint.rules.determinism import WallClockRule

from lint_helpers import codes, lint_sources  # noqa: F401 (fixture)

SIM = "src/repro/sim/fixture.py"

CLOCK = "import time\nstamp = time.perf_counter()"


class TestRuleRegistry:
    def test_codes_and_symbols_unique(self):
        rules = all_rules()
        assert len({r.code for r in rules}) == len(rules)
        assert len({r.symbol for r in rules}) == len(rules)
        assert not ({r.code for r in rules} & set(META_CODES))

    def test_catalogue_covers_rules_and_meta(self):
        entries = {e["code"] for e in rule_catalogue()}
        assert {r.code for r in all_rules()} <= entries
        assert set(META_CODES) <= entries


class TestSuppressions:
    def test_trailing_suppression_waives(self, lint_sources):
        source = (
            "import time\n"
            "stamp = time.perf_counter()  "
            "# repro-lint: disable=D103(fixture reason)\n"
        )
        report = lint_sources({SIM: source}, rules=[WallClockRule()])
        assert report.ok
        assert [v.code for v in report.suppressed] == ["D103"]

    def test_standalone_suppression_covers_next_line(self, lint_sources):
        source = (
            "import time\n"
            "# repro-lint: disable=D103(fixture reason)\n"
            "stamp = time.perf_counter()\n"
        )
        report = lint_sources({SIM: source}, rules=[WallClockRule()])
        assert report.ok
        assert len(report.suppressed) == 1

    def test_symbol_name_suppression_resolves_to_code(self, lint_sources):
        source = (
            "import time\n"
            "# repro-lint: disable=wall-clock(fixture reason)\n"
            "stamp = time.perf_counter()\n"
        )
        report = lint_sources({SIM: source}, rules=[WallClockRule()])
        assert report.ok
        counts = report.used_suppression_counts()
        assert counts == {(SIM, "D103"): 1}

    def test_suppression_does_not_leak_to_other_lines(self, lint_sources):
        source = (
            "import time\n"
            "# repro-lint: disable=D103(fixture reason)\n"
            "a = time.perf_counter()\n"
            "b = time.perf_counter()\n"
        )
        report = lint_sources({SIM: source}, rules=[WallClockRule()])
        assert codes(report) == ["D103"]
        assert report.violations[0].line == 4

    def test_missing_reason_is_malformed(self, lint_sources):
        source = (
            "import time\n"
            "stamp = time.perf_counter()  # repro-lint: disable=D103\n"
        )
        report = lint_sources({SIM: source}, rules=[WallClockRule()])
        # The directive is rejected (X101) and therefore waives nothing.
        assert sorted(codes(report)) == ["D103", "X101"]

    def test_unknown_rule_reported(self, lint_sources):
        source = "x = 1  # repro-lint: disable=D999(no such rule)\n"
        report = lint_sources({SIM: source}, rules=[WallClockRule()])
        assert "X100" in codes(report)

    def test_unused_suppression_reported(self, lint_sources):
        source = "# repro-lint: disable=D103(nothing here reads the clock)\nx = 1\n"
        report = lint_sources({SIM: source}, rules=[WallClockRule()])
        assert codes(report) == ["X102"]

    def test_meta_findings_not_suppressible(self, lint_sources):
        # An unused suppression cannot be waived by another suppression:
        # the audit trail must not be able to silence itself.
        source = (
            "# repro-lint: disable=X102(quiet please)\n"
            "# repro-lint: disable=D103(nothing here reads the clock)\n"
            "x = 1\n"
        )
        report = lint_sources({SIM: source}, rules=[WallClockRule()])
        assert "X100" in codes(report) or "X102" in codes(report)
        assert not report.ok

    def test_syntax_error_is_x104(self, lint_sources):
        report = lint_sources({SIM: "def broken(:\n"}, rules=[WallClockRule()])
        assert codes(report) == ["X104"]


@pytest.mark.parametrize("comment", [
    "# repro-lint: disable=",
    "# repro-lint: disable=D103(unbalanced",
    "# repro-lint: enable=D103(no such verb)",
])
def test_malformed_directives_are_x101(lint_sources, comment):
    report = lint_sources({SIM: comment + "\nx = 1\n"}, rules=[WallClockRule()])
    assert "X101" in codes(report)
