"""Tests for memory access records and workload traces."""

from __future__ import annotations

import pytest

from repro.core.commutative import CommutativeOp
from repro.sim.access import AccessType, MemoryAccess, WorkloadTrace, merge_traces


class TestMemoryAccess:
    def test_constructors(self):
        load = MemoryAccess.load(0x100, think=5)
        assert load.access_type is AccessType.LOAD
        assert load.think_instructions == 5

        store = MemoryAccess.store(0x100, 7)
        assert store.access_type is AccessType.STORE
        assert store.value == 7

        atomic = MemoryAccess.atomic(0x100, CommutativeOp.ADD_I32, 2)
        assert atomic.access_type is AccessType.ATOMIC_RMW
        assert atomic.size_bytes == 4

        commutative = MemoryAccess.commutative(0x100, CommutativeOp.OR_64, 0b1)
        assert commutative.access_type is AccessType.COMMUTATIVE_UPDATE
        assert commutative.op is CommutativeOp.OR_64

        remote = MemoryAccess.remote_update(0x100, CommutativeOp.ADD_I64, 1)
        assert remote.access_type is AccessType.REMOTE_UPDATE

    def test_update_classification(self):
        assert not AccessType.LOAD.is_update
        assert AccessType.STORE.is_update
        assert AccessType.ATOMIC_RMW.is_update
        assert AccessType.COMMUTATIVE_UPDATE.is_commutative
        assert AccessType.REMOTE_UPDATE.is_commutative

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryAccess(AccessType.LOAD, address=-1)
        with pytest.raises(ValueError):
            MemoryAccess(AccessType.LOAD, address=0, think_instructions=-1)
        with pytest.raises(ValueError):
            MemoryAccess(AccessType.COMMUTATIVE_UPDATE, address=0, op=None)


class TestWorkloadTrace:
    def _trace(self):
        per_core = [
            [MemoryAccess.load(0x0, think=3), MemoryAccess.commutative(0x8, CommutativeOp.ADD_I64, 1)],
            [MemoryAccess.atomic(0x8, CommutativeOp.ADD_I64, 1, think=2)],
        ]
        return WorkloadTrace(name="t", per_core=per_core)

    def test_counts(self):
        trace = self._trace()
        assert trace.n_cores == 2
        assert trace.total_accesses == 3
        assert trace.total_instructions == 3 + 5

    def test_commutative_fraction(self):
        trace = self._trace()
        # two updates out of eight instructions
        assert trace.commutative_fraction() == pytest.approx(2 / 8)

    def test_phase_validation(self):
        trace = self._trace()
        trace.phase_boundaries = [[2, 1]]
        trace.validate()
        trace.phase_boundaries = [[5, 1]]
        with pytest.raises(ValueError):
            trace.validate()
        trace.phase_boundaries = [[2]]
        with pytest.raises(ValueError):
            trace.validate()

    def test_merge_traces(self):
        trace = self._trace()
        merged = merge_traces(trace.per_core)
        assert len(merged) == 3
