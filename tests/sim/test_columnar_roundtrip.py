"""Round-trip and builder-equivalence tests for the columnar trace format.

Two invariants protect the packed representation:

* **Codec exactness** — ``ColumnarTrace.from_workload`` followed by
  ``to_workload`` reproduces every access (``MemoryAccess.__eq__``), the
  phase boundaries, and the metadata, for traces from every workload and
  update style (and for adversarial hand-built records: uint64 bit masks,
  negative deltas, float operands, ``None`` store values).
* **Vectorized-builder equality** — every workload's ``_build_columnar``
  produces arrays bit-equal to packing its object-form ``_build`` output,
  i.e. vectorization changed the construction, not a single record.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.commutative import CommutativeOp
from repro.sim.access import AccessType, MemoryAccess, WorkloadTrace
from repro.sim.columnar import (
    ACCESS_DTYPE,
    ColumnarTrace,
    TraceCodecError,
    pack_accesses,
    unpack_accesses,
)
from repro.workloads import UpdateStyle
from repro.workloads.bfs import BfsWorkload
from repro.workloads.fluidanimate import FluidanimateWorkload
from repro.workloads.histogram import HistogramWorkload
from repro.workloads.pagerank import PageRankWorkload
from repro.workloads.refcount import (
    CountMode,
    DelayedRefcountWorkload,
    ImmediateRefcountWorkload,
    RefcountScheme,
)
from repro.workloads.spmv import SpmvWorkload
from repro.workloads.synthetic import (
    FalseSharingWorkload,
    InterleavedReadUpdateWorkload,
    MixedOpWorkload,
    MultiCounterWorkload,
    ReadOnlyWorkload,
    ScalarReductionWorkload,
    SharedCounterWorkload,
)

UPDATE_STYLES = tuple(UpdateStyle)

#: Factories for every workload family; each call returns a fresh instance
#: (trace builders allocate address regions on first use, so instances are
#: never reused across representations).
WORKLOAD_FACTORIES = {
    "hist": lambda style: HistogramWorkload(
        n_bins=32, n_items=400, update_style=style
    ),
    "hist-skew": lambda style: HistogramWorkload(
        n_bins=32, n_items=400, skew=0.7, update_style=style
    ),
    "spmv": lambda style: SpmvWorkload(
        n_rows=64, n_cols=72, nnz_per_col=4, update_style=style
    ),
    "pgrank": lambda style: PageRankWorkload(
        n_vertices=96, avg_degree=4, n_iterations=2, update_style=style
    ),
    "bfs": lambda style: BfsWorkload(
        n_vertices=160, avg_degree=5, max_levels=4, update_style=style
    ),
    "fluidanimate": lambda style: FluidanimateWorkload(
        grid_x=6, grid_y=20, n_steps=2, update_style=style
    ),
    "shared-counter": lambda style: SharedCounterWorkload(
        updates_per_core=40, update_style=style
    ),
    "multi-counter": lambda style: MultiCounterWorkload(
        n_counters=16, updates_per_core=40, update_style=style
    ),
    "multi-counter-hot": lambda style: MultiCounterWorkload(
        n_counters=16, updates_per_core=40, hot_fraction=0.4, update_style=style
    ),
    "false-sharing": lambda style: FalseSharingWorkload(
        updates_per_core=30, update_style=style
    ),
    "scalar-reduction": lambda style: ScalarReductionWorkload(
        items_per_core=25, update_style=style
    ),
    "interleaved": lambda style: InterleavedReadUpdateWorkload(
        rounds=12, updates_per_read=3, update_style=style
    ),
}

#: Style-less workloads (they fix their own update style or scheme).
FIXED_FACTORIES = {
    "read-only": lambda: ReadOnlyWorkload(reads_per_core=40),
    "mixed-ops": lambda: MixedOpWorkload(updates_per_core=140, switch_every=7),
    "refcount-xadd": lambda: ImmediateRefcountWorkload(
        n_counters=48, updates_per_thread=80, scheme=RefcountScheme.XADD
    ),
    "refcount-coup-high": lambda: ImmediateRefcountWorkload(
        n_counters=48,
        updates_per_thread=80,
        scheme=RefcountScheme.COUP,
        count_mode=CountMode.HIGH,
    ),
    "refcount-snzi": lambda: ImmediateRefcountWorkload(
        n_counters=24, updates_per_thread=50, scheme=RefcountScheme.SNZI
    ),
    "refcount-delayed-coup": lambda: DelayedRefcountWorkload(
        n_counters=128, updates_per_epoch=30, n_epochs=2, scheme=RefcountScheme.COUP
    ),
    "refcount-delayed-refcache": lambda: DelayedRefcountWorkload(
        n_counters=128, updates_per_epoch=30, n_epochs=2, scheme=RefcountScheme.REFCACHE
    ),
}


def _all_cases():
    for name, factory in WORKLOAD_FACTORIES.items():
        for style in UPDATE_STYLES:
            yield f"{name}/{style.value}", (lambda f=factory, s=style: f(s))
    for name, factory in FIXED_FACTORIES.items():
        yield name, factory


CASES = dict(_all_cases())


def _assert_traces_equal(original: WorkloadTrace, restored: WorkloadTrace):
    assert restored.name == original.name
    assert restored.params == original.params
    assert restored.phase_boundaries == original.phase_boundaries
    assert len(restored.per_core) == len(original.per_core)
    for mine, theirs in zip(original.per_core, restored.per_core):
        assert mine == theirs


@pytest.mark.parametrize("case", sorted(CASES))
@pytest.mark.parametrize("n_cores", [1, 3, 6])
def test_pack_unpack_roundtrip_is_exact(case, n_cores):
    trace = CASES[case]().generate(n_cores)
    restored = ColumnarTrace.from_workload(trace).to_workload()
    _assert_traces_equal(trace, restored)


@pytest.mark.parametrize("case", sorted(CASES))
@pytest.mark.parametrize("n_cores", [1, 3, 6])
def test_vectorized_builder_matches_packed_object_builder(case, n_cores):
    """``generate_columnar`` is the packed ``generate``, array-for-array."""
    packed = ColumnarTrace.from_workload(CASES[case]().generate(n_cores))
    vectorized = CASES[case]().generate_columnar(n_cores)
    assert vectorized.name == packed.name
    assert vectorized.params == packed.params
    assert vectorized.phase_boundaries == packed.phase_boundaries
    for core_id, (mine, theirs) in enumerate(
        zip(packed.columns, vectorized.columns)
    ):
        assert np.array_equal(mine, theirs), f"core {core_id} diverged"


def test_roundtrip_random_records():
    """Property-style codec sweep over adversarial hand-built records."""
    rng = np.random.default_rng(7)
    accesses = []
    for _ in range(500):
        kind = rng.integers(0, 5)
        address = int(rng.integers(0, 1 << 48))
        think = int(rng.integers(0, 64))
        if kind == 0:
            accesses.append(
                MemoryAccess.load(address, think=think, size=int(rng.choice([1, 2, 4, 8])))
            )
        elif kind == 1:
            value = [None, int(rng.integers(-(1 << 62), 1 << 62)), float(rng.normal())][
                int(rng.integers(0, 3))
            ]
            accesses.append(MemoryAccess.store(address, value, think=think))
        else:
            op = CommutativeOp(
                str(rng.choice([op.value for op in CommutativeOp]))
            )
            if op in (CommutativeOp.AND_64, CommutativeOp.OR_64, CommutativeOp.XOR_64):
                value = int(rng.integers(0, 1 << 63)) | (1 << 63)  # force uint64 range
            elif op in (CommutativeOp.ADD_F32, CommutativeOp.ADD_F64):
                value = float(rng.normal() * 1e9)
            else:
                value = int(rng.integers(-(1 << 31), 1 << 31))
            ctor = [MemoryAccess.atomic, MemoryAccess.commutative, MemoryAccess.remote_update][
                kind - 2
            ]
            accesses.append(ctor(address, op, value, think=think))
    restored = unpack_accesses(pack_accesses(accesses))
    assert restored == accesses
    # The extreme corners individually: uint64 top bit, int64 extremes,
    # denormal and non-finite floats, None stores.
    corners = [
        MemoryAccess.commutative(64, CommutativeOp.OR_64, 1 << 63),
        MemoryAccess.commutative(64, CommutativeOp.AND_64, (1 << 64) - 1),
        MemoryAccess.commutative(64, CommutativeOp.ADD_I64, -(1 << 63)),
        MemoryAccess.commutative(64, CommutativeOp.ADD_I64, (1 << 63) - 1),
        MemoryAccess.commutative(64, CommutativeOp.ADD_F64, 5e-324),
        MemoryAccess.commutative(64, CommutativeOp.ADD_F64, float("inf")),
        MemoryAccess.store(128, None),
        MemoryAccess.store(128, -0.0),
    ]
    restored = unpack_accesses(pack_accesses(corners))
    assert restored == corners
    # -0.0 must keep its sign bit (== cannot see it).
    assert str(restored[-1].value) == "-0.0"


def test_unrepresentable_values_raise_codec_error():
    with pytest.raises(TraceCodecError):
        pack_accesses([MemoryAccess.store(0, value=(1, 2))])
    with pytest.raises(TraceCodecError):
        pack_accesses([MemoryAccess.commutative(0, CommutativeOp.ADD_I64, 1 << 64)])
    with pytest.raises(TraceCodecError):
        pack_accesses([MemoryAccess.load(0, size=3)])


def test_phase_column_reflects_boundaries():
    workload = DelayedRefcountWorkload(
        n_counters=64, updates_per_epoch=20, n_epochs=2
    )
    trace = workload.generate_columnar(3)
    boundaries = np.asarray(trace.phase_boundaries)
    for core_id, column in enumerate(trace.columns):
        phases = column["phase"]
        for access_index in range(len(column)):
            expected = int(np.sum(boundaries[:, core_id] <= access_index))
            assert phases[access_index] == expected


def test_npz_roundtrip(tmp_path):
    trace = HistogramWorkload(n_bins=16, n_items=200).generate_columnar(3)
    path = str(tmp_path / "trace.npz")
    trace.save_npz(path, extra_meta={"origin": "test"})
    loaded, extra = ColumnarTrace.load_npz_with_meta(path)
    assert loaded == trace
    assert extra == {"origin": "test"}
    assert ColumnarTrace.load_npz(path) == trace


def test_empty_trace_roundtrip():
    trace = WorkloadTrace(name="empty", per_core=[[], []])
    packed = ColumnarTrace.from_workload(trace)
    assert packed.total_accesses == 0
    assert all(column.dtype == ACCESS_DTYPE for column in packed.columns)
    restored = packed.to_workload()
    _assert_traces_equal(trace, restored)
