"""Golden-output equivalence test for the simulator hot path.

The timing simulator's hot path is heavily optimized (private-hit fast path,
scalar latency accumulation, precomputed config tables).  These optimizations
must never change simulation results: this test pins exact
:class:`SimulationResult` fingerprints — run cycles, traffic bytes, reduction
counts, per-core statistics, and the functional memory image — for a matrix of
small mixed workloads across all three protocol engines (MESI, COUP/MEUSI,
RMO).  The golden data in ``golden_equivalence.json`` was captured from the
unoptimized reference engines; any divergence is a correctness regression, not
a tolerance issue, so comparisons are bit-exact.

Regenerate the golden file (only after an *intentional* modelling change)::

    PYTHONPATH=src python tests/sim/test_golden_equivalence.py --regen
"""

from __future__ import annotations

import json
import os

import pytest

from repro.sim.columnar import ColumnarTrace
from repro.sim.config import small_test_config
from repro.sim.simulator import simulate
from repro.workloads.base import UpdateStyle
from repro.workloads.bfs import BfsWorkload
from repro.workloads.fluidanimate import FluidanimateWorkload
from repro.workloads.histogram import HistogramWorkload
from repro.workloads.pagerank import PageRankWorkload
from repro.workloads.spmv import SpmvWorkload
from repro.workloads.synthetic import (
    FalseSharingWorkload,
    InterleavedReadUpdateWorkload,
    MixedOpWorkload,
    MultiCounterWorkload,
    ReadOnlyWorkload,
    ScalarReductionWorkload,
    SharedCounterWorkload,
)

GOLDEN_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "golden_equivalence.json")

#: Two chips of four cores each, so cross-chip invalidations, off-chip
#: traffic, and hierarchical reductions are all exercised.
N_CORES = 8

PROTOCOLS = ("MESI", "COUP", "RMO")


def _workload_cases():
    """Deterministic small workloads covering every access type and path."""
    return {
        "shared-counter-commutative": SharedCounterWorkload(
            updates_per_core=200, update_style=UpdateStyle.COMMUTATIVE
        ),
        "shared-counter-atomic": SharedCounterWorkload(
            updates_per_core=200, update_style=UpdateStyle.ATOMIC
        ),
        "shared-counter-remote": SharedCounterWorkload(
            updates_per_core=200, update_style=UpdateStyle.REMOTE
        ),
        "multi-counter-hot": MultiCounterWorkload(
            n_counters=32, updates_per_core=200, hot_fraction=0.3
        ),
        "false-sharing": FalseSharingWorkload(updates_per_core=150),
        "false-sharing-stores": FalseSharingWorkload(
            updates_per_core=150, update_style=UpdateStyle.PRIVATE_STORE
        ),
        "interleaved": InterleavedReadUpdateWorkload(rounds=30, updates_per_read=4),
        "mixed-ops": MixedOpWorkload(updates_per_core=120, switch_every=7),
        "read-only": ReadOnlyWorkload(reads_per_core=300),
        "scalar-reduction": ScalarReductionWorkload(items_per_core=400),
    }


def _fingerprint(result) -> dict:
    """Exact, JSON-serialisable fingerprint of one simulation run."""
    return {
        "protocol": result.protocol,
        "workload": result.workload,
        "n_cores": result.n_cores,
        "run_cycles": result.run_cycles,
        "offchip_bytes": result.offchip_bytes,
        "onchip_bytes": result.onchip_bytes,
        "reductions": result.reductions,
        "partial_reductions": result.partial_reductions,
        "invalidations": result.invalidations,
        "downgrades": result.downgrades,
        "amat_breakdown": result.amat_breakdown(),
        "core_stats": [
            {
                "finish_time": stats.finish_time,
                "memory_cycles": stats.memory_cycles,
                "compute_cycles": stats.compute_cycles,
                "accesses": stats.accesses,
                "loads": stats.loads,
                "stores": stats.stores,
                "atomics": stats.atomics,
                "commutative_updates": stats.commutative_updates,
                "remote_updates": stats.remote_updates,
                "l1_hits": stats.l1_hits,
                "latency": stats.latency.as_dict(include_l1=True),
            }
            for stats in result.core_stats
        ],
        "final_values": {str(addr): value for addr, value in sorted(result.final_values.items())},
    }


def compute_fingerprints() -> dict:
    fingerprints = {}
    for case_name, workload in _workload_cases().items():
        trace = workload.generate(N_CORES)
        for protocol in PROTOCOLS:
            config = small_test_config(N_CORES)
            result = simulate(trace, config, protocol, track_values=True)
            fingerprints[f"{case_name}/{protocol}"] = _fingerprint(result)
    return fingerprints


def _load_golden() -> dict:
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def current_fingerprints() -> dict:
    return compute_fingerprints()


@pytest.mark.parametrize(
    "case_key",
    [f"{case}/{protocol}" for case in _workload_cases() for protocol in PROTOCOLS],
)
def test_simulation_results_match_golden(case_key, current_fingerprints):
    golden = _load_golden()
    assert case_key in golden, f"golden data missing {case_key}; regenerate with --regen"
    # Round-trip through JSON so float representation matches the stored file
    # exactly (json preserves doubles bit-for-bit via repr round-tripping).
    current = json.loads(json.dumps(current_fingerprints[case_key]))
    assert current == golden[case_key]


def test_golden_covers_all_protocols():
    golden = _load_golden()
    for protocol in PROTOCOLS:
        assert any(key.endswith(f"/{protocol}") for key in golden)


# ---------------------------------------------------------------------------
# Columnar-path equivalence
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def columnar_fingerprints() -> dict:
    """Fingerprints of the golden cases simulated via the columnar path."""
    fingerprints = {}
    for case_name, workload in _workload_cases().items():
        trace = ColumnarTrace.from_workload(workload.generate(N_CORES))
        for protocol in PROTOCOLS:
            config = small_test_config(N_CORES)
            result = simulate(trace, config, protocol, track_values=True)
            fingerprints[f"{case_name}/{protocol}"] = _fingerprint(result)
    return fingerprints


@pytest.mark.parametrize(
    "case_key",
    [f"{case}/{protocol}" for case in _workload_cases() for protocol in PROTOCOLS],
)
def test_columnar_simulation_matches_golden(case_key, columnar_fingerprints):
    """The columnar fast path must reproduce the pinned golden results."""
    golden = _load_golden()
    current = json.loads(json.dumps(columnar_fingerprints[case_key]))
    assert current == golden[case_key]


#: Paper-benchmark grid pinning object-vs-columnar equality per
#: protocol x workload x update style x core count (ISSUE 3 acceptance).
def _paper_grid_cases():
    factories = {
        "hist": lambda style: HistogramWorkload(n_bins=32, n_items=500, update_style=style),
        "spmv": lambda style: SpmvWorkload(n_rows=64, n_cols=64, nnz_per_col=4, update_style=style),
        "pgrank": lambda style: PageRankWorkload(
            n_vertices=72, avg_degree=4, n_iterations=2, update_style=style
        ),
        "bfs": lambda style: BfsWorkload(n_vertices=128, avg_degree=5, max_levels=3, update_style=style),
        "fluidanimate": lambda style: FluidanimateWorkload(
            grid_x=6, grid_y=16, n_steps=1, update_style=style
        ),
    }
    styles = (UpdateStyle.ATOMIC, UpdateStyle.COMMUTATIVE, UpdateStyle.REMOTE)
    return [
        (name, style, n_cores)
        for name in factories
        for style in styles
        for n_cores in (2, 8)
    ], factories


_PAPER_GRID, _PAPER_FACTORIES = _paper_grid_cases()


@pytest.mark.parametrize(
    "workload_name,style,n_cores",
    _PAPER_GRID,
    ids=[f"{n}/{s.value}/{c}" for n, s, c in _PAPER_GRID],
)
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_columnar_equals_object_on_paper_grid(workload_name, style, n_cores, protocol):
    """Simulating the columnar form must be bit-identical to the object form."""
    factory = _PAPER_FACTORIES[workload_name]
    object_trace = factory(style).generate(n_cores)
    columnar_trace = factory(style).generate_columnar(n_cores)
    config = small_test_config(n_cores)
    object_result = simulate(object_trace, config, protocol, track_values=True)
    config = small_test_config(n_cores)
    columnar_result = simulate(columnar_trace, config, protocol, track_values=True)
    assert _fingerprint(columnar_result) == _fingerprint(object_result)


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--regen", action="store_true", help="rewrite the golden file")
    args = parser.parse_args()
    if not args.regen:
        parser.error("pass --regen to rewrite the golden file")
    fingerprints = compute_fingerprints()
    with open(GOLDEN_PATH, "w") as handle:
        json.dump(fingerprints, handle, indent=1, sort_keys=True)
    print(f"wrote {GOLDEN_PATH} ({len(fingerprints)} cases)")


if __name__ == "__main__":
    main()
