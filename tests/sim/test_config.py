"""Tests for the Table 1 machine configuration."""

from __future__ import annotations

import pytest

from repro.sim.config import (
    CacheConfig,
    ReductionUnitConfig,
    SystemConfig,
    small_test_config,
    table1_config,
)


class TestTable1Config:
    """Check the reproduced machine against the paper's Table 1."""

    def test_cache_sizes_and_latencies(self):
        config = table1_config(128)
        assert config.l1d.size_bytes == 32 * 1024
        assert config.l1d.ways == 8
        assert config.l1d.latency == 4
        assert config.l2.size_bytes == 256 * 1024
        assert config.l2.latency == 7
        assert config.l3.size_bytes == 32 * 1024 * 1024
        assert config.l3.banks == 8
        assert config.l3.latency == 27
        assert config.l4.size_bytes == 128 * 1024 * 1024
        assert config.l4.latency == 35
        assert config.line_bytes == 64

    def test_offchip_link_latency(self):
        assert table1_config(128).network.offchip_link_latency == 40

    def test_chip_scaling_with_core_count(self):
        # The paper scales processor and L4 chips with the core count.
        assert table1_config(1).n_chips == 1
        assert table1_config(16).n_chips == 1
        assert table1_config(32).n_chips == 2
        assert table1_config(96).n_chips == 6
        assert table1_config(128).n_chips == 8
        assert table1_config(128).n_l4_chips == 8

    def test_cores_per_chip(self):
        config = table1_config(128)
        assert config.cores_per_chip == 16
        assert config.chip_of_core(0) == 0
        assert config.chip_of_core(17) == 1
        assert config.chip_of_core(127) == 7
        assert list(config.cores_on_chip(7)) == list(range(112, 128))

    def test_reduction_unit_default_and_slow_variant(self):
        fast = ReductionUnitConfig.fast()
        slow = ReductionUnitConfig.slow()
        assert fast.lane_bits == 256 and fast.cycles_per_line == 2
        assert slow.lane_bits == 64 and slow.cycles_per_line == 16
        config = table1_config(64, reduction_unit=slow)
        assert config.reduction_unit == slow

    def test_line_address_mapping(self):
        config = table1_config(16)
        assert config.line_address(0) == 0
        assert config.line_address(63) == 0
        assert config.line_address(64) == 1

    def test_with_cores_copies(self):
        config = table1_config(16)
        bigger = config.with_cores(64)
        assert bigger.n_cores == 64
        assert config.n_cores == 16

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(n_cores=0)
        with pytest.raises(ValueError):
            table1_config(16).chip_of_core(16)


class TestSmallTestConfig:
    def test_small_config_is_small(self):
        config = small_test_config(4)
        assert config.n_cores == 4
        assert config.l1d.size_bytes < table1_config(4).l1d.size_bytes
