"""Tests for the multicore trace-driven simulator."""

from __future__ import annotations

import pytest

from repro.core.commutative import CommutativeOp
from repro.sim.access import MemoryAccess, WorkloadTrace
from repro.sim.config import small_test_config, table1_config
from repro.sim.simulator import (
    PROTOCOLS,
    MulticoreSimulator,
    compare_protocols,
    make_protocol,
    simulate,
)
from repro.workloads import SharedCounterWorkload, UpdateStyle


class TestProtocolRegistry:
    def test_known_protocols(self):
        assert {"MESI", "COUP", "MEUSI", "RMO"} <= set(PROTOCOLS)

    def test_make_protocol_case_insensitive(self):
        config = small_test_config(2)
        assert make_protocol("coup", config).name == "COUP"
        assert make_protocol("mesi", config).name == "MESI"

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            make_protocol("MOESI", small_test_config(2))


class TestSimulatorBasics:
    def test_empty_workload(self):
        config = small_test_config(2)
        workload = WorkloadTrace(name="empty", per_core=[[], []])
        result = simulate(workload, config, "MESI")
        assert result.run_cycles == 0
        assert result.total_accesses == 0

    def test_single_core_latency_accumulates(self):
        config = small_test_config(1)
        trace = [MemoryAccess.load(i * 64, think=10) for i in range(5)]
        workload = WorkloadTrace(name="loads", per_core=[trace])
        result = simulate(workload, config, "MESI")
        assert result.total_accesses == 5
        # Run time covers think time plus per-access memory latency.
        think_cycles = 5 * 10 * config.core.cycles_per_instruction
        assert result.run_cycles > think_cycles

    def test_workload_larger_than_machine_rejected(self):
        config = small_test_config(2)
        workload = WorkloadTrace(name="too-big", per_core=[[], [], []])
        with pytest.raises(ValueError):
            simulate(workload, config, "MESI")

    def test_run_cycles_is_max_core_finish_time(self):
        config = small_test_config(2)
        long_trace = [MemoryAccess.load(i * 64, think=50) for i in range(20)]
        short_trace = [MemoryAccess.load(0x5000, think=1)]
        workload = WorkloadTrace(name="skewed", per_core=[long_trace, short_trace])
        result = simulate(workload, config, "MESI")
        finish_times = [stats.finish_time for stats in result.core_stats]
        assert result.run_cycles == pytest.approx(max(finish_times))
        assert finish_times[0] > finish_times[1]

    def test_atomic_overhead_charged_by_core_model(self):
        config = small_test_config(1)
        atomic_wl = WorkloadTrace(
            name="a", per_core=[[MemoryAccess.atomic(0x0, CommutativeOp.ADD_I64, 1)]]
        )
        store_wl = WorkloadTrace(name="s", per_core=[[MemoryAccess.store(0x0, 1)]])
        atomic_run = simulate(atomic_wl, config, "MESI")
        store_run = simulate(store_wl, config, "MESI")
        assert atomic_run.run_cycles > store_run.run_cycles


class TestPhaseBarriers:
    def test_barrier_synchronises_cores(self):
        config = small_test_config(2)
        # Core 0 has lots of phase-0 work; core 1 almost none.  Core 1's
        # phase-1 access cannot start before core 0 reaches the barrier.
        core0 = [MemoryAccess.load(i * 64, think=100) for i in range(10)]
        core1 = [MemoryAccess.load(0x8000, think=1)]
        core0_phase1 = [MemoryAccess.load(0x9000, think=1)]
        core1_phase1 = [MemoryAccess.load(0xA000, think=1)]
        workload = WorkloadTrace(
            name="barrier",
            per_core=[core0 + core0_phase1, core1 + core1_phase1],
            phase_boundaries=[[len(core0), len(core1)]],
        )
        result = simulate(workload, config, "MESI")
        # Both cores finish after the barrier, so finish times are close.
        finish = [stats.finish_time for stats in result.core_stats]
        assert abs(finish[0] - finish[1]) < 0.5 * max(finish)

    def test_multiple_phases(self):
        config = small_test_config(2)
        per_core = [[], []]
        boundaries = []
        for phase in range(3):
            for core in range(2):
                per_core[core].append(MemoryAccess.load(0x1000 * (phase + 1) + 0x40 * core, think=5))
            boundaries.append([len(per_core[0]), len(per_core[1])])
        workload = WorkloadTrace(name="phases", per_core=per_core, phase_boundaries=boundaries)
        result = simulate(workload, config, "MESI")
        assert result.total_accesses == 6


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("protocol", ["MESI", "COUP", "RMO"])
    def test_shared_counter_final_value(self, protocol):
        config = small_test_config(4)
        style = {
            "MESI": UpdateStyle.ATOMIC,
            "COUP": UpdateStyle.COMMUTATIVE,
            "RMO": UpdateStyle.REMOTE,
        }[protocol]
        workload_gen = SharedCounterWorkload(updates_per_core=100, update_style=style)
        workload = workload_gen.generate(4)
        result = simulate(workload, config, protocol)
        assert result.final_values[workload_gen.counter_address] == 400

    def test_compare_protocols_runs_all(self):
        config = small_test_config(4)

        def factory(n_cores):
            return SharedCounterWorkload(updates_per_core=50).generate(n_cores)

        results = compare_protocols(factory, config, protocols=("MESI", "COUP", "RMO"))
        assert set(results) == {"MESI", "COUP", "RMO"}
        assert all(r.total_accesses > 0 for r in results.values())


class TestCoupBeatsBaselinesUnderContention:
    def test_coup_faster_than_mesi_on_contended_counter(self):
        config = table1_config(16)
        coup_wl = SharedCounterWorkload(updates_per_core=200, update_style=UpdateStyle.COMMUTATIVE)
        mesi_wl = SharedCounterWorkload(updates_per_core=200, update_style=UpdateStyle.ATOMIC)
        coup = simulate(coup_wl.generate(16), config, "COUP")
        mesi = simulate(mesi_wl.generate(16), config, "MESI")
        assert coup.speedup_over(mesi) > 2.0

    def test_coup_reduces_invalidations(self):
        config = table1_config(16)
        coup = simulate(
            SharedCounterWorkload(updates_per_core=200).generate(16), config, "COUP"
        )
        mesi = simulate(
            SharedCounterWorkload(
                updates_per_core=200, update_style=UpdateStyle.ATOMIC
            ).generate(16),
            config,
            "MESI",
        )
        assert coup.invalidations < mesi.invalidations

    def test_coup_matches_mesi_on_read_only_data(self):
        from repro.workloads import ReadOnlyWorkload

        config = small_test_config(4)
        workload = ReadOnlyWorkload(n_elements=64, reads_per_core=200)
        mesi = simulate(workload.generate(4), config, "MESI")
        coup = simulate(workload.generate(4), config, "COUP")
        assert coup.run_cycles == pytest.approx(mesi.run_cycles, rel=1e-6)


class TestStatisticsPlumbing:
    def test_amat_breakdown_components_sum_to_amat(self):
        config = table1_config(16)
        workload = SharedCounterWorkload(updates_per_core=100, update_style=UpdateStyle.ATOMIC)
        result = simulate(workload.generate(16), config, "MESI")
        breakdown = result.amat_breakdown()
        l1_latency = sum(s.latency.l1 for s in result.core_stats) / result.total_accesses
        assert sum(breakdown.values()) + l1_latency == pytest.approx(result.amat, rel=1e-6)

    def test_summary_fields(self):
        config = small_test_config(2)
        workload = SharedCounterWorkload(updates_per_core=10).generate(2)
        result = simulate(workload, config, "COUP")
        summary = result.summary()
        assert summary["protocol"] == "COUP"
        assert summary["n_cores"] == 2
        assert summary["run_cycles"] > 0


class TestCoreSelectionTieBreak:
    """Equal core clocks must always resolve in ascending core-id order.

    Every heap entry is an explicit ``(clock, core_id)`` pair, so ties on
    the clock break deterministically by core id — on both the object and
    the columnar simulation path.  This pins the interleaving the sweep
    engine's shared traces (and the golden results) depend on.
    """

    N_CORES = 5
    ACCESSES_PER_CORE = 4

    def _symmetric_workload(self) -> WorkloadTrace:
        # Every core issues the same number of private, zero-think loads
        # with identical latencies: after each access all clocks are equal,
        # so every scheduling decision is a pure tie.
        per_core = [
            [
                MemoryAccess.load((core_id * 64 + i * self.N_CORES * 64) + 0x1000_0000)
                for i in range(self.ACCESSES_PER_CORE)
            ]
            for core_id in range(self.N_CORES)
        ]
        return WorkloadTrace(name="tie-break", per_core=per_core)

    def _recorded_order(self, trace) -> list:
        config = small_test_config(self.N_CORES)
        engine = make_protocol("RMO", config)
        # Force the access_hot path so every access reaches the recorder
        # (the inline fast path would resolve private hits silently).
        engine.SUPPORTS_INLINE_FAST_PATH = False
        order = []
        original = engine.access_hot

        def recording_access_hot(core_id, access, now):
            order.append(core_id)
            return original(core_id, access, now)

        engine.access_hot = recording_access_hot
        MulticoreSimulator(config, engine).run(trace)
        return order

    def test_equal_clocks_pop_in_core_id_order(self):
        order = self._recorded_order(self._symmetric_workload())
        expected = list(range(self.N_CORES)) * self.ACCESSES_PER_CORE
        assert order == expected

    def test_columnar_path_interleaves_identically(self):
        from repro.sim.columnar import ColumnarTrace

        workload = self._symmetric_workload()
        object_order = self._recorded_order(workload)
        columnar_order = self._recorded_order(ColumnarTrace.from_workload(workload))
        assert columnar_order == object_order
        assert columnar_order == list(range(self.N_CORES)) * self.ACCESSES_PER_CORE
