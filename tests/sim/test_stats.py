"""Tests for statistics structures (AMAT breakdowns, speedups, summaries)."""

from __future__ import annotations

import pytest

import json

from repro.sim.stats import (
    AMAT_COMPONENTS,
    CoreStats,
    LatencyBreakdown,
    LinkStats,
    SimulationResult,
    speedup_curve,
)


def make_result(run_cycles: float, protocol: str = "MESI", latency=None) -> SimulationResult:
    stats = CoreStats(core_id=0, accesses=10, finish_time=run_cycles)
    if latency is not None:
        stats.latency = latency
    return SimulationResult(
        protocol=protocol,
        workload="w",
        n_cores=1,
        core_stats=[stats],
        run_cycles=run_cycles,
        offchip_bytes=100,
        onchip_bytes=200,
    )


class TestLatencyBreakdown:
    def test_total_sums_components(self):
        breakdown = LatencyBreakdown(l1=1, l2=2, l3=3, offchip_network=4, l4=5, l4_invalidations=6, main_memory=7, serialization=8)
        assert breakdown.total == 36

    def test_add_and_scale(self):
        a = LatencyBreakdown(l2=2.0, l3=4.0)
        b = LatencyBreakdown(l2=1.0, main_memory=3.0)
        a.add(b)
        assert a.l2 == 3.0
        scaled = a.scaled(0.5)
        assert scaled.l2 == 1.5
        assert a.l2 == 3.0  # original untouched

    def test_as_dict_folds_serialization_into_invalidations(self):
        breakdown = LatencyBreakdown(l4_invalidations=5.0, serialization=2.5)
        as_dict = breakdown.as_dict()
        assert as_dict["l4_invalidations"] == 7.5
        assert set(as_dict) == set(AMAT_COMPONENTS)


class TestSimulationResult:
    def test_speedup_over(self):
        fast = make_result(100.0, "COUP")
        slow = make_result(250.0, "MESI")
        assert fast.speedup_over(slow) == pytest.approx(2.5)
        assert slow.speedup_over(fast) == pytest.approx(0.4)

    def test_amat_and_breakdown(self):
        latency = LatencyBreakdown(l2=20.0, main_memory=30.0)
        result = make_result(100.0, latency=latency)
        assert result.amat == pytest.approx(5.0)
        breakdown = result.amat_breakdown()
        assert breakdown["l2"] == pytest.approx(2.0)
        assert breakdown["main_memory"] == pytest.approx(3.0)

    def test_empty_result_amat_zero(self):
        result = SimulationResult(
            protocol="MESI",
            workload="w",
            n_cores=1,
            core_stats=[CoreStats(core_id=0)],
            run_cycles=0.0,
            offchip_bytes=0,
            onchip_bytes=0,
        )
        assert result.amat == 0.0
        assert all(v == 0.0 for v in result.amat_breakdown().values())

    def test_speedup_curve(self):
        baseline = make_result(1000.0)
        runs = [make_result(1000.0), make_result(200.0, "COUP")]
        rows = speedup_curve(baseline, runs)
        assert rows[0]["speedup"] == pytest.approx(1.0)
        assert rows[1]["speedup"] == pytest.approx(5.0)

    def test_zero_duration_speedup_rejected(self):
        broken = make_result(0.0)
        with pytest.raises(ValueError):
            broken.speedup_over(make_result(10.0))


def make_link_stats() -> LinkStats:
    return LinkStats(
        topology="ring",
        epoch_cycles=1000.0,
        link_bandwidth_bytes_per_cycle=16.0,
        links={
            "s0->s1": {"bytes": 4096.0, "utilization": 0.256},
            "s1->s0": {"bytes": 1024.0, "utilization": 0.064},
        },
        bank_requests={"s0.b0": 17, "s1.b3": 4},
        max_link_utilization=0.256,
        mean_link_utilization=0.16,
        surcharge_cycles=42.5,
        offchip_transfers=80,
    )


class TestLinkStats:
    def test_to_jsonable_key_order_matches_legacy_dict(self):
        # The serialized form predates the dataclass; its key order is a
        # contract (canonical JSON re-serialization depends on it only via
        # sort_keys, but diffs of raw records depend on it directly).
        jsonable = make_link_stats().to_jsonable()
        assert list(jsonable) == [
            "topology",
            "epoch_cycles",
            "link_bandwidth_bytes_per_cycle",
            "links",
            "bank_requests",
            "max_link_utilization",
            "mean_link_utilization",
            "surcharge_cycles",
            "offchip_transfers",
        ]

    def test_roundtrip_is_bit_identical(self):
        stats = make_link_stats()
        wire = json.dumps(stats.to_jsonable(), sort_keys=True)
        rebuilt = LinkStats.from_jsonable(json.loads(wire))
        assert rebuilt == stats
        assert json.dumps(rebuilt.to_jsonable(), sort_keys=True) == wire

    def test_projections_copy_mutable_fields(self):
        stats = make_link_stats()
        jsonable = stats.to_jsonable()
        jsonable["links"]["s0->s1"]["bytes"] = 0.0
        jsonable["bank_requests"]["s0.b0"] = 0
        assert stats.links["s0->s1"]["bytes"] == 4096.0
        assert stats.bank_requests["s0.b0"] == 17


class TestResultRoundTrip:
    def make_full_result(self) -> SimulationResult:
        """A result with every optional field populated."""
        result = make_result(512.0, "COUP", latency=LatencyBreakdown(l2=3.5, l4=1.25))
        result.reductions = 9
        result.partial_reductions = 2
        result.invalidations = 31
        result.downgrades = 7
        result.final_values = {0x40: 123, 0x08: -5}
        result.params = {"workload": "shared-counter", "updates_per_core": 200}
        result.bytes_by_type = {"GETS": 640, "PUTX": 128}
        result.link_stats = make_link_stats()
        return result

    def test_all_optional_fields_roundtrip(self):
        result = self.make_full_result()
        wire = json.dumps(result.to_jsonable(), sort_keys=True)
        rebuilt = SimulationResult.from_jsonable(json.loads(wire))
        assert rebuilt == result
        assert isinstance(rebuilt.link_stats, LinkStats)
        assert json.dumps(rebuilt.to_jsonable(), sort_keys=True) == wire

    def test_final_values_serialized_sorted_by_address(self):
        jsonable = self.make_full_result().to_jsonable()
        assert jsonable["final_values"] == [[0x08, -5], [0x40, 123]]

    def test_absent_optionals_stay_none(self):
        result = make_result(100.0)
        rebuilt = SimulationResult.from_jsonable(
            json.loads(json.dumps(result.to_jsonable(), sort_keys=True))
        )
        assert rebuilt.link_stats is None
        assert rebuilt.final_values is None
        assert rebuilt.bytes_by_type is None
        assert rebuilt == result

    def test_summary_reads_link_stats_fields(self):
        summary = self.make_full_result().summary()
        assert summary["max_link_utilization"] == 0.256
        assert summary["mean_link_utilization"] == 0.16
        assert summary["contention_surcharge_cycles"] == 42.5


class TestCoreModel:
    def test_core_timing_model(self):
        from repro.core.commutative import CommutativeOp
        from repro.sim.access import MemoryAccess
        from repro.sim.config import CoreConfig
        from repro.sim.core_model import CoreTimingModel

        model = CoreTimingModel(CoreConfig())
        load = MemoryAccess.load(0x0, think=10)
        atomic = MemoryAccess.atomic(0x0, CommutativeOp.ADD_I64, 1)
        commutative = MemoryAccess.commutative(0x0, CommutativeOp.ADD_I64, 1)
        assert model.think_cycles(load) == 5.0
        assert model.issue_overhead(load) == 0.0
        assert model.issue_overhead(atomic) == 12.0
        assert model.issue_overhead(commutative) == 4.0
        assert model.issue_overhead(atomic) > model.issue_overhead(commutative)
        assert model.cycles_for(load, memory_latency=40.0) == 45.0
