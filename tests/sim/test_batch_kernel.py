"""Batched-kernel equivalence: batch-boundary grids and fallback paths.

The batched columnar kernel (:mod:`repro.sim.kernel`) must be bit-identical
to the scalar columnar loop for every chunking of the trace: window edges,
single-access windows, and windows longer than the trace all exercise
different scheduling interleavings of hit-run application and boundary
accesses.  ``SimulationResult.to_jsonable()`` is compared verbatim (it
covers run cycles, per-core statistics, traffic, and the functional memory
image), per the ISSUE 5 acceptance criteria.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.hierarchy.cache import (
    STATE_EXCLUSIVE,
    STATE_MODIFIED,
    TagArray,
    UOP_NONE,
)
from repro.sim.columnar import ColumnarTrace
from repro.sim.config import small_test_config
from repro.sim.kernel import BatchedKernel, batch_size, kernel_mode
from repro.sim.simulator import MulticoreSimulator, make_protocol, simulate
from repro.workloads.base import UpdateStyle
from repro.workloads.histogram import HistogramWorkload
from repro.workloads.synthetic import (
    MultiCounterWorkload,
    ScalarReductionWorkload,
    SharedCounterWorkload,
)

N_CORES = 8

PROTOCOLS = ("MESI", "COUP", "RMO")

#: At least three workloads spanning load/store/atomic/commutative/remote
#: traffic, phase barriers (scalar reduction), and U-state buffering.
WORKLOADS = {
    "hist": lambda: HistogramWorkload(
        n_bins=32, n_items=400, update_style=UpdateStyle.COMMUTATIVE
    ),
    "multi-counter": lambda: MultiCounterWorkload(
        n_counters=32, updates_per_core=150, hot_fraction=0.3
    ),
    "scalar-reduction": lambda: ScalarReductionWorkload(items_per_core=200),
    "shared-counter-remote": lambda: SharedCounterWorkload(
        updates_per_core=120, update_style=UpdateStyle.REMOTE
    ),
}


def _simulate(trace, protocol, monkeypatch, mode, chunk=None):
    monkeypatch.setenv("REPRO_SIM_KERNEL", mode)
    if chunk is None:
        monkeypatch.delenv("REPRO_BATCH_SIZE", raising=False)
    else:
        monkeypatch.setenv("REPRO_BATCH_SIZE", str(chunk))
    config = small_test_config(N_CORES)
    return simulate(trace, config, protocol, track_values=True)


def _columnar(factory) -> ColumnarTrace:
    return factory().generate_columnar(N_CORES)


@pytest.fixture(scope="module")
def traces():
    return {name: _columnar(factory) for name, factory in WORKLOADS.items()}


@pytest.fixture(scope="module")
def scalar_results(traces):
    import os

    previous = os.environ.get("REPRO_SIM_KERNEL")
    os.environ["REPRO_SIM_KERNEL"] = "scalar"
    try:
        results = {}
        for name, trace in traces.items():
            for protocol in PROTOCOLS:
                config = small_test_config(N_CORES)
                results[(name, protocol)] = simulate(
                    trace, config, protocol, track_values=True
                ).to_jsonable()
        return results
    finally:
        if previous is None:
            del os.environ["REPRO_SIM_KERNEL"]
        else:
            os.environ["REPRO_SIM_KERNEL"] = previous


def _chunk_sizes(trace: ColumnarTrace):
    """Chunk sizes 1, 7, exact trace length, and trace length + 1."""
    trace_len = max(len(column) for column in trace.columns)
    return (1, 7, trace_len, trace_len + 1)


@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_batched_bit_identical_across_chunk_sizes(
    workload_name, protocol, traces, scalar_results, monkeypatch
):
    """Forced-batch runs match the scalar path for every chunk boundary."""
    trace = traces[workload_name]
    reference = scalar_results[(workload_name, protocol)]
    for chunk in _chunk_sizes(trace):
        result = _simulate(trace, protocol, monkeypatch, "batch", chunk=chunk)
        assert result.to_jsonable() == reference, (
            f"{workload_name}/{protocol} diverges at REPRO_BATCH_SIZE={chunk}"
        )


@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_auto_mode_bit_identical(
    workload_name, protocol, traces, scalar_results, monkeypatch
):
    """The default auto mode (bail-out and re-entry included) matches too."""
    trace = traces[workload_name]
    result = _simulate(trace, protocol, monkeypatch, "auto")
    assert result.to_jsonable() == scalar_results[(workload_name, protocol)]


def test_non_dyadic_config_uses_fold_pipeline(monkeypatch):
    """A non-dyadic CPI forces the sequential-fold path; results still match."""
    config = small_test_config(4)
    config = dataclasses.replace(
        config, core=dataclasses.replace(config.core, cycles_per_instruction=0.3)
    )
    trace = HistogramWorkload(
        n_bins=16, n_items=200, update_style=UpdateStyle.COMMUTATIVE
    ).generate_columnar(4)

    monkeypatch.setenv("REPRO_SIM_KERNEL", "scalar")
    reference = simulate(trace, config, "COUP", track_values=True)

    monkeypatch.setenv("REPRO_SIM_KERNEL", "batch")
    engine = make_protocol("COUP", config, track_values=True)
    simulator = MulticoreSimulator(config, engine, track_values=True)
    kernel = BatchedKernel(simulator, trace, force=True)
    assert not kernel._exact  # 0.3 is not a dyadic rational
    batched = simulator.run(trace)
    assert batched.to_jsonable() == reference.to_jsonable()


def test_kernel_bails_to_scalar_and_results_match(monkeypatch):
    """A hand-forced bail-out mid-run resumes the scalar loop exactly."""
    trace = _columnar(WORKLOADS["hist"])
    config = small_test_config(N_CORES)
    monkeypatch.setenv("REPRO_SIM_KERNEL", "scalar")
    reference = simulate(trace, config, "MESI", track_values=True)

    # Group retirement off: a productive merge call vindicates the bail
    # interval (by design), which would defeat the hand-forced failure below;
    # this test exercises the boundary path's handoff machinery.
    monkeypatch.setenv("REPRO_SLOW_BATCH", "off")
    engine = make_protocol("MESI", config, track_values=True)
    simulator = MulticoreSimulator(config, engine, track_values=True)
    kernel = BatchedKernel(simulator, trace)
    # Make the very first probation check fail unconditionally.
    kernel._bail_next = 1
    kernel._bail_time_mark = -1e9
    kernel._bail_strikes = 10**9
    handoff = kernel.run()
    assert handoff is not None, "kernel did not bail"
    result = simulator._run_columnar_scalar(trace, resume=handoff)
    assert result.to_jsonable() == reference.to_jsonable()


def test_scalar_reenters_kernel_on_hit_streak(monkeypatch):
    """The scalar loop hands hot stretches back to the kernel (and matches)."""
    import repro.sim.simulator as sim_module

    trace = SharedCounterWorkload(
        updates_per_core=3000, update_style=UpdateStyle.COMMUTATIVE
    ).generate_columnar(4)
    config = small_test_config(4)
    monkeypatch.setenv("REPRO_SIM_KERNEL", "scalar")
    reference = simulate(trace, config, "COUP", track_values=True)

    # Shrink the streak threshold so re-entry definitely triggers, and make
    # the kernel bail instantly so the run alternates several times.
    monkeypatch.setattr(sim_module, "REENTER_STREAK", 64)
    monkeypatch.setenv("REPRO_SIM_KERNEL", "auto")
    import repro.sim.kernel as kernel_module

    monkeypatch.setattr(kernel_module, "BAIL_INTERVAL", 4)
    monkeypatch.setattr(kernel_module, "BAIL_SCALAR_HIT_S", 0.0)
    monkeypatch.setattr(kernel_module, "BAIL_SCALAR_SLOW_S", 0.0)
    result = simulate(trace, config, "COUP", track_values=True)
    assert result.to_jsonable() == reference.to_jsonable()


def test_env_knob_parsing(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_KERNEL", "BATCH")
    assert kernel_mode() == "batch"
    monkeypatch.setenv("REPRO_SIM_KERNEL", "bogus")
    assert kernel_mode() == "auto"
    monkeypatch.delenv("REPRO_SIM_KERNEL", raising=False)
    assert kernel_mode() == "auto"
    monkeypatch.setenv("REPRO_BATCH_SIZE", "7")
    assert batch_size() == 7
    monkeypatch.setenv("REPRO_BATCH_SIZE", "0")
    assert batch_size() == 1
    monkeypatch.setenv("REPRO_BATCH_SIZE", "not-a-number")
    assert batch_size() > 1


class TestTagArray:
    """The flat L1 mirror used by the kernel's vectorized classification."""

    def _config(self):
        return small_test_config(2).l1d

    def test_place_and_remove(self):
        tags = TagArray(self._config())
        assert tags.place(0x40, STATE_EXCLUSIVE, UOP_NONE)
        assert tags.resident(0x40)
        tags.update_line(0x40, STATE_MODIFIED, UOP_NONE)
        assert tags.resident(0x40)
        tags.update_line(0x40, 0, UOP_NONE)  # STATE_ABSENT removes
        assert not tags.resident(0x40)

    def test_place_with_victim_replaces_way(self):
        config = self._config()
        tags = TagArray(config)
        num_sets = config.num_sets
        first = num_sets  # both map to set 0
        second = 2 * num_sets
        assert tags.place(first, STATE_EXCLUSIVE, UOP_NONE)
        assert tags.place(second, STATE_MODIFIED, UOP_NONE, victim_addr=first)
        assert not tags.resident(first)
        assert tags.resident(second)

    def test_place_fails_when_no_slot(self):
        config = self._config()
        tags = TagArray(config)
        num_sets = config.num_sets
        for way in range(config.ways):
            assert tags.place((way + 1) * num_sets, STATE_EXCLUSIVE, UOP_NONE)
        # Set 0 is full and the victim is not resident: must report failure.
        missing_victim = (config.ways + 5) * num_sets
        assert not tags.place(
            (config.ways + 1) * num_sets,
            STATE_EXCLUSIVE,
            UOP_NONE,
            victim_addr=missing_victim,
        )

    def test_update_absent_line_is_noop(self):
        tags = TagArray(self._config())
        tags.update_line(0x99, STATE_MODIFIED, UOP_NONE)  # must not raise
        assert not tags.resident(0x99)
