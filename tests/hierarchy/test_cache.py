"""Unit tests for the set-associative cache arrays."""

from __future__ import annotations

import pytest

from repro.hierarchy.cache import SetAssociativeCache
from repro.sim.config import CacheConfig


def make_cache(size=1024, ways=2, line=64) -> SetAssociativeCache:
    return SetAssociativeCache(CacheConfig(size_bytes=size, ways=ways, latency=1, line_bytes=line))


class TestGeometry:
    def test_num_sets(self):
        cache = make_cache(size=1024, ways=2, line=64)
        assert cache.config.num_lines == 16
        assert cache.config.num_sets == 8

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=0, ways=2, latency=1)
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1024, ways=0, latency=1)
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, ways=3, latency=1, line_bytes=48)


class TestLookupInsert:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert cache.lookup(0x10) is None
        cache.insert(0x10)
        assert cache.lookup(0x10) is not None
        assert cache.hits == 1
        assert cache.misses == 1

    def test_peek_does_not_touch_stats(self):
        cache = make_cache()
        cache.insert(0x10)
        cache.peek(0x10)
        cache.peek(0x999)
        assert cache.hits == 0
        assert cache.misses == 0

    def test_reinsert_refreshes_without_eviction(self):
        cache = make_cache()
        cache.insert(0x10, metadata={"a": 1})
        victim = cache.insert(0x10, metadata={"b": 2})
        assert victim is None
        info = cache.peek(0x10)
        assert info.metadata == {"a": 1, "b": 2}

    def test_lru_eviction_within_set(self):
        cache = make_cache(size=256, ways=2, line=64)  # 4 lines, 2 sets
        # Addresses 0, 2, 4 map to set 0 (line_addr % num_sets with 2 sets).
        cache.insert(0)
        cache.insert(2)
        cache.lookup(0)  # make 0 most recently used
        victim = cache.insert(4)
        assert victim is not None
        assert victim.line_addr == 2
        assert 0 in cache
        assert 4 in cache

    def test_invalidate(self):
        cache = make_cache()
        cache.insert(0x20)
        removed = cache.invalidate(0x20)
        assert removed is not None
        assert 0x20 not in cache
        assert cache.invalidate(0x20) is None

    def test_occupancy_and_len(self):
        cache = make_cache(size=256, ways=2, line=64)
        assert len(cache) == 0
        cache.insert(1)
        cache.insert(2)
        assert len(cache) == 2
        assert cache.occupancy() == pytest.approx(0.5)

    def test_hit_rate(self):
        cache = make_cache()
        cache.insert(1)
        cache.lookup(1)
        cache.lookup(2)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_reset_statistics(self):
        cache = make_cache()
        cache.lookup(1)
        cache.reset_statistics()
        assert cache.misses == 0
