"""Unit tests for the cache hierarchy assembly and the memory model."""

from __future__ import annotations

import pytest

from repro.hierarchy.memory import MainMemoryModel
from repro.hierarchy.system import CacheHierarchy
from repro.sim.config import small_test_config, table1_config


class TestCacheHierarchy:
    def test_machine_assembly_matches_config(self):
        config = table1_config(32)
        hierarchy = CacheHierarchy(config)
        assert len(hierarchy.l1) == 32
        assert len(hierarchy.l2) == 32
        assert len(hierarchy.l3) == config.n_chips == 2
        assert len(hierarchy.l4) == config.n_l4_chips == 2

    def test_private_fill_then_lookup_hits_l1(self):
        hierarchy = CacheHierarchy(small_test_config(2))
        hierarchy.private_fill(0, 0x100)
        result = hierarchy.private_lookup(0, 0x100)
        assert result.is_hit
        assert result.level == "L1"

    def test_lookup_miss(self):
        hierarchy = CacheHierarchy(small_test_config(2))
        assert not hierarchy.private_lookup(0, 0x100).is_hit

    def test_l2_hit_refills_l1(self):
        hierarchy = CacheHierarchy(small_test_config(2))
        hierarchy.private_fill(0, 0x100)
        hierarchy.l1[0].invalidate(0x100)
        result = hierarchy.private_lookup(0, 0x100)
        assert result.level == "L2"
        assert hierarchy.l1[0].peek(0x100) is not None

    def test_capacity_evictions_reported_from_l2(self):
        config = small_test_config(1)
        hierarchy = CacheHierarchy(config)
        notices = []
        # Fill well past the tiny L2 capacity (4 KiB / 64 B = 64 lines).
        for i in range(200):
            notices.extend(hierarchy.private_fill(0, i))
        assert notices, "filling past capacity must evict lines"
        evicted = {notice.line_addr for notice in notices}
        # Evicted lines are gone from both private levels (inclusion).
        for line in evicted:
            assert hierarchy.l1[0].peek(line) is None
            assert hierarchy.l2[0].peek(line) is None

    def test_private_invalidate_clears_both_levels(self):
        hierarchy = CacheHierarchy(small_test_config(2))
        hierarchy.private_fill(1, 0x40)
        hierarchy.private_invalidate(1, 0x40)
        assert not hierarchy.private_present(1, 0x40)

    def test_cache_summary_reports_rates(self):
        hierarchy = CacheHierarchy(small_test_config(2))
        hierarchy.private_fill(0, 0x1)
        hierarchy.private_lookup(0, 0x1)
        summary = hierarchy.cache_summary()
        assert 0.0 <= summary["l1_hit_rate"] <= 1.0

    def test_l4_home_chip_is_interleaved(self):
        config = table1_config(128)
        homes = {config.l4_home_chip(line) for line in range(64)}
        assert homes == set(range(config.n_l4_chips))


class TestMainMemory:
    def test_latency_includes_configured_minimum(self):
        config = table1_config(16)
        memory = MainMemoryModel(config)
        timing = memory.access(l4_chip=0, now=0.0, line_bytes=64)
        assert timing.latency >= config.memory.latency

    def test_bandwidth_queueing(self):
        config = table1_config(16)
        memory = MainMemoryModel(config)
        # Saturate all channels at the same instant; later accesses queue.
        latencies = [memory.access(0, 0.0, 64).latency for _ in range(32)]
        assert latencies[-1] > latencies[0]
        assert memory.accesses == 32

    def test_reset(self):
        memory = MainMemoryModel(table1_config(16))
        memory.access(0, 0.0, 64)
        memory.reset()
        assert memory.accesses == 0
        assert memory.bytes_transferred == 0
