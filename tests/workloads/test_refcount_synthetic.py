"""Tests for the reference-counting and synthetic microbenchmark workloads."""

from __future__ import annotations

import pytest

from repro.sim.access import AccessType
from repro.sim.config import small_test_config
from repro.sim.simulator import simulate
from repro.workloads import (
    CountMode,
    DelayedRefcountWorkload,
    FalseSharingWorkload,
    ImmediateRefcountWorkload,
    InterleavedReadUpdateWorkload,
    MixedOpWorkload,
    MultiCounterWorkload,
    ReadOnlyWorkload,
    RefcountScheme,
    ScalarReductionWorkload,
    SharedCounterWorkload,
    UpdateStyle,
)


class TestImmediateRefcount:
    def test_coup_variant_uses_commutative_updates(self):
        trace = ImmediateRefcountWorkload(
            n_counters=32, updates_per_thread=50, scheme=RefcountScheme.COUP
        ).generate(2)
        types = {a.access_type for t in trace.per_core for a in t}
        assert AccessType.COMMUTATIVE_UPDATE in types
        assert AccessType.LOAD in types  # decrement-and-read reads the counter

    def test_xadd_variant_uses_atomics(self):
        trace = ImmediateRefcountWorkload(
            n_counters=32, updates_per_thread=50, scheme=RefcountScheme.XADD
        ).generate(2)
        types = {a.access_type for t in trace.per_core for a in t}
        assert AccessType.ATOMIC_RMW in types

    def test_snzi_variant_touches_tree_nodes(self):
        flat = ImmediateRefcountWorkload(
            n_counters=8, updates_per_thread=60, scheme=RefcountScheme.XADD
        ).generate(4)
        snzi = ImmediateRefcountWorkload(
            n_counters=8, updates_per_thread=60, scheme=RefcountScheme.SNZI
        ).generate(4)
        flat_addresses = {a.address for t in flat.per_core for a in t}
        snzi_addresses = {a.address for t in snzi.per_core for a in t}
        # SNZI spreads updates over a tree, so it touches more distinct lines.
        assert len(snzi_addresses) > len(flat_addresses)

    def test_low_count_alternates_increment_decrement(self):
        workload = ImmediateRefcountWorkload(
            n_counters=4, updates_per_thread=100, scheme=RefcountScheme.XADD,
            count_mode=CountMode.LOW,
        )
        trace = workload.generate(1)
        values = [
            a.value
            for t in trace.per_core
            for a in t
            if a.access_type is AccessType.ATOMIC_RMW
        ]
        # In low-count mode each thread holds at most one reference, so the
        # net sum per counter can only be 0 or 1; overall sum is bounded by
        # the number of counters.
        assert abs(sum(values)) <= 4

    def test_refcache_not_valid_for_immediate(self):
        with pytest.raises(ValueError):
            ImmediateRefcountWorkload(scheme=RefcountScheme.REFCACHE)

    def test_runs_under_simulation(self):
        workload = ImmediateRefcountWorkload(
            n_counters=16, updates_per_thread=40, scheme=RefcountScheme.COUP
        )
        result = simulate(workload.generate(4), small_test_config(4), "COUP")
        assert result.total_accesses > 0


class TestDelayedRefcount:
    def test_coup_variant_uses_counters_and_bitmap(self):
        workload = DelayedRefcountWorkload(
            n_counters=64, updates_per_epoch=20, n_epochs=2, scheme=RefcountScheme.COUP
        )
        trace = workload.generate(2)
        assert len(trace.phase_boundaries) == 4  # update + check per epoch
        comm = [
            a
            for t in trace.per_core
            for a in t
            if a.access_type is AccessType.COMMUTATIVE_UPDATE
        ]
        ops = {a.op.value for a in comm}
        assert ops == {"add_i64", "or_64"}

    def test_refcache_variant_flushes_at_epoch_end(self):
        workload = DelayedRefcountWorkload(
            n_counters=64, updates_per_epoch=20, n_epochs=1, scheme=RefcountScheme.REFCACHE
        )
        trace = workload.generate(2)
        atomics = [
            a for t in trace.per_core for a in t if a.access_type is AccessType.ATOMIC_RMW
        ]
        assert atomics, "the flush phase applies deltas with atomics"

    def test_only_coup_and_refcache_supported(self):
        with pytest.raises(ValueError):
            DelayedRefcountWorkload(scheme=RefcountScheme.XADD)


class TestSyntheticWorkloads:
    def test_shared_counter_expected_total(self):
        workload = SharedCounterWorkload(updates_per_core=25)
        result = simulate(workload.generate(4), small_test_config(4), "COUP")
        assert result.final_values[workload.counter_address] == workload.expected_total(4)

    def test_multi_counter_spreads_updates(self):
        workload = MultiCounterWorkload(n_counters=16, updates_per_core=64)
        result = simulate(workload.generate(2), small_test_config(2), "COUP")
        total = sum(
            result.final_values.get(workload.counter_address(i), 0) for i in range(16)
        )
        assert total == workload.expected_total(2)

    def test_hot_fraction_concentrates_on_counter_zero(self):
        workload = MultiCounterWorkload(n_counters=64, updates_per_core=200, hot_fraction=0.9)
        result = simulate(workload.generate(2), small_test_config(2), "COUP")
        hot = result.final_values.get(workload.counter_address(0), 0)
        assert hot > 0.7 * workload.expected_total(2)

    def test_false_sharing_words_on_one_line(self):
        workload = FalseSharingWorkload(updates_per_core=10)
        addresses = {workload.word_address(core) for core in range(4)}
        lines = {address // 64 for address in addresses}
        assert len(lines) == 1

    def test_scalar_reduction_single_update_per_core(self):
        workload = ScalarReductionWorkload(items_per_core=50)
        trace = workload.generate(4)
        updates = sum(
            1
            for t in trace.per_core
            for a in t
            if a.access_type is AccessType.COMMUTATIVE_UPDATE
        )
        assert updates == 4

    def test_read_only_has_no_updates(self):
        trace = ReadOnlyWorkload(n_elements=8, reads_per_core=20).generate(2)
        assert all(
            a.access_type is AccessType.LOAD for t in trace.per_core for a in t
        )

    def test_interleaved_ratio(self):
        workload = InterleavedReadUpdateWorkload(updates_per_read=3, rounds=10)
        trace = workload.generate(2)
        loads = sum(1 for t in trace.per_core for a in t if a.access_type is AccessType.LOAD)
        updates = sum(
            1
            for t in trace.per_core
            for a in t
            if a.access_type is AccessType.COMMUTATIVE_UPDATE
        )
        assert loads == 20
        assert updates == 60

    def test_mixed_ops_switch_types(self):
        workload = MixedOpWorkload(updates_per_core=40, switch_every=5)
        result = simulate(workload.generate(2), small_test_config(2), "COUP")
        assert result.reductions > 0  # type switches force full reductions

    def test_update_style_propagates(self):
        trace = SharedCounterWorkload(
            updates_per_core=5, update_style=UpdateStyle.REMOTE
        ).generate(2)
        types = {a.access_type for t in trace.per_core for a in t if a.access_type.is_update}
        assert types == {AccessType.REMOTE_UPDATE}
