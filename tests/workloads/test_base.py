"""Tests for the workload framework (address map, partitioning, statistics)."""

from __future__ import annotations

import pytest

from repro.workloads import HistogramWorkload, PAPER_BENCHMARKS, Workload
from repro.workloads.base import AddressMap


class TestAddressMap:
    def test_regions_are_disjoint_and_stable(self):
        addresses = AddressMap()
        a = addresses.region("a")
        b = addresses.region("b")
        assert a != b
        assert addresses.region("a") == a  # stable on re-request

    def test_element_addressing(self):
        addresses = AddressMap()
        base = addresses.region("array")
        assert addresses.element("array", 0, 8) == base
        assert addresses.element("array", 3, 8) == base + 24
        assert addresses.element("array", 1, 4) == base + 4


class TestWorkloadFramework:
    def test_split_work_covers_all_items(self):
        parts = Workload.split_work(103, 4)
        assert sum(len(p) for p in parts) == 103
        assert parts[0].start == 0
        assert parts[-1].stop == 103
        # Balanced within one item.
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_split_work_more_cores_than_items(self):
        parts = Workload.split_work(2, 8)
        assert sum(len(p) for p in parts) == 2

    def test_generate_rejects_bad_core_count(self):
        with pytest.raises(ValueError):
            HistogramWorkload(n_bins=4, n_items=10).generate(0)

    def test_stats_reports_comm_fraction(self):
        stats = HistogramWorkload(n_bins=16, n_items=200).stats(2)
        assert stats.name == "hist"
        assert stats.update_accesses == 200
        assert stats.read_accesses == 200
        assert 0.0 < stats.comm_op_fraction < 0.5
        row = stats.as_row()
        assert row["benchmark"] == "hist"

    def test_paper_benchmark_registry(self):
        assert set(PAPER_BENCHMARKS) == {"hist", "spmv", "pgrank", "bfs", "fluidanimate"}
        for workload_cls in PAPER_BENCHMARKS.values():
            assert issubclass(workload_cls, Workload)

    def test_params_recorded_in_trace(self):
        trace = HistogramWorkload(n_bins=16, n_items=100, seed=3).generate(2)
        assert trace.params["n_bins"] == 16
        assert trace.params["seed"] == 3
        assert trace.params["update_style"] == "commutative"
