"""Tests for the histogram workload and its privatized variants."""

from __future__ import annotations

import pytest

from repro.sim.access import AccessType
from repro.sim.config import small_test_config
from repro.sim.simulator import simulate
from repro.software.privatization import PrivatizationLevel
from repro.workloads import HistogramWorkload, UpdateStyle


class TestSharedHistogram:
    def test_trace_shape(self):
        workload = HistogramWorkload(n_bins=16, n_items=1000)
        trace = workload.generate(4)
        assert trace.n_cores == 4
        # One input load plus one update per item.
        assert trace.total_accesses == 2 * 1000

    def test_work_partitioned_across_cores(self):
        workload = HistogramWorkload(n_bins=16, n_items=1000)
        trace = workload.generate(4)
        sizes = [len(t) for t in trace.per_core]
        assert sum(sizes) == 2000
        assert max(sizes) - min(sizes) <= 2

    def test_update_style_controls_access_type(self):
        commutative = HistogramWorkload(n_bins=8, n_items=100).generate(2)
        atomic = HistogramWorkload(
            n_bins=8, n_items=100, update_style=UpdateStyle.ATOMIC
        ).generate(2)
        comm_types = {a.access_type for t in commutative.per_core for a in t}
        atomic_types = {a.access_type for t in atomic.per_core for a in t}
        assert AccessType.COMMUTATIVE_UPDATE in comm_types
        assert AccessType.ATOMIC_RMW not in comm_types
        assert AccessType.ATOMIC_RMW in atomic_types

    def test_deterministic_given_seed(self):
        a = HistogramWorkload(n_bins=8, n_items=200, seed=7).generate(2)
        b = HistogramWorkload(n_bins=8, n_items=200, seed=7).generate(2)
        assert [x.address for t in a.per_core for x in t] == [
            x.address for t in b.per_core for x in t
        ]

    def test_different_seed_changes_inputs(self):
        a = HistogramWorkload(n_bins=64, n_items=200, seed=1).generate(2)
        b = HistogramWorkload(n_bins=64, n_items=200, seed=2).generate(2)
        assert [x.address for t in a.per_core for x in t] != [
            x.address for t in b.per_core for x in t
        ]

    def test_reference_result_matches_simulation(self):
        workload = HistogramWorkload(n_bins=32, n_items=800)
        reference = workload.reference_result()
        result = simulate(workload.generate(4), small_test_config(4), "COUP")
        for address, expected in reference.items():
            assert result.final_values.get(address, 0) == expected
        assert sum(reference.values()) == 800

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            HistogramWorkload(n_bins=0, n_items=10)
        with pytest.raises(ValueError):
            HistogramWorkload(n_bins=10, n_items=0)

    def test_skewed_inputs_stay_in_range(self):
        workload = HistogramWorkload(n_bins=16, n_items=500, skew=1.2)
        reference = workload.reference_result()
        assert sum(reference.values()) == 500


class TestPrivatizedHistogram:
    def test_core_level_has_reduction_phase(self):
        workload = HistogramWorkload(n_bins=64, n_items=400)
        trace = workload.generate_privatized(4, level=PrivatizationLevel.CORE)
        assert trace.phase_boundaries is not None
        # Reduction phase: for each owned bin, read every replica and write once.
        reduction_accesses = sum(
            len(t) - boundary
            for t, boundary in zip(trace.per_core, trace.phase_boundaries[0])
        )
        assert reduction_accesses == 64 * 4 + 64

    def test_socket_level_uses_fewer_replicas(self):
        workload = HistogramWorkload(n_bins=64, n_items=400)
        core_level = workload.generate_privatized(8, level=PrivatizationLevel.CORE)
        socket_level = HistogramWorkload(n_bins=64, n_items=400).generate_privatized(
            8, level=PrivatizationLevel.SOCKET, cores_per_socket=4
        )
        assert core_level.params["n_replicas"] == 8
        assert socket_level.params["n_replicas"] == 2
        assert socket_level.params["footprint_bytes"] < core_level.params["footprint_bytes"]

    def test_privatized_updates_are_not_atomics_at_core_level(self):
        workload = HistogramWorkload(n_bins=16, n_items=100)
        trace = workload.generate_privatized(2, level=PrivatizationLevel.CORE)
        types = {a.access_type for t in trace.per_core for a in t}
        assert AccessType.ATOMIC_RMW not in types
        assert AccessType.COMMUTATIVE_UPDATE not in types

    def test_socket_level_uses_atomics_within_socket(self):
        workload = HistogramWorkload(n_bins=16, n_items=100)
        trace = workload.generate_privatized(
            4, level=PrivatizationLevel.SOCKET, cores_per_socket=2
        )
        types = {a.access_type for t in trace.per_core for a in t}
        assert AccessType.ATOMIC_RMW in types

    def test_runs_under_simulation(self):
        workload = HistogramWorkload(n_bins=32, n_items=300)
        trace = workload.generate_privatized(4, level=PrivatizationLevel.CORE)
        result = simulate(trace, small_test_config(4), "MESI", track_values=False)
        assert result.total_accesses == trace.total_accesses
