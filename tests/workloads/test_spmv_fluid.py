"""Tests for the spmv and fluidanimate workloads."""

from __future__ import annotations

import pytest

from repro.core.commutative import CommutativeOp
from repro.sim.access import AccessType
from repro.sim.config import small_test_config
from repro.sim.simulator import simulate
from repro.workloads import FluidanimateWorkload, SpmvWorkload


class TestSpmv:
    def test_updates_are_fp64_adds(self):
        trace = SpmvWorkload(n_rows=64, n_cols=64, nnz_per_col=3).generate(2)
        ops = {
            a.op
            for t in trace.per_core
            for a in t
            if a.access_type is AccessType.COMMUTATIVE_UPDATE
        }
        assert ops == {CommutativeOp.ADD_F64}

    def test_scattered_rows_overlap_between_cores(self):
        """CSC columns owned by different cores must update common rows."""
        workload = SpmvWorkload(n_rows=64, n_cols=256, nnz_per_col=4)
        trace = workload.generate(4)
        updated_by_core = []
        for core_trace in trace.per_core:
            updated_by_core.append(
                {
                    a.address
                    for a in core_trace
                    if a.access_type is AccessType.COMMUTATIVE_UPDATE
                }
            )
        overlap = updated_by_core[0] & updated_by_core[1]
        assert overlap, "adjacent cores should share output-vector elements"

    def test_reference_matches_simulation(self):
        workload = SpmvWorkload(n_rows=48, n_cols=48, nnz_per_col=3)
        reference = workload.reference_result()
        result = simulate(workload.generate(4), small_test_config(4), "COUP")
        for address, expected in reference.items():
            assert result.final_values.get(address, 0) == pytest.approx(expected)

    def test_column_count_controls_trace_size(self):
        small = SpmvWorkload(n_rows=32, n_cols=32, nnz_per_col=3).generate(2)
        large = SpmvWorkload(n_rows=32, n_cols=128, nnz_per_col=3).generate(2)
        assert large.total_accesses > small.total_accesses

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SpmvWorkload(n_rows=0, n_cols=8)


class TestFluidanimate:
    def test_boundary_cells_are_shared_between_neighbouring_cores(self):
        workload = FluidanimateWorkload(grid_x=8, grid_y=32, n_steps=1)
        trace = workload.generate(4)
        updated_by_core = []
        for core_trace in trace.per_core:
            updated_by_core.append(
                {
                    a.address
                    for a in core_trace
                    if a.access_type is AccessType.COMMUTATIVE_UPDATE
                }
            )
        assert updated_by_core[0] & updated_by_core[1]
        # Cores that are not neighbours share nothing.
        assert not updated_by_core[0] & updated_by_core[3]

    def test_shared_fraction_is_small_for_tall_grids(self):
        workload = FluidanimateWorkload(grid_x=8, grid_y=128, n_steps=1)
        trace = workload.generate(4)
        all_updates = [
            a.address
            for t in trace.per_core
            for a in t
            if a.access_type is AccessType.COMMUTATIVE_UPDATE
        ]
        owners = {}
        shared = set()
        for core_id, core_trace in enumerate(trace.per_core):
            for access in core_trace:
                if access.access_type is AccessType.COMMUTATIVE_UPDATE:
                    previous = owners.setdefault(access.address, core_id)
                    if previous != core_id:
                        shared.add(access.address)
        assert len(shared) / len(set(all_updates)) < 0.2

    def test_single_core_reference(self):
        workload = FluidanimateWorkload(grid_x=8, grid_y=8, n_steps=2)
        reference = workload.reference_result()
        result = simulate(workload.generate(1), small_test_config(1), "COUP")
        for address, expected in reference.items():
            assert result.final_values.get(address, 0) == pytest.approx(expected)

    def test_phases_alternate_update_and_read(self):
        workload = FluidanimateWorkload(grid_x=8, grid_y=16, n_steps=2)
        trace = workload.generate(2)
        assert len(trace.phase_boundaries) == 4
