"""Tests for the PageRank and BFS workloads."""

from __future__ import annotations

import pytest

from repro.core.commutative import CommutativeOp
from repro.sim.access import AccessType
from repro.sim.config import small_test_config
from repro.sim.simulator import simulate
from repro.workloads import BfsWorkload, PageRankWorkload, UpdateStyle


class TestPageRank:
    def test_trace_has_phases_per_iteration(self):
        workload = PageRankWorkload(n_vertices=128, avg_degree=4, n_iterations=2)
        trace = workload.generate(4)
        # Two phases (scatter, gather) per iteration.
        assert len(trace.phase_boundaries) == 4

    def test_updates_use_int64_add(self):
        workload = PageRankWorkload(n_vertices=64, avg_degree=3, n_iterations=1)
        trace = workload.generate(2)
        ops = {
            a.op
            for t in trace.per_core
            for a in t
            if a.access_type is AccessType.COMMUTATIVE_UPDATE
        }
        assert ops == {CommutativeOp.ADD_I64}

    def test_reference_matches_simulation_single_iteration(self):
        workload = PageRankWorkload(n_vertices=96, avg_degree=3, n_iterations=1)
        reference = workload.reference_result()
        assert reference, "power-law graph must have at least one edge"
        result = simulate(workload.generate(4), small_test_config(4), "COUP")
        for address, expected in reference.items():
            assert result.final_values.get(address, 0) == expected

    def test_multi_iteration_reference_is_not_defined(self):
        assert PageRankWorkload(n_vertices=32, n_iterations=2).reference_result() is None

    def test_atomic_variant(self):
        trace = PageRankWorkload(
            n_vertices=64, avg_degree=3, n_iterations=1, update_style=UpdateStyle.ATOMIC
        ).generate(2)
        types = {a.access_type for t in trace.per_core for a in t}
        assert AccessType.ATOMIC_RMW in types

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PageRankWorkload(n_vertices=0)


class TestBfs:
    def test_trace_reads_dominate_updates(self):
        """Each vertex is set once but its bit is checked once per in-edge."""
        workload = BfsWorkload(n_vertices=512, avg_degree=6, max_levels=6)
        trace = workload.generate(4)
        loads = sum(
            1 for t in trace.per_core for a in t if a.access_type is AccessType.LOAD
        )
        updates = sum(
            1
            for t in trace.per_core
            for a in t
            if a.access_type is AccessType.COMMUTATIVE_UPDATE
        )
        assert updates > 0
        assert loads > updates

    def test_updates_use_or(self):
        workload = BfsWorkload(n_vertices=256, avg_degree=4, max_levels=4)
        trace = workload.generate(2)
        ops = {
            a.op
            for t in trace.per_core
            for a in t
            if a.access_type is AccessType.COMMUTATIVE_UPDATE
        }
        assert ops == {CommutativeOp.OR_64}

    def test_bitmap_reference_matches_simulation(self):
        workload = BfsWorkload(n_vertices=256, avg_degree=4, max_levels=4)
        reference = workload.reference_result()
        result = simulate(workload.generate(4), small_test_config(4), "COUP")
        for address, expected in reference.items():
            assert result.final_values.get(address, 0) == expected

    def test_visited_set_grows_with_levels(self):
        shallow = BfsWorkload(n_vertices=512, avg_degree=6, max_levels=1)
        deep = BfsWorkload(n_vertices=512, avg_degree=6, max_levels=4)
        bits = lambda wl: sum(bin(v).count("1") for v in wl.reference_result().values())
        assert bits(deep) > bits(shallow)

    def test_phase_boundaries_per_level(self):
        workload = BfsWorkload(n_vertices=256, avg_degree=4, max_levels=3)
        trace = workload.generate(2)
        assert trace.phase_boundaries is not None
        assert 1 <= len(trace.phase_boundaries) <= 3
