"""Property-based tests (hypothesis) for core data structures and invariants.

These cover the algebraic and protocol-level properties the paper's argument
rests on:

* commutative operations form a commutative monoid (identity, commutativity,
  associativity) for every supported op and word width;
* delta buffers and reductions are order-independent and lossless;
* the MEUSI protocol engine produces the same final memory values as MESI for
  arbitrary interleavings of commutative updates (coherence is preserved);
* LRU cache arrays never exceed their capacity and never lose a just-inserted
  line.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.commutative import ALL_OPS, CommutativeOp, DeltaBuffer, reduce_partial_updates
from repro.core.mesi import MesiProtocol
from repro.core.meusi import MeusiProtocol
from repro.hierarchy.cache import SetAssociativeCache
from repro.sim.access import MemoryAccess
from repro.sim.config import CacheConfig, small_test_config


ops_strategy = st.sampled_from(list(ALL_OPS))
int_values = st.integers(min_value=-(2**31), max_value=2**31 - 1)


def _domain_values(op: CommutativeOp, values):
    """Clamp generated integers into a sensible domain for the op."""
    if op in (CommutativeOp.ADD_F32, CommutativeOp.ADD_F64):
        return [float(v) for v in values]
    if op is CommutativeOp.ADD_I16:
        return [v % (1 << 16) for v in values]
    return [abs(v) for v in values]


class TestAlgebraicProperties:
    @given(op=ops_strategy, a=int_values, b=int_values)
    @settings(max_examples=200, deadline=None)
    def test_commutativity(self, op, a, b):
        a, b = _domain_values(op, [a, b])
        assert op.apply(a, b) == op.apply(b, a)

    @given(op=ops_strategy, a=int_values, b=int_values, c=int_values)
    @settings(max_examples=200, deadline=None)
    def test_associativity(self, op, a, b, c):
        a, b, c = _domain_values(op, [a, b, c])
        assert op.apply(op.apply(a, b), c) == op.apply(a, op.apply(b, c))

    @given(op=ops_strategy, a=int_values)
    @settings(max_examples=200, deadline=None)
    def test_identity(self, op, a):
        (a,) = _domain_values(op, [a])
        assert op.apply(a, op.identity) == op.spec._wrap(a)
        assert op.apply(op.identity, a) == op.spec._wrap(a)

    @given(op=ops_strategy, values=st.lists(int_values, min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_reduce_is_permutation_invariant(self, op, values):
        values = _domain_values(op, values)
        shuffled = list(values)
        random.Random(0).shuffle(shuffled)
        assert op.reduce(values) == op.reduce(shuffled)


class TestDeltaBufferProperties:
    @given(
        op=st.sampled_from([CommutativeOp.ADD_I64, CommutativeOp.OR_64, CommutativeOp.XOR_64]),
        updates=st.lists(
            st.tuples(st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=255)),
            min_size=1,
            max_size=40,
        ),
        n_buffers=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=100, deadline=None)
    def test_split_buffers_reduce_to_sequential_result(self, op, updates, n_buffers):
        """Partitioning updates across caches never changes the reduced value."""
        # Sequential reference: apply every update to a single value image.
        reference = {}
        for offset, value in updates:
            reference[offset] = op.apply(reference.get(offset, op.identity), value)

        buffers = [DeltaBuffer(op) for _ in range(n_buffers)]
        for index, (offset, value) in enumerate(updates):
            buffers[index % n_buffers].update(offset, value)
        reduced = reduce_partial_updates(op, {}, buffers)
        assert reduced == reference

    @given(
        updates=st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=50)
    )
    @settings(max_examples=100, deadline=None)
    def test_buffer_total_equals_sum(self, updates):
        buffer = DeltaBuffer(CommutativeOp.ADD_I64)
        for value in updates:
            buffer.update(0, value)
        assert buffer.delta(0) == sum(updates)


class TestProtocolEquivalenceProperties:
    @given(
        schedule=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),   # core
                st.integers(min_value=0, max_value=5),   # counter index
                st.integers(min_value=1, max_value=9),   # value
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_meusi_and_mesi_agree_on_final_values(self, schedule):
        """Any interleaving of commutative adds yields identical final memory."""
        mesi = MesiProtocol(small_test_config(4))
        coup = MeusiProtocol(small_test_config(4))
        for step, (core, index, value) in enumerate(schedule):
            access = MemoryAccess.commutative(index * 64, CommutativeOp.ADD_I64, value)
            mesi.access(core, access, now=float(step * 10))
            coup.access(core, access, now=float(step * 10))
        mesi.finalize()
        coup.finalize()
        touched = {index * 64 for _core, index, _value in schedule}
        for address in touched:
            assert coup.read_word(address) == mesi.read_word(address)

    @given(
        schedule=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=3),
                st.sampled_from(["load", "add", "store"]),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_directory_invariants_under_random_traffic(self, schedule):
        coup = MeusiProtocol(small_test_config(4))
        for step, (core, index, kind) in enumerate(schedule):
            address = index * 64
            if kind == "load":
                access = MemoryAccess.load(address)
            elif kind == "add":
                access = MemoryAccess.commutative(address, CommutativeOp.ADD_I64, 1)
            else:
                access = MemoryAccess.store(address, step)
            coup.access(core, access, now=float(step * 10))
            coup.directory.check_invariants()


class TestCacheProperties:
    @given(
        addresses=st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=200)
    )
    @settings(max_examples=100, deadline=None)
    def test_capacity_never_exceeded_and_inserted_line_resident(self, addresses):
        cache = SetAssociativeCache(
            CacheConfig(size_bytes=1024, ways=2, latency=1, line_bytes=64)
        )
        for address in addresses:
            cache.insert(address)
            assert address in cache
            assert len(cache) <= cache.config.num_lines
            for cache_set in cache._sets.values():
                assert len(cache_set) <= cache.config.ways
