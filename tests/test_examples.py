"""Smoke tests: every example script runs end to end at a small scale."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples")
SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name), *args],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py", "8", "100")
        assert result.returncode == 0, result.stderr
        assert "COUP" in result.stdout
        assert "expected final value: 800" in result.stdout

    def test_histogram_study(self):
        result = run_example("histogram_study.py", "8")
        assert result.returncode == 0, result.stderr
        assert "Histogram on 8 cores" in result.stdout

    def test_graph_analytics(self):
        result = run_example("graph_analytics.py", "8")
        assert result.returncode == 0, result.stderr
        assert "pgrank" in result.stdout and "bfs" in result.stdout

    def test_reference_counting(self):
        result = run_example("reference_counting.py", "8")
        assert result.returncode == 0, result.stderr
        assert "Immediate deallocation" in result.stdout

    def test_verify_protocol(self):
        result = run_example("verify_protocol.py", "2", "1")
        assert result.returncode == 0, result.stderr
        assert "MEUSI" in result.stdout
