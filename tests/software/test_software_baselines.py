"""Tests for the software baseline models: privatization, delegation, SNZI, Refcache."""

from __future__ import annotations

import pytest

from repro.core.commutative import CommutativeOp
from repro.sim.access import AccessType
from repro.software.delegation import DelegationBuilder
from repro.software.privatization import (
    PrivatizationLevel,
    PrivatizedReductionBuilder,
    PrivatizedReductionPlan,
    socket_of_core,
)
from repro.software.refcache import RefcacheConfig, RefcacheThreadCache
from repro.software.snzi import SnziTree
from repro.workloads.base import AddressMap


class TestPrivatization:
    def _plan(self, level, n_replicas):
        return PrivatizedReductionPlan(
            n_elements=8,
            element_bytes=8,
            op=CommutativeOp.ADD_I64,
            level=level,
            n_replicas=n_replicas,
        )

    def test_footprint_scales_with_replicas(self):
        core_plan = self._plan(PrivatizationLevel.CORE, 16)
        socket_plan = self._plan(PrivatizationLevel.SOCKET, 2)
        assert core_plan.footprint_bytes == 8 * 8 * 16
        assert core_plan.footprint_bytes > socket_plan.footprint_bytes

    def test_core_level_update_phase_uses_plain_accesses(self):
        plan = self._plan(PrivatizationLevel.CORE, 2)
        builder = PrivatizedReductionBuilder(plan, AddressMap())
        trace = builder.update_phase(0, [(1, 1, 5), (2, 1, 5)])
        assert {a.access_type for a in trace} == {AccessType.LOAD, AccessType.STORE}

    def test_socket_level_update_phase_uses_atomics(self):
        plan = self._plan(PrivatizationLevel.SOCKET, 2)
        builder = PrivatizedReductionBuilder(
            plan, AddressMap(), replica_of_core=socket_of_core(2)
        )
        trace = builder.update_phase(0, [(1, 1, 5)])
        assert {a.access_type for a in trace} == {AccessType.ATOMIC_RMW}

    def test_replicas_have_disjoint_addresses(self):
        plan = self._plan(PrivatizationLevel.CORE, 2)
        builder = PrivatizedReductionBuilder(plan, AddressMap())
        core0 = {a.address for a in builder.update_phase(0, [(i, 1, 0) for i in range(8)])}
        core1 = {a.address for a in builder.update_phase(1, [(i, 1, 0) for i in range(8)])}
        assert not core0 & core1

    def test_reduction_phase_reads_every_replica(self):
        plan = self._plan(PrivatizationLevel.CORE, 4)
        builder = PrivatizedReductionBuilder(plan, AddressMap())
        trace = builder.reduction_phase(0, n_cores=4)
        loads = [a for a in trace if a.access_type is AccessType.LOAD]
        stores = [a for a in trace if a.access_type is AccessType.STORE]
        # Core 0 owns 2 of the 8 elements: 2 * 4 replica reads + 2 stores.
        assert len(loads) == 8
        assert len(stores) == 2

    def test_socket_of_core(self):
        socket = socket_of_core(16)
        assert socket(0) == 0
        assert socket(15) == 0
        assert socket(16) == 1


class TestDelegation:
    def test_local_updates_bypass_queues(self):
        addresses = AddressMap()
        builder = DelegationBuilder(
            addresses,
            n_cores=2,
            owner_of_element=lambda e: e % 2,
            element_address=lambda e: addresses.element("data", e, 8),
        )
        trace = builder.build([[(0, 1, 2)], []])  # element 0 owned by core 0
        assert trace.total_accesses == 2  # load + store, no queue traffic

    def test_remote_updates_enqueue_and_drain(self):
        addresses = AddressMap()
        builder = DelegationBuilder(
            addresses,
            n_cores=2,
            owner_of_element=lambda e: e % 2,
            element_address=lambda e: addresses.element("data", e, 8),
        )
        trace = builder.build([[(1, 1, 2)], []])  # element 1 owned by core 1
        assert trace.phase_boundaries is not None
        # Producer: 2 stores; owner: entry load + element load + store.
        assert len(trace.per_core[0]) == 2
        assert len(trace.per_core[1]) == 3

    def test_requires_one_stream_per_core(self):
        addresses = AddressMap()
        builder = DelegationBuilder(
            addresses,
            n_cores=2,
            owner_of_element=lambda e: 0,
            element_address=lambda e: e * 8,
        )
        with pytest.raises(ValueError):
            builder.build([[]])


class TestSnzi:
    def test_arrive_depart_track_surplus(self):
        tree = SnziTree(AddressMap(), object_id=0, n_threads=4)
        first = tree.arrive(0)
        assert len(first) >= 2  # leaf plus propagation to ancestors
        second = tree.arrive(0)
        assert len(second) == 1  # surplus already positive, no propagation
        depart = tree.depart(0)
        assert len(depart) == 1
        last = tree.depart(0)
        assert len(last) >= 2  # surplus hits zero, propagates upward

    def test_query_reads_root_only(self):
        tree = SnziTree(AddressMap(), object_id=0, n_threads=8)
        query = tree.query(3)
        assert len(query) == 1
        assert query[0].access_type is AccessType.LOAD

    def test_threads_use_distinct_leaves(self):
        tree = SnziTree(AddressMap(), object_id=0, n_threads=4)
        leaf0 = tree.arrive(0)[0].address
        leaf1 = tree.arrive(1)[0].address
        assert leaf0 != leaf1

    def test_footprint_grows_with_threads(self):
        small = SnziTree(AddressMap(), 0, n_threads=2)
        large = SnziTree(AddressMap(), 0, n_threads=16)
        assert large.footprint_bytes > small.footprint_bytes


class TestRefcache:
    def test_update_probes_hash_slot(self):
        cache = RefcacheThreadCache(AddressMap(), thread_id=0)
        trace = cache.update(counter_id=7, delta=1)
        assert [a.access_type for a in trace] == [AccessType.LOAD, AccessType.STORE]
        assert cache.deltas[7] == 1

    def test_updates_coalesce_in_cache(self):
        cache = RefcacheThreadCache(AddressMap(), thread_id=0)
        cache.update(7, 1)
        cache.update(7, 1)
        cache.update(7, -1)
        assert cache.deltas[7] == 1

    def test_flush_applies_deltas_with_atomics_and_clears(self):
        addresses = AddressMap()
        cache = RefcacheThreadCache(addresses, thread_id=0)
        cache.update(1, 1)
        cache.update(2, -1)
        flush = cache.flush(lambda c: addresses.element("counters", c, 8))
        atomics = [a for a in flush if a.access_type is AccessType.ATOMIC_RMW]
        assert len(atomics) == 2
        assert {a.value for a in atomics} == {1, -1}
        assert not cache.deltas

    def test_footprint(self):
        cache = RefcacheThreadCache(AddressMap(), 0, RefcacheConfig(n_slots=128, slot_bytes=16))
        assert cache.footprint_bytes == 2048
