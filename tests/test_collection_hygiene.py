"""Meta-test: pytest must collect the whole repository without errors.

The seed repository shipped two test modules named ``test_ablations.py`` —
one under ``tests/experiments`` and one under ``benchmarks`` — which made
``pytest`` fail at *collection* with an import-file mismatch (rootdir-wide
runs import both under the module name ``test_ablations``).  This guard runs
``pytest --collect-only`` over ``tests/`` and ``benchmarks/`` together in a
subprocess and asserts zero collection errors, so a future basename
collision (or an import-time crash in any test module) fails fast with a
clear message instead of breaking tier-1 verification.
"""

from __future__ import annotations

import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def test_collect_only_reports_no_errors():
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            "--collect-only",
            "-q",
            "tests",
            "benchmarks",
            "-p",
            "no:cacheprovider",
            "--deselect",
            "tests/test_collection_hygiene.py",
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    output = result.stdout + result.stderr
    # Collection errors appear as "ERROR <path>" lines and a nonzero exit;
    # don't substring-match "error" so a test *named* ...error... stays legal.
    error_lines = [
        line for line in output.splitlines() if line.startswith(("ERROR", "ERRORS"))
    ]
    assert not error_lines, output
    assert result.returncode == 0, output


def test_no_duplicate_test_basenames_without_packages():
    """No two test modules may share a basename unless packages disambiguate."""
    seen = {}
    for top in ("tests", "benchmarks"):
        for dirpath, _dirnames, filenames in os.walk(os.path.join(REPO_ROOT, top)):
            has_init = "__init__.py" in filenames
            for filename in filenames:
                if not (filename.startswith("test_") and filename.endswith(".py")):
                    continue
                path = os.path.join(dirpath, filename)
                if filename in seen and not has_init:
                    previous = seen[filename]
                    raise AssertionError(
                        f"duplicate test basename {filename!r}: {previous} and "
                        f"{path} — rename one, or add __init__.py packages"
                    )
                seen.setdefault(filename, path)
