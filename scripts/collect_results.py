#!/usr/bin/env python3
"""Collect headline reproduction numbers for EXPERIMENTS.md.

Runs every experiment at the benchmark-suite scale and writes a JSON summary
(``results/summary.json``) with the quantities quoted in EXPERIMENTS.md:
per-benchmark COUP-over-MESI speedups and traffic reductions, the Fig. 2 and
Fig. 12 scheme comparisons, the Fig. 13 reference-counting results, the Fig. 8
verification state counts, and the Sec. 5.5 sensitivity numbers.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.experiments import (  # noqa: E402
    figure02_histogram_bins,
    figure08_verification,
    figure10_speedups,
    figure11_amat,
    figure12_privatization,
    figure13_refcount,
    sensitivity_reduction_unit,
    sensitivity_topology,
    settings,
    table2_benchmarks,
    traffic_reduction,
)
from repro.experiments.journal import (  # noqa: E402
    JournalCorruptError,
    journal_dir,
    latest_point_records,
    replay_dir,
)
from repro.obs.events import fold_events, profile_summary  # noqa: E402
from repro.workloads import CountMode  # noqa: E402


REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def collect_runner_records(results_dir: str, *, scale: float, max_cores: int) -> dict:
    """Merge the runner's per-experiment JSON records into one dict.

    Only well-formed records produced at the same scale/max_cores as this
    summary are folded in: records from a sweep at a different scale are not
    comparable, and a truncated or foreign JSON file (e.g. a worker killed
    mid-write) must not abort summary collection.
    """
    records = {}
    for path in sorted(glob.glob(os.path.join(results_dir, "*.json"))):
        try:
            with open(path) as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"skipping unreadable runner record {path}: {exc}", file=sys.stderr)
            continue
        if not isinstance(record, dict) or "experiment_id" not in record:
            continue  # foreign JSON in the directory; not a runner record
        if record.get("scale") != scale or record.get("max_cores") != max_cores:
            continue  # produced by a sweep at a different scale
        record.pop("output", None)  # keep summary.json compact
        records[record["experiment_id"]] = record
    return records


def collect_point_records(results_dir: str, *, scale: float, max_cores: int) -> dict:
    """Fold the runner's per-sweep-point JSON records into one dict.

    Point-granularity sweeps (``runner --jobs N``) write one record per
    (benchmark x core count x protocol) sweep point under
    ``<results_dir>/points/<experiment>/``.  This folds them into a compact
    per-experiment digest — point count, failures, cache hits, aggregate
    simulation time — applying the same guards as
    :func:`collect_runner_records`: malformed files and records from a
    different scale/max_cores sweep are skipped.
    """
    folded = {}
    pattern = os.path.join(results_dir, "points", "*", "*.json")
    for path in sorted(glob.glob(pattern)):
        try:
            with open(path) as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"skipping unreadable point record {path}: {exc}", file=sys.stderr)
            continue
        if not isinstance(record, dict) or "experiment_id" not in record or "point" not in record:
            continue  # foreign JSON in the directory; not a point record
        if record.get("scale") != scale or record.get("max_cores") != max_cores:
            continue  # produced by a sweep at a different scale
        digest = folded.setdefault(
            record["experiment_id"],
            {"n_points": 0, "n_cached": 0, "n_failed": 0, "elapsed_s": 0.0, "points": []},
        )
        # Records written before the interconnect subsystem existed carry no
        # `bytes_by_type`/`link_stats`-derived keys (and may hold nulls where
        # newer records hold numbers).  A `--resume` over an old results or
        # cache directory must fold what it can and never abort the summary,
        # so each record's statistics are folded defensively.
        try:
            elapsed = float(record.get("elapsed_s") or 0.0)
            digest["n_points"] += 1
            digest["n_cached"] += int(bool(record.get("cached")))
            digest["n_failed"] += int(record.get("status") != "ok")
            digest["elapsed_s"] = round(digest["elapsed_s"] + elapsed, 3)
            point = {
                "point": record["point"],
                "status": record.get("status"),
                "cached": bool(record.get("cached")),
                "elapsed_s": record.get("elapsed_s"),
            }
            if "summary" in record:
                point["summary"] = record["summary"]
                # Fold the interconnect statistics the summaries carry instead
                # of dropping them: the per-message-type byte breakdown is
                # summed across the experiment's points, and the peak link
                # utilization (contention-enabled sweeps only) is tracked as a
                # maximum.  Both keys are absent from pre-topology records.
                point_summary = record["summary"]
                if isinstance(point_summary, dict):
                    bytes_by_type = point_summary.get("bytes_by_type")
                    if isinstance(bytes_by_type, dict):
                        totals = digest.setdefault("bytes_by_type", {})
                        for label, count in bytes_by_type.items():
                            if isinstance(count, (int, float)):
                                totals[label] = totals.get(label, 0) + count
                    utilization = point_summary.get("max_link_utilization")
                    if isinstance(utilization, (int, float)):
                        digest["max_link_utilization"] = max(
                            digest.get("max_link_utilization", 0.0), utilization
                        )
            digest["points"].append(point)
        except (KeyError, TypeError, ValueError) as exc:
            print(
                f"skipping malformed point record {path}: {exc!r}", file=sys.stderr
            )
            continue
    return folded


def collect_journal_records(results_dir: str) -> dict | None:
    """Fold the campaign's crash-safe journal into a compact digest.

    The runner appends one WAL record per completed sweep point under
    ``<results_dir>/journal/`` (see :mod:`repro.experiments.journal`).  A
    torn tail record — a campaign killed mid-write — is recovered and
    reported; damage *beyond* the tail raises
    :class:`~repro.experiments.journal.JournalCorruptError`, which
    :func:`main` converts into a nonzero exit instead of silently folding
    partial data.  Returns ``None`` when no journal exists.
    """
    replay = replay_dir(journal_dir(results_dir))
    if not replay.segments:
        return None
    folded = latest_point_records(replay)
    status_counts: dict = {}
    for record in folded.values():
        status = str(record.get("status"))
        status_counts[status] = status_counts.get(status, 0) + 1
    return {
        "segments": len(replay.segments),
        "records": len(replay.records),
        "points": len(folded),
        "status_counts": status_counts,
        "truncated_segments": [
            os.path.basename(path) for path in replay.truncated_segments
        ],
    }


def collect_verification(*, jobs: int = 2) -> dict:
    """Run the bounded verification lanes and fold their summaries.

    One sharded exhaustive point, a short swarm, and one differential
    stream — the same trio the CI ``verify-smoke`` lane runs.  The
    exhaustive result travels through ``ExplorationResult.to_jsonable`` /
    ``from_jsonable`` so the summary carries the canonical serialized form
    and the round trip stays exercised in the pipeline.  An active
    ``REPRO_VERIFY_MUTATE`` knob flows into every lane, so a mutated run is
    visibly unverified in summary.json rather than silently green.
    """
    from repro.verification.checker import ExplorationResult
    from repro.verification.differential import StreamConfig, run_differential
    from repro.verification.model import ModelConfig, mutation_from_env
    from repro.verification.parallel import check_sharded
    from repro.verification.walker import run_swarm

    mutation = mutation_from_env()
    exploration = check_sharded(
        ModelConfig(n_cores=2, n_ops=1, protocol="MEUSI", value_base=2),
        jobs=jobs,
        mutation=mutation,
        max_states=200_000,
    )
    exhaustive = ExplorationResult.from_jsonable(exploration.result.to_jsonable())
    swarm = run_swarm(
        ModelConfig(n_cores=2, n_ops=2, protocol="MEUSI", value_base=2),
        n_walkers=4,
        max_steps=400,
        seed=0,
        mutation=mutation,
    )
    differential = run_differential(
        StreamConfig(protocol="MEUSI", seed=0), mutation=mutation
    )
    return {
        "mutation": mutation,
        "exhaustive": exhaustive.summary(),
        "exhaustive_jobs": exploration.jobs,
        "swarm": swarm.summary(),
        "differential": differential.summary(),
        "verified": exhaustive.verified and swarm.verified and differential.verified,
    }


def collect_obs_profile(obs_dir: str) -> dict | None:
    """Fold telemetry event segments into a compact profile digest.

    A ``REPRO_OBS=full`` campaign leaves JSONL event segments under the obs
    directory (``REPRO_OBS_DIR``, default ``results/obs``); this folds them
    into the top boundary-phase costs plus bail-reason and merge-gate counter
    groups.  Telemetry is strictly optional: a missing or empty directory
    (every ``REPRO_OBS=off`` run) returns ``None`` and the summary simply
    omits the section.
    """
    try:
        fold = fold_events(obs_dir)
    except OSError:
        return None
    if fold is None:
        return None
    profile = profile_summary(fold)
    profile["counters"] = fold.get("counters", {})
    profile["n_events"] = fold.get("n_events", 0)
    profile["n_segments"] = fold.get("n_segments", 0)
    return profile


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--obs-dir",
        default=None,
        help=(
            "directory holding REPRO_OBS=full JSONL event segments "
            "(default: REPRO_OBS_DIR or results/obs); folded into the "
            "summary's `profile` section when present"
        ),
    )
    parser.add_argument(
        "--runner-results-dir",
        # cwd-relative, matching the runner's default, so running both tools
        # from the same directory always lines the records up.
        default=os.path.join("results", "experiments"),
        help=(
            "directory holding per-experiment JSON records written by "
            "`python -m repro.experiments.runner --jobs N`; records matching "
            "this summary's scale/max_cores are folded into summary.json"
        ),
    )
    args = parser.parse_args(argv)

    scale = float(os.environ.get("REPRO_SCALE", 0.35))
    max_cores = int(os.environ.get("REPRO_MAX_CORES", 32))
    settings.set_scale(scale)
    settings.set_max_cores(max_cores)

    summary = {"scale": scale, "max_cores": max_cores}
    timings = {}

    runner_records = collect_runner_records(
        args.runner_results_dir, scale=scale, max_cores=max_cores
    )
    if runner_records:
        summary["runner_experiments"] = runner_records
        failed = [r["experiment_id"] for r in runner_records.values() if r.get("status") != "ok"]
        if failed:
            print(f"runner records report failures: {', '.join(failed)}", file=sys.stderr)

    point_records = collect_point_records(
        args.runner_results_dir, scale=scale, max_cores=max_cores
    )
    if point_records:
        summary["sweep_points"] = point_records

    try:
        journal_records = collect_journal_records(args.runner_results_dir)
    except JournalCorruptError as exc:
        print(f"result journal corrupt beyond the recoverable tail: {exc}", file=sys.stderr)
        print(
            "refusing to fold partial campaign data; re-run the campaign or move "
            "the journal directory aside",
            file=sys.stderr,
        )
        return 3
    if journal_records:
        summary["journal"] = journal_records
        if journal_records["truncated_segments"]:
            torn = ", ".join(journal_records["truncated_segments"])
            print(f"journal: recovered torn tail in {torn}", file=sys.stderr)
        quarantined = journal_records["status_counts"].get("quarantined", 0)
        if quarantined:
            print(f"journal: {quarantined} point(s) quarantined", file=sys.stderr)

    obs_dir = args.obs_dir
    if obs_dir is None:
        obs_dir = os.environ.get("REPRO_OBS_DIR") or os.path.join("results", "obs")
    obs_profile = collect_obs_profile(obs_dir)
    if obs_profile is not None:
        summary["profile"] = obs_profile
        print(
            f"obs: folded {obs_profile['n_events']} event(s) from "
            f"{obs_profile['n_segments']} segment(s)",
            file=sys.stderr,
        )

    def timed(name, fn, *args, **kwargs):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        timings[name] = round(time.perf_counter() - start, 1)
        print(f"[{name}] done in {timings[name]}s", flush=True)
        return result

    core_counts = [c for c in (1, 8, 32, 64, 128) if c <= max_cores]

    summary["verification"] = timed("verification", collect_verification)
    if not summary["verification"]["verified"]:
        print(
            "verification lanes report a violation (see summary.json `verification`)",
            file=sys.stderr,
        )

    summary["figure10"] = timed("figure10", figure10_speedups.run, core_counts=core_counts)
    summary["figure11"] = timed(
        "figure11", figure11_amat.run, core_points=[c for c in (8, 32, 128) if c <= max_cores]
    )
    summary["figure2"] = timed(
        "figure2", figure02_histogram_bins.run, bin_counts=(32, 256, 2048, 16384), n_cores=max_cores
    )
    summary["figure12"] = {
        str(bins): rows
        for bins, rows in timed(
            "figure12", figure12_privatization.run, core_counts=core_counts
        ).items()
    }
    summary["figure13_low"] = timed(
        "figure13_low", figure13_refcount.run_immediate, CountMode.LOW, core_counts
    )
    summary["figure13_high"] = timed(
        "figure13_high", figure13_refcount.run_immediate, CountMode.HIGH, core_counts
    )
    summary["figure13_delayed"] = timed(
        "figure13_delayed", figure13_refcount.run_delayed, (1, 10, 100, 400), n_cores=max_cores
    )
    summary["figure8"] = timed(
        "figure8",
        figure08_verification.run,
        core_counts=(1, 2),
        op_counts=(1, 2, 4),
        max_states=150_000,
    )
    summary["traffic"] = timed("traffic", traffic_reduction.run, n_cores=max_cores)
    summary["sensitivity"] = timed("sensitivity", sensitivity_reduction_unit.run, n_cores=max_cores)
    summary["sensitivity_topology"] = timed(
        "sensitivity_topology", sensitivity_topology.run, n_cores=min(16, max_cores)
    )
    summary["table2"] = timed("table2", table2_benchmarks.run)
    summary["timings"] = timings

    os.makedirs(os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "results"), exist_ok=True)
    output = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "results", "summary.json"
    )
    with open(output, "w") as handle:
        json.dump(summary, handle, indent=2, default=str)
    print(f"wrote {output}", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
