"""Figure 8: exhaustive verification costs of MESI vs. MEUSI.

The paper runs Murphi on reduced models of the two protocols, sweeping the
number of cores (2-10) and the number of commutative-update operation types
(2-20), and observes that verification cost is dominated by the number of
cores and hierarchy levels, not by the number of commutative operations.

This experiment reproduces that study with the Python explicit-state checker:
for each (protocol, cores, ops) point it reports the reachable state count,
transition count, wall-clock time, and whether all invariants held.  Points
whose state space exceeds the configured budget are reported as incomplete,
mirroring Murphi runs that exhaust memory.

Each (protocol, cores, ops) verification is one sweep point; a point replayed
from the persistent cache reports the wall-clock time recorded when it was
first verified.
"""

from __future__ import annotations

from functools import partial
from typing import List, Mapping, Sequence

from repro.experiments.sweep import ExecutionContext, FuncPoint, SweepSpec, execute
from repro.experiments.tables import print_table
from repro.verification import verify_protocol

#: Default sweep kept small enough for seconds-level runs; the paper's full
#: sweep (2-10 cores, 2-20 ops) can be requested explicitly, subject to the
#: state budget (like Murphi, the checker gives up past a memory budget).
DEFAULT_CORE_COUNTS = (1, 2)
DEFAULT_OP_COUNTS = (1, 2, 4)


def _verify_point(
    ctx: ExecutionContext, *, protocol: str, n_cores: int, n_ops: int, max_states: int
) -> dict:
    """Run one exhaustive verification and report it as a row dictionary."""
    result = verify_protocol(protocol, n_cores, n_ops=n_ops, max_states=max_states)
    return {
        "protocol": protocol,
        "n_cores": n_cores,
        "n_ops": n_ops if protocol.upper() != "MESI" else 0,
        "states": result.n_states,
        "transitions": result.n_transitions,
        "time_s": result.elapsed_seconds,
        "verified": result.verified,
        "completed": result.completed,
    }


def sweep_spec(
    protocols: Sequence[str] = ("MESI", "MEUSI"),
    core_counts: Sequence[int] = DEFAULT_CORE_COUNTS,
    op_counts: Sequence[int] = DEFAULT_OP_COUNTS,
    *,
    max_states: int = 300_000,
) -> SweepSpec:
    """The verification grid: protocol x cores x commutative op count."""
    protocols = tuple(protocols)
    core_counts = tuple(core_counts)
    op_counts = tuple(op_counts)

    def grid():
        for protocol in protocols:
            for n_cores in core_counts:
                for n_ops in op_counts:
                    if protocol.upper() == "MESI" and n_ops != op_counts[0]:
                        # MESI has no commutative updates; its cost is
                        # independent of the op count, so run it once per
                        # core count.
                        continue
                    yield protocol, n_cores, n_ops

    # Duplicate grid values yield duplicate rows but a single point each.
    points: List[FuncPoint] = []
    for protocol, n_cores, n_ops in dict.fromkeys(grid()):
        points.append(
            FuncPoint(
                f"{protocol}/c{n_cores}/ops{n_ops}",
                partial(
                    _verify_point,
                    protocol=protocol,
                    n_cores=n_cores,
                    n_ops=n_ops,
                    max_states=max_states,
                ),
                fingerprint_data={
                    "protocol": protocol,
                    "n_cores": n_cores,
                    "n_ops": n_ops,
                    "max_states": max_states,
                },
            )
        )

    def build(results: Mapping[str, object]) -> List[dict]:
        return [
            results[f"{protocol}/c{n_cores}/ops{n_ops}"]
            for protocol, n_cores, n_ops in grid()
        ]

    return SweepSpec("figure8", points, build)


def run(
    protocols: Sequence[str] = ("MESI", "MEUSI"),
    core_counts: Sequence[int] = DEFAULT_CORE_COUNTS,
    op_counts: Sequence[int] = DEFAULT_OP_COUNTS,
    *,
    max_states: int = 300_000,
) -> List[dict]:
    """Run the verification-cost sweep and return one row per point."""
    spec = sweep_spec(protocols, core_counts, op_counts, max_states=max_states)
    return spec.rows(execute(spec))


def render(rows: List[dict]) -> None:
    """Print the Fig. 8 style table."""
    print_table(
        rows,
        columns=[
            "protocol",
            "n_cores",
            "n_ops",
            "states",
            "transitions",
            "time_s",
            "verified",
            "completed",
        ],
        title="Figure 8: exhaustive verification cost (state-space size and time)",
    )


def main() -> List[dict]:
    """Regenerate the Fig. 8 style table."""
    rows = run()
    render(rows)
    return rows


if __name__ == "__main__":
    main()
