"""Figure 12: histogram reduction variable — COUP vs. software privatization.

The paper modifies ``hist`` to treat the histogram as a reduction variable and
compares COUP against core-level privatization (one replica per thread) and
socket-level privatization (one replica per socket, updated with atomics), at
512 bins and 16K bins, on 1-128 cores.  With few bins, core-level privatization
amortises its reduction phase well and nearly matches COUP; with many bins the
reduction phase and cache pressure dominate and COUP wins by 2.5x.

Expressed as a sweep spec: a 1-core MESI baseline point per bin count, plus
(COUP, core-privatized, socket-privatized) points per core count.  The
baseline shares its trace with the 1-core COUP point through the engine's
trace cache.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Mapping, Optional, Sequence

from repro.experiments import settings
from repro.experiments.sweep import SimPoint, SweepSpec, WorkloadSpec, execute
from repro.experiments.tables import print_table
from repro.sim.config import table1_config
from repro.software.privatization import PrivatizationLevel
from repro.workloads import HistogramWorkload, UpdateStyle

#: Bin counts shown in Fig. 12a and Fig. 12b.
PAPER_BIN_COUNTS = (512, 16384)


def _panel_points(
    n_bins: int, core_counts: Sequence[int], n_items: int
) -> List[SimPoint]:
    """Sweep points for one bin count, keys prefixed with the bin count."""
    hist = partial(
        HistogramWorkload,
        n_bins=n_bins,
        n_items=n_items,
        update_style=UpdateStyle.COMMUTATIVE,
    )
    shared = WorkloadSpec.plain(hist)

    points = [
        # Single-core MESI run of the plain histogram: the normalisation
        # baseline for all three schemes.
        SimPoint(f"bins{n_bins}/c1/baseline", shared, "MESI", 1, table1_config(1))
    ]
    for n_cores in core_counts:
        config = table1_config(n_cores)
        points.append(SimPoint(f"bins{n_bins}/c{n_cores}/coup", shared, "COUP", n_cores, config))
        points.append(
            SimPoint(
                f"bins{n_bins}/c{n_cores}/core-priv",
                WorkloadSpec.privatized(hist, PrivatizationLevel.CORE),
                "MESI",
                n_cores,
                config,
            )
        )
        points.append(
            SimPoint(
                f"bins{n_bins}/c{n_cores}/socket-priv",
                WorkloadSpec.privatized(
                    hist, PrivatizationLevel.SOCKET, cores_per_socket=config.cores_per_chip
                ),
                "MESI",
                n_cores,
                config,
            )
        )
    return points


def _panel_rows(
    results: Mapping[str, object], n_bins: int, core_counts: Sequence[int]
) -> List[dict]:
    baseline = results[f"bins{n_bins}/c1/baseline"]
    rows: List[dict] = []
    for n_cores in core_counts:
        coup = results[f"bins{n_bins}/c{n_cores}/coup"]
        core_priv = results[f"bins{n_bins}/c{n_cores}/core-priv"]
        socket_priv = results[f"bins{n_bins}/c{n_cores}/socket-priv"]
        rows.append(
            {
                "n_bins": n_bins,
                "n_cores": n_cores,
                "coup_speedup": baseline.run_cycles / coup.run_cycles,
                "core_privatization_speedup": baseline.run_cycles / core_priv.run_cycles,
                "socket_privatization_speedup": baseline.run_cycles / socket_priv.run_cycles,
            }
        )
    return rows


def sweep_spec(
    bin_counts: Sequence[int] = PAPER_BIN_COUNTS,
    core_counts: Optional[Sequence[int]] = None,
    *,
    n_items: Optional[int] = None,
) -> SweepSpec:
    """Both panels of Fig. 12 as one grid."""
    bin_counts = tuple(bin_counts)
    core_counts = settings.sweep_with_baseline(core_counts)
    n_items = n_items if n_items is not None else settings.scaled(24_000)

    points: List[SimPoint] = []
    # Duplicate bin counts / core counts yield duplicate rows but one point.
    deduped_cores = list(dict.fromkeys(core_counts))
    for n_bins in dict.fromkeys(bin_counts):
        points.extend(_panel_points(n_bins, deduped_cores, n_items))

    def build(results: Mapping[str, object]) -> Dict[int, List[dict]]:
        return {n_bins: _panel_rows(results, n_bins, core_counts) for n_bins in bin_counts}

    return SweepSpec("figure12", points, build)


def run_bin_count(
    n_bins: int,
    core_counts: Optional[Sequence[int]] = None,
    *,
    n_items: Optional[int] = None,
) -> List[dict]:
    """Speedup rows for one bin count (one row per core count)."""
    spec = sweep_spec((n_bins,), core_counts, n_items=n_items)
    return spec.rows(execute(spec))[n_bins]


def run(
    bin_counts: Sequence[int] = PAPER_BIN_COUNTS,
    core_counts: Optional[Sequence[int]] = None,
) -> Dict[int, List[dict]]:
    """Run both panels of Fig. 12."""
    spec = sweep_spec(bin_counts, core_counts)
    return spec.rows(execute(spec))


def render(results: Dict[int, List[dict]]) -> None:
    """Print one Fig. 12 table per bin count."""
    for n_bins, rows in results.items():
        print_table(
            rows,
            columns=[
                "n_cores",
                "coup_speedup",
                "core_privatization_speedup",
                "socket_privatization_speedup",
            ],
            title=f"Figure 12: hist with {n_bins} bins (speedup over 1-core run)",
        )
        print()


def main() -> Dict[int, List[dict]]:
    """Regenerate Fig. 12 and print one table per bin count."""
    results = run()
    render(results)
    return results


if __name__ == "__main__":
    main()
