"""Figure 12: histogram reduction variable — COUP vs. software privatization.

The paper modifies ``hist`` to treat the histogram as a reduction variable and
compares COUP against core-level privatization (one replica per thread) and
socket-level privatization (one replica per socket, updated with atomics), at
512 bins and 16K bins, on 1-128 cores.  With few bins, core-level privatization
amortises its reduction phase well and nearly matches COUP; with many bins the
reduction phase and cache pressure dominate and COUP wins by 2.5x.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments import settings
from repro.experiments.tables import print_table
from repro.sim.config import table1_config
from repro.sim.simulator import simulate
from repro.software.privatization import PrivatizationLevel
from repro.workloads import HistogramWorkload, UpdateStyle

#: Bin counts shown in Fig. 12a and Fig. 12b.
PAPER_BIN_COUNTS = (512, 16384)


def run_bin_count(
    n_bins: int,
    core_counts: Optional[Sequence[int]] = None,
    *,
    n_items: Optional[int] = None,
) -> List[dict]:
    """Speedup rows for one bin count (one row per core count)."""
    core_counts = list(core_counts) if core_counts else settings.core_sweep()
    if 1 not in core_counts:
        core_counts = [1] + core_counts
    n_items = n_items if n_items is not None else settings.scaled(24_000)

    def make_workload() -> HistogramWorkload:
        return HistogramWorkload(
            n_bins=n_bins, n_items=n_items, update_style=UpdateStyle.COMMUTATIVE
        )

    baseline = simulate(make_workload().generate(1), table1_config(1), "MESI", track_values=False)

    rows: List[dict] = []
    for n_cores in core_counts:
        config = table1_config(n_cores)
        coup = simulate(make_workload().generate(n_cores), config, "COUP", track_values=False)
        core_priv = simulate(
            make_workload().generate_privatized(n_cores, level=PrivatizationLevel.CORE),
            config,
            "MESI",
            track_values=False,
        )
        socket_priv = simulate(
            make_workload().generate_privatized(
                n_cores,
                level=PrivatizationLevel.SOCKET,
                cores_per_socket=config.cores_per_chip,
            ),
            config,
            "MESI",
            track_values=False,
        )
        rows.append(
            {
                "n_bins": n_bins,
                "n_cores": n_cores,
                "coup_speedup": baseline.run_cycles / coup.run_cycles,
                "core_privatization_speedup": baseline.run_cycles / core_priv.run_cycles,
                "socket_privatization_speedup": baseline.run_cycles / socket_priv.run_cycles,
            }
        )
    return rows


def run(
    bin_counts: Sequence[int] = PAPER_BIN_COUNTS,
    core_counts: Optional[Sequence[int]] = None,
) -> Dict[int, List[dict]]:
    """Run both panels of Fig. 12."""
    return {n_bins: run_bin_count(n_bins, core_counts) for n_bins in bin_counts}


def main() -> Dict[int, List[dict]]:
    """Regenerate Fig. 12 and print one table per bin count."""
    results = run()
    for n_bins, rows in results.items():
        print_table(
            rows,
            columns=[
                "n_cores",
                "coup_speedup",
                "core_privatization_speedup",
                "socket_privatization_speedup",
            ],
            title=f"Figure 12: hist with {n_bins} bins (speedup over 1-core run)",
        )
        print()
    return results


if __name__ == "__main__":
    main()
