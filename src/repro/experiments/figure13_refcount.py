"""Figure 13: reference-counting case studies.

Three panels:

* **Fig. 13a** — immediate deallocation, low reference counts: COUP vs. SNZI
  vs. flat atomic counters (XADD), speedup over the 1-core run as cores grow.
  SNZI suffers when counts oscillate around zero; COUP wins.
* **Fig. 13b** — immediate deallocation, high reference counts: SNZI's best
  case; it overtakes COUP at high core counts, while COUP still beats XADD.
* **Fig. 13c** — delayed deallocation: COUP (commutative counters + a modified
  bitmap) vs. Refcache (per-thread delta caches), as the number of updates per
  epoch grows.  COUP wins across the sweep, by up to 2.3x in the paper.

Expressed as a sweep spec: the immediate panels reuse their 1-core XADD sweep
point as the normalisation baseline (the single-core count is always in the
sweep), so no separate baseline simulation is run.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments import settings
from repro.experiments.sweep import SimPoint, SweepSpec, WorkloadSpec, execute
from repro.experiments.tables import print_table
from repro.sim.config import table1_config
from repro.workloads import (
    CountMode,
    DelayedRefcountWorkload,
    ImmediateRefcountWorkload,
    RefcountScheme,
)

#: (row column prefix, refcount scheme, protocol) for the immediate panels.
_IMMEDIATE_SCHEMES = (
    ("coup", RefcountScheme.COUP, "COUP"),
    ("xadd", RefcountScheme.XADD, "MESI"),
    ("snzi", RefcountScheme.SNZI, "MESI"),
)


def _immediate_grid(
    prefix: str,
    count_mode: CountMode,
    core_counts: Sequence[int],
    n_counters: int,
    updates_per_thread: int,
) -> Tuple[List[SimPoint], dict]:
    """Points and the per-scheme workload specs for one immediate panel."""
    workloads = {
        label: WorkloadSpec.plain(
            partial(
                ImmediateRefcountWorkload,
                n_counters=n_counters,
                updates_per_thread=updates_per_thread,
                scheme=scheme,
                count_mode=count_mode,
            )
        )
        for label, scheme, _protocol in _IMMEDIATE_SCHEMES
    }
    points: List[SimPoint] = []
    # Duplicate core counts yield duplicate rows but a single sweep point.
    for n_cores in dict.fromkeys(core_counts):
        config = table1_config(n_cores)
        for label, _scheme, protocol in _IMMEDIATE_SCHEMES:
            points.append(
                SimPoint(
                    f"{prefix}/c{n_cores}/{label}", workloads[label], protocol, n_cores, config
                )
            )
    return points, workloads


def _immediate_rows(
    results: Mapping[str, object],
    prefix: str,
    count_mode: CountMode,
    core_counts: Sequence[int],
) -> List[dict]:
    # The 1-core XADD run (flat atomic counters under MESI) is the paper's
    # normalisation baseline; it is always part of the sweep.
    baseline = results[f"{prefix}/c1/xadd"]
    rows: List[dict] = []
    for n_cores in core_counts:
        # Work grows with the number of threads (fixed updates per thread), so
        # throughput-style speedup = (work scale) * (baseline time / time).
        row = {"count_mode": count_mode.value, "n_cores": n_cores}
        for label, _scheme, _protocol in _IMMEDIATE_SCHEMES:
            result = results[f"{prefix}/c{n_cores}/{label}"]
            row[f"{label}_speedup"] = n_cores * baseline.run_cycles / result.run_cycles
        rows.append(row)
    return rows


def immediate_sweep_spec(
    count_mode: CountMode,
    core_counts: Optional[Sequence[int]] = None,
    *,
    n_counters: int = 1024,
    updates_per_thread: Optional[int] = None,
    prefix: str = "immediate",
) -> SweepSpec:
    """Fig. 13a (low counts) or Fig. 13b (high counts) as a grid."""
    core_counts = settings.sweep_with_baseline(core_counts)
    updates_per_thread = (
        updates_per_thread if updates_per_thread is not None else settings.scaled(600)
    )
    points, _workloads = _immediate_grid(
        prefix, count_mode, core_counts, n_counters, updates_per_thread
    )

    def build(results: Mapping[str, object]) -> List[dict]:
        return _immediate_rows(results, prefix, count_mode, core_counts)

    return SweepSpec("figure13-immediate", points, build)


def delayed_sweep_spec(
    updates_per_epoch_values: Sequence[int] = (1, 10, 100, 400),
    *,
    n_cores: Optional[int] = None,
    n_counters: Optional[int] = None,
    prefix: str = "delayed",
) -> SweepSpec:
    """Fig. 13c as a grid: (COUP, Refcache) per updates-per-epoch value."""
    updates_per_epoch_values = tuple(updates_per_epoch_values)
    n_cores = n_cores if n_cores is not None else min(settings.max_cores(), 64)
    n_counters = n_counters if n_counters is not None else settings.scaled(4096)
    config = table1_config(n_cores)

    points: List[SimPoint] = []
    n_epochs_of: Dict[int, int] = {}
    for updates_per_epoch in dict.fromkeys(updates_per_epoch_values):
        schemes = {
            "coup": (RefcountScheme.COUP, "COUP"),
            "refcache": (RefcountScheme.REFCACHE, "MESI"),
        }
        for label, (scheme, protocol) in schemes.items():
            build_workload = partial(
                DelayedRefcountWorkload,
                n_counters=n_counters,
                updates_per_epoch=updates_per_epoch,
                scheme=scheme,
            )
            points.append(
                SimPoint(
                    f"{prefix}/u{updates_per_epoch}/{label}",
                    WorkloadSpec.plain(build_workload),
                    protocol,
                    n_cores,
                    config,
                )
            )
        n_epochs_of[updates_per_epoch] = build_workload().n_epochs

    def build(results: Mapping[str, object]) -> List[dict]:
        rows: List[dict] = []
        for updates_per_epoch in updates_per_epoch_values:
            coup = results[f"{prefix}/u{updates_per_epoch}/coup"]
            refcache = results[f"{prefix}/u{updates_per_epoch}/refcache"]
            # Performance = updates per kilocycle (higher is better), matching
            # the paper's throughput-style y-axis.
            total_updates = updates_per_epoch * n_epochs_of[updates_per_epoch] * n_cores
            rows.append(
                {
                    "updates_per_epoch": updates_per_epoch,
                    "coup_performance": 1000.0 * total_updates / coup.run_cycles,
                    "refcache_performance": 1000.0 * total_updates / refcache.run_cycles,
                    "coup_over_refcache": refcache.run_cycles / coup.run_cycles,
                }
            )
        return rows

    return SweepSpec("figure13-delayed", points, build)


def run_immediate(
    count_mode: CountMode,
    core_counts: Optional[Sequence[int]] = None,
    *,
    n_counters: int = 1024,
    updates_per_thread: Optional[int] = None,
) -> List[dict]:
    """Fig. 13a (low counts) or Fig. 13b (high counts)."""
    spec = immediate_sweep_spec(
        count_mode,
        core_counts,
        n_counters=n_counters,
        updates_per_thread=updates_per_thread,
    )
    return spec.rows(execute(spec))


def run_delayed(
    updates_per_epoch_values: Sequence[int] = (1, 10, 100, 400),
    *,
    n_cores: Optional[int] = None,
    n_counters: Optional[int] = None,
) -> List[dict]:
    """Fig. 13c: delayed deallocation, COUP vs. Refcache."""
    spec = delayed_sweep_spec(
        updates_per_epoch_values, n_cores=n_cores, n_counters=n_counters
    )
    return spec.rows(execute(spec))


def sweep_spec(core_counts: Optional[Sequence[int]] = None) -> SweepSpec:
    """All three Fig. 13 panels as one grid (what the runner schedules)."""
    low = immediate_sweep_spec(CountMode.LOW, core_counts, prefix="low")
    high = immediate_sweep_spec(CountMode.HIGH, core_counts, prefix="high")
    delayed = delayed_sweep_spec(prefix="delayed")

    def build(results: Mapping[str, object]) -> Dict[str, List[dict]]:
        return {
            "immediate_low": low.rows(results),
            "immediate_high": high.rows(results),
            "delayed": delayed.rows(results),
        }

    return SweepSpec("figure13", [*low.points, *high.points, *delayed.points], build)


def run(core_counts: Optional[Sequence[int]] = None) -> Dict[str, List[dict]]:
    """Run all three panels of Fig. 13."""
    spec = sweep_spec(core_counts)
    return spec.rows(execute(spec))


def render(results: Dict[str, List[dict]]) -> None:
    """Print one table per Fig. 13 panel."""
    print_table(
        results["immediate_low"],
        columns=["n_cores", "coup_speedup", "snzi_speedup", "xadd_speedup"],
        title="Figure 13a: immediate deallocation, low reference counts",
    )
    print()
    print_table(
        results["immediate_high"],
        columns=["n_cores", "coup_speedup", "snzi_speedup", "xadd_speedup"],
        title="Figure 13b: immediate deallocation, high reference counts",
    )
    print()
    print_table(
        results["delayed"],
        columns=[
            "updates_per_epoch",
            "coup_performance",
            "refcache_performance",
            "coup_over_refcache",
        ],
        title="Figure 13c: delayed deallocation (updates per kilocycle, higher is better)",
    )


def main() -> Dict[str, List[dict]]:
    """Regenerate Fig. 13 and print one table per panel."""
    results = run()
    render(results)
    return results


if __name__ == "__main__":
    main()
