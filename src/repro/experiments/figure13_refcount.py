"""Figure 13: reference-counting case studies.

Three panels:

* **Fig. 13a** — immediate deallocation, low reference counts: COUP vs. SNZI
  vs. flat atomic counters (XADD), speedup over the 1-core run as cores grow.
  SNZI suffers when counts oscillate around zero; COUP wins.
* **Fig. 13b** — immediate deallocation, high reference counts: SNZI's best
  case; it overtakes COUP at high core counts, while COUP still beats XADD.
* **Fig. 13c** — delayed deallocation: COUP (commutative counters + a modified
  bitmap) vs. Refcache (per-thread delta caches), as the number of updates per
  epoch grows.  COUP wins across the sweep, by up to 2.3x in the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments import settings
from repro.experiments.tables import print_table
from repro.sim.config import table1_config
from repro.sim.simulator import simulate
from repro.workloads import (
    CountMode,
    DelayedRefcountWorkload,
    ImmediateRefcountWorkload,
    RefcountScheme,
)


def run_immediate(
    count_mode: CountMode,
    core_counts: Optional[Sequence[int]] = None,
    *,
    n_counters: int = 1024,
    updates_per_thread: Optional[int] = None,
) -> List[dict]:
    """Fig. 13a (low counts) or Fig. 13b (high counts)."""
    core_counts = list(core_counts) if core_counts else settings.core_sweep()
    if 1 not in core_counts:
        core_counts = [1] + core_counts
    updates_per_thread = (
        updates_per_thread if updates_per_thread is not None else settings.scaled(600)
    )

    def workload(scheme: RefcountScheme) -> ImmediateRefcountWorkload:
        return ImmediateRefcountWorkload(
            n_counters=n_counters,
            updates_per_thread=updates_per_thread,
            scheme=scheme,
            count_mode=count_mode,
        )

    baseline = simulate(
        workload(RefcountScheme.XADD).generate(1), table1_config(1), "MESI", track_values=False
    )

    rows: List[dict] = []
    for n_cores in core_counts:
        config = table1_config(n_cores)
        coup = simulate(
            workload(RefcountScheme.COUP).generate(n_cores), config, "COUP", track_values=False
        )
        xadd = simulate(
            workload(RefcountScheme.XADD).generate(n_cores), config, "MESI", track_values=False
        )
        snzi = simulate(
            workload(RefcountScheme.SNZI).generate(n_cores), config, "MESI", track_values=False
        )
        # Work grows with the number of threads (fixed updates per thread), so
        # throughput-style speedup = (work scale) * (baseline time / time).
        rows.append(
            {
                "count_mode": count_mode.value,
                "n_cores": n_cores,
                "coup_speedup": n_cores * baseline.run_cycles / coup.run_cycles,
                "xadd_speedup": n_cores * baseline.run_cycles / xadd.run_cycles,
                "snzi_speedup": n_cores * baseline.run_cycles / snzi.run_cycles,
            }
        )
    return rows


def run_delayed(
    updates_per_epoch_values: Sequence[int] = (1, 10, 100, 400),
    *,
    n_cores: Optional[int] = None,
    n_counters: Optional[int] = None,
) -> List[dict]:
    """Fig. 13c: delayed deallocation, COUP vs. Refcache."""
    n_cores = n_cores if n_cores is not None else min(settings.max_cores(), 64)
    n_counters = n_counters if n_counters is not None else settings.scaled(4096)
    config = table1_config(n_cores)

    rows: List[dict] = []
    for updates_per_epoch in updates_per_epoch_values:
        coup_workload = DelayedRefcountWorkload(
            n_counters=n_counters,
            updates_per_epoch=updates_per_epoch,
            scheme=RefcountScheme.COUP,
        )
        refcache_workload = DelayedRefcountWorkload(
            n_counters=n_counters,
            updates_per_epoch=updates_per_epoch,
            scheme=RefcountScheme.REFCACHE,
        )
        coup = simulate(coup_workload.generate(n_cores), config, "COUP", track_values=False)
        refcache = simulate(
            refcache_workload.generate(n_cores), config, "MESI", track_values=False
        )
        # Performance = updates per kilocycle (higher is better), matching the
        # paper's throughput-style y-axis.
        total_updates = updates_per_epoch * coup_workload.n_epochs * n_cores
        rows.append(
            {
                "updates_per_epoch": updates_per_epoch,
                "coup_performance": 1000.0 * total_updates / coup.run_cycles,
                "refcache_performance": 1000.0 * total_updates / refcache.run_cycles,
                "coup_over_refcache": refcache.run_cycles / coup.run_cycles,
            }
        )
    return rows


def run(core_counts: Optional[Sequence[int]] = None) -> Dict[str, List[dict]]:
    """Run all three panels of Fig. 13."""
    return {
        "immediate_low": run_immediate(CountMode.LOW, core_counts),
        "immediate_high": run_immediate(CountMode.HIGH, core_counts),
        "delayed": run_delayed(),
    }


def main() -> Dict[str, List[dict]]:
    """Regenerate Fig. 13 and print one table per panel."""
    results = run()
    print_table(
        results["immediate_low"],
        columns=["n_cores", "coup_speedup", "snzi_speedup", "xadd_speedup"],
        title="Figure 13a: immediate deallocation, low reference counts",
    )
    print()
    print_table(
        results["immediate_high"],
        columns=["n_cores", "coup_speedup", "snzi_speedup", "xadd_speedup"],
        title="Figure 13b: immediate deallocation, high reference counts",
    )
    print()
    print_table(
        results["delayed"],
        columns=[
            "updates_per_epoch",
            "coup_performance",
            "refcache_performance",
            "coup_over_refcache",
        ],
        title="Figure 13c: delayed deallocation (updates per kilocycle, higher is better)",
    )
    return results


if __name__ == "__main__":
    main()
