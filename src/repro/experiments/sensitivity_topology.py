"""Topology sensitivity: protocol x workload x off-chip topology, under load.

The paper's traffic-reduction results matter because coherence traffic
contends for finite interconnect bandwidth; this experiment quantifies that
by running each benchmark under every off-chip topology
(:mod:`repro.interconnect.topology`) with the epoch contention model enabled,
plus a *baseline* column — the dancehall with contention disabled, i.e. the
original fixed-latency machine — that every other column is normalised
against.  The baseline points use the stock :func:`table1_config`, so their
results are bit-identical to the legacy interconnect path
(:func:`baseline_matches_legacy` asserts exactly that; the CI
``topology-smoke`` lane runs it against a ``runner --jobs 2`` sweep).

All points of one benchmark share a single materialized trace through the
sweep engine's trace cache, so the whole grid regenerates each workload once.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Mapping, Optional, Sequence

from repro.experiments import settings
from repro.experiments.paper_workloads import PAPER_WORKLOAD_FACTORIES
from repro.experiments.sweep import SimPoint, SweepSpec, WorkloadSpec, execute
from repro.experiments.tables import print_table
from repro.sim.config import TOPOLOGY_NAMES, TopologyConfig, table1_config
from repro.workloads import UpdateStyle

#: Key of the dancehall/no-contention baseline column.
BASELINE = "baseline"

#: Protocols with the update style each one simulates (as in Fig. 11).
_PROTOCOL_STYLES = (("COUP", UpdateStyle.COMMUTATIVE), ("MESI", UpdateStyle.ATOMIC))

#: Default benchmarks: one dense-update and one graph workload keeps the
#: grid affordable (4 topologies + baseline, 2 protocols each).
DEFAULT_BENCHMARKS = ("hist", "pgrank")


def _topology(name: str) -> TopologyConfig:
    """Contention-enabled configuration of one topology."""
    return TopologyConfig(name=name, contention=True)


def default_cores() -> int:
    """Core count of the sensitivity grid (capped like every sweep)."""
    return min(32, settings.max_cores())


def sweep_spec(
    benchmarks: Optional[Sequence[str]] = None,
    topologies: Sequence[str] = TOPOLOGY_NAMES,
    n_cores: Optional[int] = None,
    protocols: Sequence[str] = tuple(name for name, _ in _PROTOCOL_STYLES),
) -> SweepSpec:
    """The grid: benchmark x protocol x (baseline + contention topologies)."""
    benchmarks = list(dict.fromkeys(benchmarks or DEFAULT_BENCHMARKS))
    topologies = list(dict.fromkeys(topologies))
    n_cores = n_cores or default_cores()
    styles = dict(_PROTOCOL_STYLES)
    protocols = list(dict.fromkeys(protocols))

    columns = [(BASELINE, table1_config(n_cores))] + [
        (name, table1_config(n_cores, topology=_topology(name))) for name in topologies
    ]

    points: List[SimPoint] = []
    for name in benchmarks:
        if name not in PAPER_WORKLOAD_FACTORIES:
            raise ValueError(f"unknown benchmark {name!r}")
        factory = PAPER_WORKLOAD_FACTORIES[name]
        for protocol in protocols:
            spec = WorkloadSpec.plain(partial(factory, styles[protocol]))
            for column, config in columns:
                points.append(
                    SimPoint(
                        f"{name}/{column}/{protocol}",
                        spec,
                        protocol,
                        n_cores,
                        config,
                    )
                )

    def build(results: Mapping[str, object]) -> Dict[str, List[dict]]:
        out: Dict[str, List[dict]] = {}
        for name in benchmarks:
            rows: List[dict] = []
            for protocol in protocols:
                baseline = results[f"{name}/{BASELINE}/{protocol}"]
                for column, _config in columns:
                    result = results[f"{name}/{column}/{protocol}"]
                    link_stats = result.link_stats
                    rows.append(
                        {
                            "benchmark": name,
                            "protocol": protocol,
                            "topology": column,
                            "n_cores": n_cores,
                            "run_cycles": result.run_cycles,
                            "amat": result.amat,
                            "offchip_bytes": result.offchip_bytes,
                            "slowdown_vs_baseline": (
                                result.run_cycles / baseline.run_cycles
                                if baseline.run_cycles
                                else 0.0
                            ),
                            "max_link_utilization": (
                                link_stats.max_link_utilization
                                if link_stats is not None
                                else 0.0
                            ),
                            "surcharge_cycles": (
                                link_stats.surcharge_cycles
                                if link_stats is not None
                                else 0.0
                            ),
                        }
                    )
            out[name] = rows
        return out

    return SweepSpec("sensitivity-topology", points, build)


def run(
    benchmarks: Optional[Sequence[str]] = None,
    topologies: Sequence[str] = TOPOLOGY_NAMES,
    n_cores: Optional[int] = None,
    protocols: Sequence[str] = tuple(name for name, _ in _PROTOCOL_STYLES),
) -> Dict[str, List[dict]]:
    """Run the topology sensitivity grid."""
    spec = sweep_spec(benchmarks, topologies, n_cores, protocols)
    return spec.rows(execute(spec))


def baseline_rows(results: Dict[str, List[dict]]) -> List[dict]:
    """The dancehall/no-contention rows of a result set."""
    return [
        row
        for rows in results.values()
        for row in rows
        if row["topology"] == BASELINE
    ]


def baseline_matches_legacy(results: Dict[str, List[dict]]) -> None:
    """Assert the baseline column is bit-identical to the legacy path.

    The baseline points run on the stock :func:`table1_config` machine —
    dancehall, contention off — which must charge exactly the pre-topology
    fixed-latency constants.  This recomputes each baseline point with a
    direct :func:`repro.sim.simulator.simulate` call (no sweep engine, no
    trace cache) and compares ``run_cycles``/``amat``/``offchip_bytes``
    bit-for-bit.  Raises ``AssertionError`` on any divergence; used by the
    CI ``topology-smoke`` lane and ``tests/interconnect``.
    """
    from repro.sim.simulator import simulate

    rows = baseline_rows(results)
    if not rows:
        raise AssertionError("no baseline rows present")
    styles = dict(_PROTOCOL_STYLES)
    for row in rows:
        factory = PAPER_WORKLOAD_FACTORIES[row["benchmark"]]
        workload = factory(styles[row["protocol"]])
        n_cores = row["n_cores"]
        reference = simulate(
            workload.generate(n_cores),
            table1_config(n_cores),
            row["protocol"],
            track_values=False,
        )
        observed = (row["run_cycles"], row["amat"], row["offchip_bytes"])
        expected = (reference.run_cycles, reference.amat, reference.offchip_bytes)
        assert observed == expected, (
            f"baseline {row['benchmark']}/{row['protocol']} diverged from the "
            f"legacy path: {observed} != {expected}"
        )


def render(results: Dict[str, List[dict]]) -> None:
    """Print one topology sensitivity table per benchmark."""
    columns = [
        "protocol",
        "topology",
        "run_cycles",
        "slowdown_vs_baseline",
        "amat",
        "max_link_utilization",
        "surcharge_cycles",
    ]
    for name, rows in results.items():
        print_table(
            rows,
            columns=columns,
            title=(
                f"Topology sensitivity: {name} under contention "
                f"(baseline = dancehall, contention off)"
            ),
        )
        print()


def main() -> Dict[str, List[dict]]:
    """Regenerate the topology sensitivity tables."""
    results = run()
    render(results)
    return results


if __name__ == "__main__":
    main()
