"""Small helpers for printing experiment results as text tables.

Every experiment module returns its results as a list of dictionaries (one
per row) so tests and benchmarks can assert on them, and uses these helpers
to print the same rows the paper's tables and figures report.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence


def format_value(value) -> str:
    """Render one cell: floats get 3 significant decimals, others use str()."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3g}"
    if isinstance(value, int) and abs(value) >= 10000:
        return f"{value:,d}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    *,
    title: Optional[str] = None,
) -> str:
    """Format a list of row dictionaries as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[format_value(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), max(len(cell[i]) for cell in rendered))
        for i, column in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for cells in rendered:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(cells, widths)))
    return "\n".join(lines)


def print_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    *,
    title: Optional[str] = None,
) -> None:
    """Print :func:`format_table` output."""
    print(format_table(rows, columns, title=title))


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, used for summarising speedups across benchmarks."""
    values = [float(v) for v in values]
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError("geometric mean requires positive values")
        product *= value
    return product ** (1.0 / len(values))
