"""Crash-safe append-only result journal for campaign runs.

The campaign runner writes one journal record per completed sweep point (ok,
error, or quarantined) into an append-only write-ahead log under
``<results-dir>/journal/``.  Every append is flushed and ``fsync``'d before
the runner moves on, so a campaign killed at any instant — including mid-write
— leaves a journal whose intact prefix exactly describes the completed work;
``--resume`` replays that prefix and re-executes only what is missing.

Wire format (one record)::

    REPRO-WAL1 <payload-bytes> <crc32-hex8>\\n
    <payload>\\n

where ``payload`` is the record as canonical JSON (``sort_keys``, compact
separators) and the CRC covers the payload bytes.  The payload is compact
JSON, so it can never contain a newline: a header is always found at the
start of the file or immediately after a record's trailing newline, which is
what makes torn-tail detection unambiguous.

Recovery semantics:

* A **torn tail** — the final record truncated or corrupt, with no valid
  record after it — is the expected signature of a crash mid-write.  Replay
  returns every intact record and flags the segment as truncated.
* **Corruption followed by more valid records** cannot be produced by an
  append-only writer crashing; it means the file was damaged after the fact.
  Replay raises :class:`JournalCorruptError` so callers fail loudly instead
  of silently folding partial data.

Each campaign process appends to its own fresh segment file (concurrent
campaigns and resumed campaigns never share a segment), and folding reads
every ``*.wal`` segment in sorted order.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from typing import IO, Dict, List, Mapping, Optional, Tuple

from repro import obs as _obs
from repro.experiments.faults import SimulatedCrash, TornHook

#: Record-header magic; bump the suffix when the wire format changes.
MAGIC = b"REPRO-WAL1"

#: Name of the journal directory under a campaign's results directory.
JOURNAL_DIRNAME = "journal"

#: Point-record fields that legitimately differ between a fault-free run and
#: a faulted-and-resumed run (timing, cache provenance, retry counts).  The
#: deterministic projection used for bit-identity checks excludes them.
NONDETERMINISTIC_FIELDS = frozenset(
    {"elapsed_s", "cached", "attempts", "failures", "error"}
)


class JournalCorruptError(RuntimeError):
    """Journal damage beyond the recoverable torn tail."""


@dataclass(frozen=True, slots=True)
class SegmentReplay:
    """The readable contents of one journal segment."""

    path: str
    records: Tuple[Mapping[str, object], ...]
    #: True when the segment ends in a torn (truncated/corrupt) tail record.
    truncated: bool
    #: Byte offset of the torn tail (== file size for a clean segment).
    intact_bytes: int


@dataclass(frozen=True, slots=True)
class JournalReplay:
    """Every record recovered from a journal directory."""

    segments: Tuple[SegmentReplay, ...]

    @property
    def records(self) -> Tuple[Mapping[str, object], ...]:
        """All records, in (segment name, in-file) order."""
        return tuple(
            record for segment in self.segments for record in segment.records
        )

    @property
    def truncated_segments(self) -> Tuple[str, ...]:
        return tuple(
            segment.path for segment in self.segments if segment.truncated
        )


def journal_dir(results_dir: str) -> str:
    """The journal directory for a campaign results directory."""
    return os.path.join(results_dir, JOURNAL_DIRNAME)


def encode_record(record: Mapping[str, object]) -> bytes:
    """Encode one record in the WAL wire format (header + payload)."""
    payload = json.dumps(record, sort_keys=True, separators=(",", ":")).encode()
    header = b"%s %d %08x\n" % (MAGIC, len(payload), zlib.crc32(payload))
    return header + payload + b"\n"


def _parse_header(line: bytes) -> Optional[Tuple[int, int]]:
    """``(payload length, crc32)`` of a header line, or None if malformed."""
    parts = line.split(b" ")
    if len(parts) != 3 or parts[0] != MAGIC:
        return None
    try:
        length = int(parts[1])
        crc = int(parts[2], 16)
    except ValueError:
        return None
    if length < 0:
        return None
    return length, crc


def replay_segment(path: str) -> SegmentReplay:
    """Replay one segment, recovering the intact record prefix.

    Raises :class:`JournalCorruptError` when damage is *not* confined to the
    tail (a bad record is followed by further valid records).
    """
    with open(path, "rb") as handle:
        data = handle.read()
    records: List[Mapping[str, object]] = []
    pos = 0
    while pos < len(data):
        start = pos
        newline = data.find(b"\n", pos)
        header = _parse_header(data[pos:newline]) if newline != -1 else None
        if header is not None:
            length, crc = header
            payload_start = newline + 1
            payload_end = payload_start + length
            if payload_end + 1 <= len(data) and data[payload_end : payload_end + 1] == b"\n":
                payload = data[payload_start:payload_end]
                if zlib.crc32(payload) == crc:
                    try:
                        record = json.loads(payload)
                    except json.JSONDecodeError:
                        record = None
                    if isinstance(record, dict):
                        records.append(record)
                        pos = payload_end + 1
                        continue
        # The record at `start` is torn or corrupt.  If any later bytes still
        # hold a record header, the damage is mid-file — fail loudly.
        if data.find(b"\n" + MAGIC + b" ", start) != -1:
            raise JournalCorruptError(
                f"{path}: corrupt record at byte {start} is followed by "
                "further records — journal damaged beyond the recoverable tail"
            )
        return SegmentReplay(
            path=path, records=tuple(records), truncated=True, intact_bytes=start
        )
    return SegmentReplay(
        path=path, records=tuple(records), truncated=False, intact_bytes=len(data)
    )


def replay_dir(directory: str) -> JournalReplay:
    """Replay every ``*.wal`` segment under ``directory`` (sorted by name)."""
    if not os.path.isdir(directory):
        return JournalReplay(segments=())
    segments: List[SegmentReplay] = []
    for name in sorted(os.listdir(directory)):
        if name.endswith(".wal"):
            segments.append(replay_segment(os.path.join(directory, name)))
    return JournalReplay(segments=tuple(segments))


def latest_point_records(
    replay: JournalReplay,
) -> Dict[Tuple[str, str], Mapping[str, object]]:
    """Fold point records to one per (experiment id, point key).

    An ``ok`` record always beats a non-ok one (a point that completed in any
    segment stays completed); within the same status class the latest record
    (by segment name, then in-file order) wins.
    """
    folded: Dict[Tuple[str, str], Mapping[str, object]] = {}
    for record in replay.records:
        if record.get("kind") != "point":
            continue
        experiment_id = record.get("experiment_id")
        point = record.get("point")
        if not isinstance(experiment_id, str) or not isinstance(point, str):
            continue
        key = (experiment_id, point)
        existing = folded.get(key)
        if (
            existing is None
            or record.get("status") == "ok"
            or existing.get("status") != "ok"
        ):
            folded[key] = record
    return folded


def fresh_segment_path(directory: str, writer_id: object) -> str:
    """A segment path no other writer has touched.

    Appending to an existing segment whose tail was torn would turn the torn
    tail into unrecoverable mid-file corruption, so every campaign process
    writes a brand-new segment (``segment-<writer>-<k>.wal`` for the first
    free ``k``; the pid-based writer id makes collisions rare, the suffix
    makes them impossible).
    """
    suffix = 0
    while True:
        path = os.path.join(directory, f"segment-{writer_id}-{suffix:03d}.wal")
        if not os.path.exists(path):
            return path
        suffix += 1


class JournalWriter:
    """Append-only, fsync'd writer for one journal segment."""

    __slots__ = ("path", "appended", "_handle", "_torn_hook", "_obs_timing")

    def __init__(self, path: str, *, torn_hook: Optional[TornHook] = None) -> None:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        self.path = path
        self.appended = 0
        self._torn_hook = torn_hook
        self._handle: Optional[IO[bytes]] = open(path, "ab")
        # Telemetry handle grabbed once at construction; None when REPRO_OBS
        # is off or counters-only, so the append path stays a single `is None`
        # test.  Journal contents are never derived from the clock.
        self._obs_timing = _obs.timing_registry()

    def append(self, record: Mapping[str, object]) -> None:
        """Durably append one record (write + flush + fsync).

        With an installed torn-write hook that elects to fire, only a prefix
        of the record reaches the file and :class:`SimulatedCrash` is raised
        — the deterministic stand-in for a campaign killed mid-write.
        """
        if self._handle is None:
            raise ValueError("journal writer is closed")
        data = encode_record(record)
        cut = self._torn_hook(record, len(data)) if self._torn_hook else None
        if cut is not None:
            self._handle.write(data[:cut])
            self._handle.flush()
            os.fsync(self._handle.fileno())
            raise SimulatedCrash(
                f"torn journal write injected: {cut}/{len(data)} bytes of "
                f"record for {record.get('experiment_id')}/{record.get('point')}"
            )
        obs_timing = self._obs_timing
        if obs_timing is not None:
            _obs_t0 = obs_timing.clock()
        self._handle.write(data)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        if obs_timing is not None:
            obs_timing.observe("journal_append", obs_timing.clock() - _obs_t0)
            obs_timing.inc("journal.appends")
        self.appended += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def point_record_projection(record: Mapping[str, object]) -> Dict[str, object]:
    """The deterministic projection of a point record.

    Drops the fields that legitimately differ between a fault-free campaign
    and a faulted-then-resumed one (wall-clock timings, cache provenance,
    retry bookkeeping); everything that remains — status, seed, scale, and
    the full result summary — must be bit-identical.
    """
    return {
        key: value
        for key, value in record.items()
        if key not in NONDETERMINISTIC_FIELDS
    }


def campaign_fingerprint(results_dir: str) -> str:
    """Canonical digest text of a campaign's deterministic point outcomes.

    Folds every per-point JSON record under ``<results_dir>/points/`` into
    one canonical JSON document keyed by ``experiment/point``, using
    :func:`point_record_projection`.  Two campaigns over the same grid must
    produce byte-identical fingerprints regardless of injected faults,
    retries, resumes, scheduling, or cache hits — this is what the chaos CI
    lane and the resume-correctness tests diff.
    """
    import glob

    projected: Dict[str, object] = {}
    pattern = os.path.join(results_dir, "points", "*", "*.json")
    for path in sorted(glob.glob(pattern)):
        with open(path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
        if not isinstance(record, dict):
            continue
        experiment_id = record.get("experiment_id")
        point = record.get("point")
        if not isinstance(experiment_id, str) or not isinstance(point, str):
            continue
        projected[f"{experiment_id}/{point}"] = point_record_projection(record)
    return json.dumps(projected, sort_keys=True, indent=1)
