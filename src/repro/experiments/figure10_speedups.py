"""Figure 10: per-application speedups of COUP and MESI on 1-128 cores.

For each of the five benchmarks, the paper plots the speedup of MESI and COUP
over the single-core MESI run as the core count grows.  COUP always matches or
beats MESI, and the gap widens with the core count: at 128 cores it reaches
2.4x on hist, 34% on spmv, 2.4x on pgrank, 20% on bfs, and 4% on fluidanimate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments import settings
from repro.experiments.paper_workloads import PAPER_WORKLOAD_FACTORIES
from repro.experiments.tables import print_table
from repro.sim.config import table1_config
from repro.sim.simulator import simulate
from repro.workloads import UpdateStyle


def run_benchmark(
    name: str,
    core_counts: Optional[Sequence[int]] = None,
) -> List[dict]:
    """Speedup curve (one row per core count) for one benchmark."""
    if name not in PAPER_WORKLOAD_FACTORIES:
        raise ValueError(f"unknown benchmark {name!r}")
    factory = PAPER_WORKLOAD_FACTORIES[name]
    core_counts = list(core_counts) if core_counts else settings.core_sweep()
    if 1 not in core_counts:
        core_counts = [1] + core_counts

    # Single-core MESI run is the normalisation baseline for both curves.
    baseline_workload = factory(UpdateStyle.ATOMIC).generate(1)
    baseline = simulate(baseline_workload, table1_config(1), "MESI", track_values=False)

    rows: List[dict] = []
    for n_cores in core_counts:
        config = table1_config(n_cores)
        mesi_trace = factory(UpdateStyle.ATOMIC).generate(n_cores)
        coup_trace = factory(UpdateStyle.COMMUTATIVE).generate(n_cores)
        mesi = simulate(mesi_trace, config, "MESI", track_values=False)
        coup = simulate(coup_trace, config, "COUP", track_values=False)
        rows.append(
            {
                "benchmark": name,
                "n_cores": n_cores,
                "mesi_speedup": baseline.run_cycles / mesi.run_cycles,
                "coup_speedup": baseline.run_cycles / coup.run_cycles,
                "coup_over_mesi": mesi.run_cycles / coup.run_cycles,
            }
        )
    return rows


def run(
    benchmarks: Optional[Sequence[str]] = None,
    core_counts: Optional[Sequence[int]] = None,
) -> Dict[str, List[dict]]:
    """Run the full Fig. 10 sweep: every benchmark, every core count."""
    benchmarks = list(benchmarks) if benchmarks else list(PAPER_WORKLOAD_FACTORIES)
    return {name: run_benchmark(name, core_counts) for name in benchmarks}


def main() -> Dict[str, List[dict]]:
    """Regenerate Fig. 10 and print one table per benchmark."""
    results = run()
    for name, rows in results.items():
        print_table(
            rows,
            columns=["n_cores", "mesi_speedup", "coup_speedup", "coup_over_mesi"],
            title=f"Figure 10: {name} speedups (relative to 1-core MESI)",
        )
        print()
    return results


if __name__ == "__main__":
    main()
