"""Figure 10: per-application speedups of COUP and MESI on 1-128 cores.

For each of the five benchmarks, the paper plots the speedup of MESI and COUP
over the single-core MESI run as the core count grows.  COUP always matches or
beats MESI, and the gap widens with the core count: at 128 cores it reaches
2.4x on hist, 34% on spmv, 2.4x on pgrank, 20% on bfs, and 4% on fluidanimate.

The sweep is expressed as a :class:`~repro.experiments.sweep.SweepSpec`: one
simulation point per (benchmark, core count, protocol).  The 1-core MESI
point doubles as the normalisation baseline for both curves — the single-core
count is always part of the sweep, so no separate baseline simulation is run.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Mapping, Optional, Sequence

from repro.experiments import settings
from repro.experiments.paper_workloads import PAPER_WORKLOAD_FACTORIES
from repro.experiments.sweep import SimPoint, SweepSpec, WorkloadSpec, execute
from repro.experiments.tables import print_table
from repro.sim.config import table1_config
from repro.workloads import UpdateStyle


def sweep_spec(
    benchmarks: Optional[Sequence[str]] = None,
    core_counts: Optional[Sequence[int]] = None,
) -> SweepSpec:
    """The full Fig. 10 grid: benchmark x core count x protocol."""
    benchmarks = (
        list(dict.fromkeys(benchmarks)) if benchmarks else list(PAPER_WORKLOAD_FACTORIES)
    )
    core_counts = settings.sweep_with_baseline(core_counts)

    points: List[SimPoint] = []
    for name in benchmarks:
        if name not in PAPER_WORKLOAD_FACTORIES:
            raise ValueError(f"unknown benchmark {name!r}")
        factory = PAPER_WORKLOAD_FACTORIES[name]
        mesi_workload = WorkloadSpec.plain(partial(factory, UpdateStyle.ATOMIC))
        coup_workload = WorkloadSpec.plain(partial(factory, UpdateStyle.COMMUTATIVE))
        # Duplicate core counts are legal in the public API (they produce
        # duplicate rows, as the pre-engine loops did) but map to one point.
        for n_cores in dict.fromkeys(core_counts):
            config = table1_config(n_cores)
            points.append(
                SimPoint(f"{name}/c{n_cores}/MESI", mesi_workload, "MESI", n_cores, config)
            )
            points.append(
                SimPoint(f"{name}/c{n_cores}/COUP", coup_workload, "COUP", n_cores, config)
            )

    def build(results: Mapping[str, object]) -> Dict[str, List[dict]]:
        out: Dict[str, List[dict]] = {}
        for name in benchmarks:
            # The 1-core MESI sweep point is the normalisation baseline for
            # both curves (1 is always in the sweep).
            baseline = results[f"{name}/c1/MESI"]
            rows: List[dict] = []
            for n_cores in core_counts:
                mesi = results[f"{name}/c{n_cores}/MESI"]
                coup = results[f"{name}/c{n_cores}/COUP"]
                rows.append(
                    {
                        "benchmark": name,
                        "n_cores": n_cores,
                        "mesi_speedup": baseline.run_cycles / mesi.run_cycles,
                        "coup_speedup": baseline.run_cycles / coup.run_cycles,
                        "coup_over_mesi": mesi.run_cycles / coup.run_cycles,
                    }
                )
            out[name] = rows
        return out

    return SweepSpec("figure10", points, build)


def run_benchmark(
    name: str,
    core_counts: Optional[Sequence[int]] = None,
) -> List[dict]:
    """Speedup curve (one row per core count) for one benchmark."""
    spec = sweep_spec([name], core_counts)
    return spec.rows(execute(spec))[name]


def run(
    benchmarks: Optional[Sequence[str]] = None,
    core_counts: Optional[Sequence[int]] = None,
) -> Dict[str, List[dict]]:
    """Run the full Fig. 10 sweep: every benchmark, every core count."""
    spec = sweep_spec(benchmarks, core_counts)
    return spec.rows(execute(spec))


def render(results: Dict[str, List[dict]]) -> None:
    """Print one Fig. 10 table per benchmark."""
    for name, rows in results.items():
        print_table(
            rows,
            columns=["n_cores", "mesi_speedup", "coup_speedup", "coup_over_mesi"],
            title=f"Figure 10: {name} speedups (relative to 1-core MESI)",
        )
        print()


def main() -> Dict[str, List[dict]]:
    """Regenerate Fig. 10 and print one table per benchmark."""
    results = run()
    render(results)
    return results


if __name__ == "__main__":
    main()
