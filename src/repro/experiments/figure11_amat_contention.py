"""Figure 11 extended mode: AMAT breakdown with interconnect contention on.

Same grid as :mod:`repro.experiments.figure11_amat` (benchmark x core point x
protocol), but every point runs with the epoch-based contention model enabled
on the default dancehall topology, so the AMAT stacks include the M/D/1
waiting-time surcharges the fixed-latency model cannot show.  Each row
additionally reports the peak per-link utilization.

Registered as experiment id ``figure11-contention`` so it is schedulable at
sweep-point granularity through ``runner --jobs N`` alongside the baseline
``figure11`` (the two share workload traces through the trace cache).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments import figure11_amat
from repro.experiments.sweep import SweepSpec, execute
from repro.sim.config import TopologyConfig

#: Contention-enabled variant of the default machine's topology.  The
#: bandwidth is deliberately modest so the paper-scale workloads produce
#: visible (but not saturated) link utilization.
CONTENTION_TOPOLOGY = TopologyConfig(name="dancehall", contention=True)


def sweep_spec(
    benchmarks: Optional[Sequence[str]] = None,
    core_points: Optional[Sequence[int]] = None,
) -> SweepSpec:
    """The Fig. 11 grid with contention enabled on every point."""
    return figure11_amat.sweep_spec(
        benchmarks,
        core_points,
        topology=CONTENTION_TOPOLOGY,
        experiment_id="figure11-contention",
    )


def run(
    benchmarks: Optional[Sequence[str]] = None,
    core_points: Optional[Sequence[int]] = None,
) -> Dict[str, List[dict]]:
    """Run the contention-enabled Fig. 11 grid."""
    spec = sweep_spec(benchmarks, core_points)
    return spec.rows(execute(spec))


def render(results: Dict[str, List[dict]]) -> None:
    """Print one AMAT-under-load table per benchmark."""
    figure11_amat.render(results)


def main() -> Dict[str, List[dict]]:
    """Regenerate the contention-enabled Fig. 11 tables."""
    results = run()
    render(results)
    return results


if __name__ == "__main__":
    main()
