"""Ablation: how many updates per update-only epoch does COUP need to win?

Sec. 4 argues COUP yields benefits "with as little as two updates per
update-only epoch", whereas software privatization needs many updates per
core and data value to amortise its reduction phase.  This ablation sweeps
the number of commutative updates between reads on a shared array
(:class:`~repro.workloads.synthetic.InterleavedReadUpdateWorkload`) and
reports run time under MESI (atomics), COUP, and RMO, exposing the crossover
points of the three hardware schemes.
"""

from __future__ import annotations

from functools import partial
from typing import List, Mapping, Optional, Sequence

from repro.experiments import settings
from repro.experiments.sweep import SimPoint, SweepSpec, WorkloadSpec, execute
from repro.experiments.tables import print_table
from repro.sim.config import table1_config
from repro.workloads import InterleavedReadUpdateWorkload, UpdateStyle

DEFAULT_UPDATES_PER_READ = (0, 1, 2, 4, 8, 16)

#: (protocol, update style) triple per hardware scheme, in table order.
_SCHEMES = (
    ("mesi", "MESI", UpdateStyle.ATOMIC),
    ("coup", "COUP", UpdateStyle.COMMUTATIVE),
    ("rmo", "RMO", UpdateStyle.REMOTE),
)


def sweep_spec(
    updates_per_read_values: Sequence[int] = DEFAULT_UPDATES_PER_READ,
    *,
    n_cores: Optional[int] = None,
    n_elements: int = 16,
    rounds: Optional[int] = None,
) -> SweepSpec:
    """The interleaving grid: three hardware schemes per updates-per-read."""
    updates_per_read_values = tuple(updates_per_read_values)
    n_cores = n_cores if n_cores is not None else min(32, settings.max_cores())
    rounds = rounds if rounds is not None else settings.scaled(60)
    config = table1_config(n_cores)

    points: List[SimPoint] = []
    # Duplicate sweep values yield duplicate rows but a single point each.
    for updates_per_read in dict.fromkeys(updates_per_read_values):
        for label, protocol, style in _SCHEMES:
            workload = WorkloadSpec.plain(
                partial(
                    InterleavedReadUpdateWorkload,
                    n_elements=n_elements,
                    updates_per_read=updates_per_read,
                    rounds=rounds,
                    update_style=style,
                )
            )
            points.append(
                SimPoint(f"u{updates_per_read}/{label}", workload, protocol, n_cores, config)
            )

    def build(results: Mapping[str, object]) -> List[dict]:
        rows: List[dict] = []
        for updates_per_read in updates_per_read_values:
            mesi = results[f"u{updates_per_read}/mesi"]
            coup = results[f"u{updates_per_read}/coup"]
            rmo = results[f"u{updates_per_read}/rmo"]
            rows.append(
                {
                    "updates_per_read": updates_per_read,
                    "mesi_cycles": mesi.run_cycles,
                    "coup_cycles": coup.run_cycles,
                    "rmo_cycles": rmo.run_cycles,
                    "coup_over_mesi": mesi.run_cycles / coup.run_cycles,
                    "coup_over_rmo": rmo.run_cycles / coup.run_cycles,
                }
            )
        return rows

    return SweepSpec("ablation-interleaving", points, build)


def run(
    updates_per_read_values: Sequence[int] = DEFAULT_UPDATES_PER_READ,
    *,
    n_cores: Optional[int] = None,
    n_elements: int = 16,
    rounds: Optional[int] = None,
) -> List[dict]:
    """Run the interleaving sweep and return one row per updates-per-read value."""
    spec = sweep_spec(
        updates_per_read_values, n_cores=n_cores, n_elements=n_elements, rounds=rounds
    )
    return spec.rows(execute(spec))


def render(rows: List[dict]) -> None:
    """Print the crossover table."""
    print_table(
        rows,
        columns=[
            "updates_per_read",
            "coup_over_mesi",
            "coup_over_rmo",
            "mesi_cycles",
            "coup_cycles",
            "rmo_cycles",
        ],
        title="Ablation: updates per update-only epoch vs. COUP's advantage",
    )


def main() -> List[dict]:
    """Run the ablation and print the crossover table."""
    rows = run()
    render(rows)
    return rows


if __name__ == "__main__":
    main()
