"""Ablation: hierarchical vs. flat reductions.

Sec. 3.2 argues that hierarchical organisations rein in reduction latency: on
a 128-core machine with eight 16-core sockets, a full reduction's critical
path has 8 + 16 = 24 operations instead of 128.  This ablation quantifies the
effect in two ways:

* analytically, using the reduction-operation counts of
  :func:`repro.core.reduction.hierarchical_reduction_ops`, and
* empirically, by running the shared-counter workload under COUP on machines
  with different socket widths (same total cores, different cores-per-chip),
  which changes how many partial updates each L3 bank folds locally before
  the L4 gathers the per-socket results.
"""

from __future__ import annotations

import dataclasses
from functools import partial
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.reduction import flat_reduction_ops, hierarchical_reduction_ops
from repro.experiments import settings
from repro.experiments.sweep import FuncPoint, SimPoint, SweepSpec, WorkloadSpec, execute
from repro.experiments.tables import print_table
from repro.sim.config import table1_config
from repro.workloads import MultiCounterWorkload, UpdateStyle


def analytic_rows(n_cores: int = 128, socket_widths: Sequence[int] = (4, 8, 16, 32)) -> List[dict]:
    """Critical-path reduction operations for several socket widths."""
    rows = []
    for width in socket_widths:
        n_sockets = max(1, n_cores // width)
        rows.append(
            {
                "n_cores": n_cores,
                "cores_per_socket": width,
                "hierarchical_ops": hierarchical_reduction_ops([n_sockets, width]),
                "flat_ops": flat_reduction_ops(n_cores),
            }
        )
    return rows


def simulated_sweep_spec(
    n_cores: Optional[int] = None,
    socket_widths: Sequence[int] = (4, 8, 16),
    *,
    n_counters: int = 16,
    updates_per_core: Optional[int] = None,
) -> SweepSpec:
    """The empirical grid: the same COUP workload per socket width."""
    n_cores = n_cores if n_cores is not None else min(32, settings.max_cores())
    updates_per_core = (
        updates_per_core if updates_per_core is not None else settings.scaled(300)
    )
    widths = [width for width in socket_widths if width <= n_cores]
    # The trace is identical for every socket width (only the machine
    # changes), so every point shares one materialized trace.
    workload = WorkloadSpec.plain(
        partial(
            MultiCounterWorkload,
            n_counters=n_counters,
            updates_per_core=updates_per_core,
            hot_fraction=0.3,
            update_style=UpdateStyle.COMMUTATIVE,
        )
    )
    configs = {
        width: dataclasses.replace(table1_config(n_cores), cores_per_chip=width)
        for width in widths
    }
    # Duplicate socket widths yield duplicate rows but a single point each.
    points = [
        SimPoint(f"width{width}", workload, "COUP", n_cores, configs[width])
        for width in dict.fromkeys(widths)
    ]

    def build(results: Mapping[str, object]) -> List[dict]:
        rows: List[dict] = []
        for width in widths:
            result = results[f"width{width}"]
            rows.append(
                {
                    "n_cores": n_cores,
                    "cores_per_socket": width,
                    "n_sockets": configs[width].n_chips,
                    "run_cycles": result.run_cycles,
                    "amat": result.amat,
                    "full_reductions": result.reductions,
                }
            )
        return rows

    return SweepSpec("ablation-hierarchical-simulated", points, build)


def simulated_rows(
    n_cores: Optional[int] = None,
    socket_widths: Sequence[int] = (4, 8, 16),
    *,
    n_counters: int = 16,
    updates_per_core: Optional[int] = None,
) -> List[dict]:
    """Run the same COUP workload with different socket widths."""
    spec = simulated_sweep_spec(
        n_cores, socket_widths, n_counters=n_counters, updates_per_core=updates_per_core
    )
    return spec.rows(execute(spec))


def sweep_spec(n_cores: Optional[int] = None) -> SweepSpec:
    """Both halves of the ablation as one grid."""
    simulated = simulated_sweep_spec(n_cores)
    analytic = FuncPoint(
        "analytic",
        lambda ctx: analytic_rows(),
        fingerprint_data={"n_cores": 128, "socket_widths": (4, 8, 16, 32)},
    )

    def build(results: Mapping[str, object]) -> dict:
        return {
            "analytic": results["analytic"],
            "simulated": simulated.rows(results),
        }

    return SweepSpec("ablation-hierarchical", [analytic, *simulated.points], build)


def run(n_cores: Optional[int] = None) -> dict:
    """Run both halves of the ablation."""
    spec = sweep_spec(n_cores)
    return spec.rows(execute(spec))


def render(results: Dict[str, List[dict]]) -> None:
    """Print the analytic and simulated tables."""
    print_table(
        results["analytic"],
        title="Ablation: critical-path reduction operations, hierarchical vs. flat (Sec. 3.2)",
    )
    print()
    print_table(
        results["simulated"],
        title="Ablation: COUP run time as the socket width (reduction fan-in) varies",
    )


def main() -> dict:
    results = run()
    render(results)
    return results


if __name__ == "__main__":
    main()
