"""Ablation: hierarchical vs. flat reductions.

Sec. 3.2 argues that hierarchical organisations rein in reduction latency: on
a 128-core machine with eight 16-core sockets, a full reduction's critical
path has 8 + 16 = 24 operations instead of 128.  This ablation quantifies the
effect in two ways:

* analytically, using the reduction-operation counts of
  :func:`repro.core.reduction.hierarchical_reduction_ops`, and
* empirically, by running the shared-counter workload under COUP on machines
  with different socket widths (same total cores, different cores-per-chip),
  which changes how many partial updates each L3 bank folds locally before
  the L4 gathers the per-socket results.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.core.reduction import flat_reduction_ops, hierarchical_reduction_ops
from repro.experiments import settings
from repro.experiments.tables import print_table
from repro.sim.config import table1_config
from repro.sim.simulator import simulate
from repro.workloads import MultiCounterWorkload, UpdateStyle


def analytic_rows(n_cores: int = 128, socket_widths: Sequence[int] = (4, 8, 16, 32)) -> List[dict]:
    """Critical-path reduction operations for several socket widths."""
    rows = []
    for width in socket_widths:
        n_sockets = max(1, n_cores // width)
        rows.append(
            {
                "n_cores": n_cores,
                "cores_per_socket": width,
                "hierarchical_ops": hierarchical_reduction_ops([n_sockets, width]),
                "flat_ops": flat_reduction_ops(n_cores),
            }
        )
    return rows


def simulated_rows(
    n_cores: Optional[int] = None,
    socket_widths: Sequence[int] = (4, 8, 16),
    *,
    n_counters: int = 16,
    updates_per_core: Optional[int] = None,
) -> List[dict]:
    """Run the same COUP workload with different socket widths."""
    n_cores = n_cores if n_cores is not None else min(32, settings.max_cores())
    updates_per_core = (
        updates_per_core if updates_per_core is not None else settings.scaled(300)
    )
    rows: List[dict] = []
    for width in socket_widths:
        if width > n_cores:
            continue
        config = dataclasses.replace(table1_config(n_cores), cores_per_chip=width)
        workload = MultiCounterWorkload(
            n_counters=n_counters,
            updates_per_core=updates_per_core,
            hot_fraction=0.3,
            update_style=UpdateStyle.COMMUTATIVE,
        )
        result = simulate(workload.generate(n_cores), config, "COUP", track_values=False)
        rows.append(
            {
                "n_cores": n_cores,
                "cores_per_socket": width,
                "n_sockets": config.n_chips,
                "run_cycles": result.run_cycles,
                "amat": result.amat,
                "full_reductions": result.reductions,
            }
        )
    return rows


def run(n_cores: Optional[int] = None) -> dict:
    """Run both halves of the ablation."""
    return {
        "analytic": analytic_rows(),
        "simulated": simulated_rows(n_cores),
    }


def main() -> dict:
    results = run()
    print_table(
        results["analytic"],
        title="Ablation: critical-path reduction operations, hierarchical vs. flat (Sec. 3.2)",
    )
    print()
    print_table(
        results["simulated"],
        title="Ablation: COUP run time as the socket width (reduction fan-in) varies",
    )
    return results


if __name__ == "__main__":
    main()
