"""Sec. 5.2 traffic results: off-chip traffic of COUP relative to MESI.

The paper reports that at 128 cores COUP reduces off-chip traffic by 20.2x on
hist, 18% on spmv, 4.9x on pgrank, 20% on bfs, and 18% on fluidanimate.  This
experiment measures off-chip bytes for both protocols at a configurable core
count and reports the reduction factor per benchmark.
"""

from __future__ import annotations

from functools import partial
from typing import List, Mapping, Optional

from repro.experiments import settings
from repro.experiments.paper_workloads import PAPER_WORKLOAD_FACTORIES
from repro.experiments.sweep import SimPoint, SweepSpec, WorkloadSpec, execute
from repro.experiments.tables import print_table
from repro.sim.config import table1_config
from repro.workloads import UpdateStyle


def sweep_spec(n_cores: Optional[int] = None) -> SweepSpec:
    """The traffic grid: (MESI on atomics, COUP on updates) per benchmark."""
    n_cores = n_cores if n_cores is not None else settings.max_cores()
    config = table1_config(n_cores)

    points: List[SimPoint] = []
    for name, factory in PAPER_WORKLOAD_FACTORIES.items():
        points.append(
            SimPoint(
                f"{name}/MESI",
                WorkloadSpec.plain(partial(factory, UpdateStyle.ATOMIC)),
                "MESI",
                n_cores,
                config,
            )
        )
        points.append(
            SimPoint(
                f"{name}/COUP",
                WorkloadSpec.plain(partial(factory, UpdateStyle.COMMUTATIVE)),
                "COUP",
                n_cores,
                config,
            )
        )

    def build(results: Mapping[str, object]) -> List[dict]:
        rows: List[dict] = []
        for name in PAPER_WORKLOAD_FACTORIES:
            mesi = results[f"{name}/MESI"]
            coup = results[f"{name}/COUP"]
            rows.append(
                {
                    "benchmark": name,
                    "n_cores": n_cores,
                    "mesi_offchip_bytes": mesi.offchip_bytes,
                    "coup_offchip_bytes": coup.offchip_bytes,
                    "traffic_reduction": mesi.offchip_bytes / max(1, coup.offchip_bytes),
                    "mesi_invalidations": mesi.invalidations,
                    "coup_invalidations": coup.invalidations,
                }
            )
        return rows

    return SweepSpec("traffic", points, build)


def run(n_cores: Optional[int] = None) -> List[dict]:
    """Measure off-chip traffic under MESI and COUP for every benchmark."""
    spec = sweep_spec(n_cores)
    return spec.rows(execute(spec))


def render(rows: List[dict]) -> None:
    """Print the Sec. 5.2 traffic-reduction table."""
    print_table(
        rows,
        columns=[
            "benchmark",
            "n_cores",
            "mesi_offchip_bytes",
            "coup_offchip_bytes",
            "traffic_reduction",
        ],
        title="Sec. 5.2: off-chip traffic, MESI vs. COUP (reduction factor, higher is better)",
    )


def main() -> List[dict]:
    """Regenerate the Sec. 5.2 traffic-reduction table."""
    rows = run()
    render(rows)
    return rows


if __name__ == "__main__":
    main()
