"""Sec. 5.2 traffic results: off-chip traffic of COUP relative to MESI.

The paper reports that at 128 cores COUP reduces off-chip traffic by 20.2x on
hist, 18% on spmv, 4.9x on pgrank, 20% on bfs, and 18% on fluidanimate.  This
experiment measures off-chip bytes for both protocols at a configurable core
count and reports the reduction factor per benchmark.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments import settings
from repro.experiments.paper_workloads import PAPER_WORKLOAD_FACTORIES
from repro.experiments.tables import print_table
from repro.sim.config import table1_config
from repro.sim.simulator import simulate
from repro.workloads import UpdateStyle


def run(n_cores: Optional[int] = None) -> List[dict]:
    """Measure off-chip traffic under MESI and COUP for every benchmark."""
    n_cores = n_cores if n_cores is not None else settings.max_cores()
    config = table1_config(n_cores)
    rows: List[dict] = []
    for name, factory in PAPER_WORKLOAD_FACTORIES.items():
        mesi = simulate(
            factory(UpdateStyle.ATOMIC).generate(n_cores), config, "MESI", track_values=False
        )
        coup = simulate(
            factory(UpdateStyle.COMMUTATIVE).generate(n_cores),
            config,
            "COUP",
            track_values=False,
        )
        rows.append(
            {
                "benchmark": name,
                "n_cores": n_cores,
                "mesi_offchip_bytes": mesi.offchip_bytes,
                "coup_offchip_bytes": coup.offchip_bytes,
                "traffic_reduction": mesi.offchip_bytes / max(1, coup.offchip_bytes),
                "mesi_invalidations": mesi.invalidations,
                "coup_invalidations": coup.invalidations,
            }
        )
    return rows


def main() -> List[dict]:
    """Regenerate the Sec. 5.2 traffic-reduction table."""
    rows = run()
    print_table(
        rows,
        columns=[
            "benchmark",
            "n_cores",
            "mesi_offchip_bytes",
            "coup_offchip_bytes",
            "traffic_reduction",
        ],
        title="Sec. 5.2: off-chip traffic, MESI vs. COUP (reduction factor, higher is better)",
    )
    return rows


if __name__ == "__main__":
    main()
