"""Shared experiment settings: core-count sweeps and workload scaling.

The paper's runs use billions of instructions on a 128-core simulator; a
pure-Python reproduction must scale inputs down to finish in seconds per
configuration.  All experiments read their scale from one place so that the
whole harness can be made larger (closer to the paper) or smaller (CI-sized)
by a single knob:

* ``REPRO_SCALE`` — a float multiplier applied to workload sizes (default 1.0).
* ``REPRO_MAX_CORES`` — caps the largest simulated core count (default 64 for
  the benchmark harness; the library itself supports 128).

Both can be set as environment variables or overridden programmatically via
:func:`set_scale` / :func:`set_max_cores`.

This module also hosts :data:`ENV_KNOBS`, the registry of **every**
``REPRO_*`` environment knob the reproduction honours — including knobs
consumed elsewhere (the kernel's ``REPRO_SIM_KERNEL`` / ``REPRO_BATCH_SIZE``).
The registry is the single source of truth: the static checker
(``python -m repro.lint``, rule H303) rejects any ``REPRO_*`` read whose
name is not registered here, and requires each registered knob to be
documented in README.md.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True, slots=True)
class EnvKnob:
    """One registered ``REPRO_*`` environment knob."""

    #: Environment variable name (``REPRO_...``).
    name: str
    #: Default value, as the string the environment would carry.
    default: str
    #: Human-readable value domain (for docs and error messages).
    domain: str
    #: One-line description (mirrored in README.md, enforced by lint H303).
    description: str
    #: Dotted module that reads the knob.
    consumer: str


#: The complete environment surface of the reproduction.  Add new knobs
#: here FIRST; rule H303 makes unregistered ``REPRO_*`` reads a lint error.
ENV_KNOBS: Tuple[EnvKnob, ...] = (
    EnvKnob(
        name="REPRO_SCALE",
        default="1.0",
        domain="positive float",
        description="Workload scale multiplier applied to every experiment grid.",
        consumer="repro.experiments.settings",
    ),
    EnvKnob(
        name="REPRO_MAX_CORES",
        default="64",
        domain="positive int",
        description="Cap on the largest simulated core count.",
        consumer="repro.experiments.settings",
    ),
    EnvKnob(
        name="REPRO_SIM_KERNEL",
        default="auto",
        domain="auto | batch | scalar",
        description="Simulation kernel selection: batched, scalar, or adaptive.",
        consumer="repro.sim.kernel",
    ),
    EnvKnob(
        name="REPRO_BATCH_SIZE",
        default="4096",
        domain="positive int",
        description="Upper bound on the batched kernel's per-window access count.",
        consumer="repro.sim.kernel",
    ),
    EnvKnob(
        name="REPRO_SLOW_BATCH",
        default="auto",
        domain="auto | off",
        description="Group retirement of slow accesses: merged fleet or one-at-a-time.",
        consumer="repro.sim.kernel",
    ),
    EnvKnob(
        name="REPRO_FAULT",
        default="",
        domain="fault-injection spec (kind[:param=value,...] joined by ';')",
        description="Deterministic fault injection for the campaign fabric (kill/hang/shm/torn).",
        consumer="repro.experiments.faults",
    ),
    EnvKnob(
        name="REPRO_OBS",
        default="off",
        domain="off | counters | full",
        description="Telemetry mode: disabled, counters only, or counters plus phase timing and JSONL event segments.",
        consumer="repro.obs",
    ),
    EnvKnob(
        name="REPRO_OBS_DIR",
        default="results/obs",
        domain="directory path",
        description="Directory where REPRO_OBS=full writes its JSONL event segments.",
        consumer="repro.obs",
    ),
    EnvKnob(
        name="REPRO_POINT_TIMEOUT",
        default="900",
        domain="positive float seconds",
        description="Base per-sweep-point wall-clock timeout; the supervisor scales it by point size.",
        consumer="repro.experiments.settings",
    ),
    EnvKnob(
        name="REPRO_MAX_ATTEMPTS",
        default="3",
        domain="positive int",
        description="Attempts per sweep point before the supervisor quarantines it.",
        consumer="repro.experiments.settings",
    ),
    EnvKnob(
        name="REPRO_VERIFY_MUTATE",
        default="",
        domain="mutation rule id (see repro.verification.model.MUTATIONS) or empty",
        description="Inject one deliberate protocol-model breakage so every verification lane can prove it catches and minimizes it.",
        consumer="repro.verification.model",
    ),
    EnvKnob(
        name="REPRO_VERIFY_SWARM_SECONDS",
        default="30",
        domain="positive float seconds",
        description="Wall-clock budget for the swarm lane in the verification CLI; bounds how many walks run, never what a walk does.",
        consumer="repro.verification.__main__",
    ),
)


def registered_env_knobs() -> Tuple[EnvKnob, ...]:
    """The registry, for consumers that want a stable accessor."""
    return ENV_KNOBS


def env_knob(name: str) -> EnvKnob:
    """Look up one registered knob by name; raises ``KeyError`` if absent."""
    for knob in ENV_KNOBS:
        if knob.name == name:
            return knob
    raise KeyError(f"unregistered environment knob: {name}")


_DEFAULT_SCALE = 1.0
_DEFAULT_MAX_CORES = 64

_scale: float = float(os.environ.get("REPRO_SCALE", str(_DEFAULT_SCALE)))
_max_cores: int = int(os.environ.get("REPRO_MAX_CORES", str(_DEFAULT_MAX_CORES)))


def scale() -> float:
    """Current workload scale multiplier."""
    return _scale


def set_scale(value: float) -> None:
    """Override the workload scale multiplier (tests use this)."""
    global _scale
    if value <= 0:
        raise ValueError("scale must be positive")
    _scale = value


def scaled(value: int, minimum: int = 1) -> int:
    """Scale an integer workload parameter, keeping it at least ``minimum``."""
    return max(minimum, int(round(value * _scale)))


def max_cores() -> int:
    """Largest core count the experiment sweeps will simulate."""
    return _max_cores


def set_max_cores(value: int) -> None:
    global _max_cores
    if value <= 0:
        raise ValueError("max_cores must be positive")
    _max_cores = value


def point_timeout() -> float:
    """Base per-point wall-clock timeout in seconds (``REPRO_POINT_TIMEOUT``).

    Read at each call (not cached at import) so tests and the chaos CI lane
    can tighten the deadline per campaign.  The supervisor scales this base
    by point size; see :func:`repro.experiments.runner.run_parallel`.
    """
    value = float(os.environ.get("REPRO_POINT_TIMEOUT", "900"))
    if value <= 0:
        raise ValueError("REPRO_POINT_TIMEOUT must be positive")
    return value


def max_attempts() -> int:
    """Attempts per sweep point before quarantine (``REPRO_MAX_ATTEMPTS``)."""
    value = int(os.environ.get("REPRO_MAX_ATTEMPTS", "3"))
    if value < 1:
        raise ValueError("REPRO_MAX_ATTEMPTS must be >= 1")
    return value


def core_sweep(paper_points: Sequence[int] = (1, 32, 64, 96, 128)) -> List[int]:
    """The paper's core-count sweep, capped at :func:`max_cores`.

    The cap always keeps at least the single-core baseline and one multi-core
    point so speedup curves remain meaningful.
    """
    cap = max_cores()
    points = [p for p in paper_points if p <= cap]
    if not points:
        points = [1]
    if len(points) == 1 and cap > 1:
        points.append(cap)
    return points


def sweep_with_baseline(core_counts: Sequence[int] | None = None) -> List[int]:
    """The given core counts (default :func:`core_sweep`) with the 1-core
    baseline always present.

    The speedup figures (10, 12, 13) normalise to the single-core run, and
    their sweep specs reuse the 1-core point as that baseline — so the
    single-core count must always be part of the sweep.
    """
    points = list(core_counts) if core_counts else core_sweep()
    if 1 not in points:
        points = [1] + points
    return points


def amat_core_points(paper_points: Sequence[int] = (8, 32, 128)) -> List[int]:
    """Core counts used by the Fig. 11 AMAT breakdown, capped like the sweep."""
    cap = max_cores()
    points = [p for p in paper_points if p <= cap]
    if not points:
        points = [min(8, cap)]
    if cap not in points and cap >= 8:
        points.append(cap)
    return sorted(set(points))
