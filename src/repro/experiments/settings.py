"""Shared experiment settings: core-count sweeps and workload scaling.

The paper's runs use billions of instructions on a 128-core simulator; a
pure-Python reproduction must scale inputs down to finish in seconds per
configuration.  All experiments read their scale from one place so that the
whole harness can be made larger (closer to the paper) or smaller (CI-sized)
by a single knob:

* ``REPRO_SCALE`` — a float multiplier applied to workload sizes (default 1.0).
* ``REPRO_MAX_CORES`` — caps the largest simulated core count (default 64 for
  the benchmark harness; the library itself supports 128).

Both can be set as environment variables or overridden programmatically via
:func:`set_scale` / :func:`set_max_cores`.
"""

from __future__ import annotations

import os
from typing import List, Sequence

_DEFAULT_SCALE = 1.0
_DEFAULT_MAX_CORES = 64

_scale: float = float(os.environ.get("REPRO_SCALE", _DEFAULT_SCALE))
_max_cores: int = int(os.environ.get("REPRO_MAX_CORES", _DEFAULT_MAX_CORES))


def scale() -> float:
    """Current workload scale multiplier."""
    return _scale


def set_scale(value: float) -> None:
    """Override the workload scale multiplier (tests use this)."""
    global _scale
    if value <= 0:
        raise ValueError("scale must be positive")
    _scale = value


def scaled(value: int, minimum: int = 1) -> int:
    """Scale an integer workload parameter, keeping it at least ``minimum``."""
    return max(minimum, int(round(value * _scale)))


def max_cores() -> int:
    """Largest core count the experiment sweeps will simulate."""
    return _max_cores


def set_max_cores(value: int) -> None:
    global _max_cores
    if value <= 0:
        raise ValueError("max_cores must be positive")
    _max_cores = value


def core_sweep(paper_points: Sequence[int] = (1, 32, 64, 96, 128)) -> List[int]:
    """The paper's core-count sweep, capped at :func:`max_cores`.

    The cap always keeps at least the single-core baseline and one multi-core
    point so speedup curves remain meaningful.
    """
    cap = max_cores()
    points = [p for p in paper_points if p <= cap]
    if not points:
        points = [1]
    if len(points) == 1 and cap > 1:
        points.append(cap)
    return points


def sweep_with_baseline(core_counts: "Sequence[int] | None" = None) -> List[int]:
    """The given core counts (default :func:`core_sweep`) with the 1-core
    baseline always present.

    The speedup figures (10, 12, 13) normalise to the single-core run, and
    their sweep specs reuse the 1-core point as that baseline — so the
    single-core count must always be part of the sweep.
    """
    points = list(core_counts) if core_counts else core_sweep()
    if 1 not in points:
        points = [1] + points
    return points


def amat_core_points(paper_points: Sequence[int] = (8, 32, 128)) -> List[int]:
    """Core counts used by the Fig. 11 AMAT breakdown, capped like the sweep."""
    cap = max_cores()
    points = [p for p in paper_points if p <= cap]
    if not points:
        points = [min(8, cap)]
    if cap not in points and cap >= 8:
        points.append(cap)
    return sorted(set(points))
