"""Table 2: benchmark characteristics.

The paper's Table 2 lists, per benchmark, the input set, the commutative
operation used, and the sequential run time.  This experiment reports the
analogous quantities for the reproduction's scaled workloads: the commutative
operation, trace sizes, the fraction of instructions that are commutative
updates (quoted in Sec. 5.2), and the single-core MESI run time in simulated
megacycles.
"""

from __future__ import annotations

from typing import List

from repro.experiments.paper_workloads import PAPER_WORKLOAD_FACTORIES
from repro.experiments.tables import print_table
from repro.sim.config import table1_config
from repro.sim.simulator import simulate
from repro.workloads import UpdateStyle


def run() -> List[dict]:
    """Build one row per benchmark."""
    rows: List[dict] = []
    config = table1_config(1)
    for name, factory in PAPER_WORKLOAD_FACTORIES.items():
        workload = factory(UpdateStyle.COMMUTATIVE)
        stats = workload.stats(1)
        sequential = simulate(workload.generate(1), config, "MESI", track_values=False)
        rows.append(
            {
                "benchmark": name,
                "comm_ops": workload.comm_op_label,
                "accesses": stats.total_accesses,
                "instructions": stats.total_instructions,
                "comm_op_fraction": stats.comm_op_fraction,
                "seq_run_kcycles": sequential.run_cycles / 1000.0,
            }
        )
    return rows


def main() -> List[dict]:
    """Regenerate Table 2 for the scaled workloads."""
    rows = run()
    print_table(
        rows,
        columns=[
            "benchmark",
            "comm_ops",
            "accesses",
            "instructions",
            "comm_op_fraction",
            "seq_run_kcycles",
        ],
        title="Table 2: benchmark characteristics (scaled inputs)",
    )
    return rows


if __name__ == "__main__":
    main()
