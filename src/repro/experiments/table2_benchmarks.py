"""Table 2: benchmark characteristics.

The paper's Table 2 lists, per benchmark, the input set, the commutative
operation used, and the sequential run time.  This experiment reports the
analogous quantities for the reproduction's scaled workloads: the commutative
operation, trace sizes, the fraction of instructions that are commutative
updates (quoted in Sec. 5.2), and the single-core MESI run time in simulated
megacycles.

Expressed as a sweep spec: per benchmark, one static-statistics point and one
sequential simulation point.  Both share the single materialized 1-core trace
through the engine's trace cache.
"""

from __future__ import annotations

from functools import partial
from typing import List, Mapping

from repro.experiments.paper_workloads import PAPER_WORKLOAD_FACTORIES
from repro.experiments.sweep import (
    ExecutionContext,
    FuncPoint,
    SimPoint,
    SweepSpec,
    WorkloadSpec,
    execute,
)
from repro.experiments.tables import print_table
from repro.sim.config import table1_config
from repro.workloads import UpdateStyle


def _static_stats(ctx: ExecutionContext, factory, workload_spec: WorkloadSpec) -> dict:
    """Static trace characteristics as a JSON-serializable dict."""
    workload = factory(UpdateStyle.COMMUTATIVE)
    stats = workload.stats(1, trace=ctx.trace(workload_spec, 1))
    return {
        "comm_ops": stats.comm_op,
        "accesses": stats.total_accesses,
        "instructions": stats.total_instructions,
        "comm_op_fraction": stats.comm_op_fraction,
    }


def sweep_spec() -> SweepSpec:
    """One statistics point and one 1-core MESI simulation per benchmark."""
    config = table1_config(1)
    points: List = []
    for name, factory in PAPER_WORKLOAD_FACTORIES.items():
        workload_spec = WorkloadSpec.plain(partial(factory, UpdateStyle.COMMUTATIVE))
        points.append(
            FuncPoint(
                f"{name}/stats",
                partial(_static_stats, factory=factory, workload_spec=workload_spec),
                fingerprint_data={"stats_of": list(workload_spec.key(1))},
            )
        )
        points.append(SimPoint(f"{name}/seq", workload_spec, "MESI", 1, config))

    def build(results: Mapping[str, object]) -> List[dict]:
        rows: List[dict] = []
        for name in PAPER_WORKLOAD_FACTORIES:
            stats = results[f"{name}/stats"]
            sequential = results[f"{name}/seq"]
            rows.append(
                {
                    "benchmark": name,
                    **stats,
                    "seq_run_kcycles": sequential.run_cycles / 1000.0,
                }
            )
        return rows

    return SweepSpec("table2", points, build)


def run() -> List[dict]:
    """Build one row per benchmark."""
    spec = sweep_spec()
    return spec.rows(execute(spec))


def render(rows: List[dict]) -> None:
    """Print the Table 2 rows."""
    print_table(
        rows,
        columns=[
            "benchmark",
            "comm_ops",
            "accesses",
            "instructions",
            "comm_op_fraction",
            "seq_run_kcycles",
        ],
        title="Table 2: benchmark characteristics (scaled inputs)",
    )


def main() -> List[dict]:
    """Regenerate Table 2 for the scaled workloads."""
    rows = run()
    render(rows)
    return rows


if __name__ == "__main__":
    main()
