"""Sec. 5.5: sensitivity to reduction-unit throughput.

COUP's performance is barely sensitive to the reduction ALU: swapping the
default 2-stage pipelined 256-bit unit (one line per 2 cycles) for a simple
unpipelined 64-bit unit (one line per 16 cycles) degrades performance by at
most 0.88% in the paper (on bfs at 128 cores).  This experiment runs every
benchmark under COUP with both reduction units and reports the slowdown.

Expressed as a sweep spec: per benchmark, a fast-ALU and a slow-ALU point
over the *same* workload spec — the engine's trace cache materializes each
benchmark trace once and shares it across both machine configurations.
"""

from __future__ import annotations

from functools import partial
from typing import List, Mapping, Optional

from repro.experiments import settings
from repro.experiments.paper_workloads import PAPER_WORKLOAD_FACTORIES
from repro.experiments.sweep import SimPoint, SweepSpec, WorkloadSpec, execute
from repro.experiments.tables import print_table
from repro.sim.config import ReductionUnitConfig, table1_config
from repro.workloads import UpdateStyle


def sweep_spec(n_cores: Optional[int] = None) -> SweepSpec:
    """The sensitivity grid: (fast ALU, slow ALU) per benchmark under COUP."""
    n_cores = n_cores if n_cores is not None else settings.max_cores()
    fast_config = table1_config(n_cores, reduction_unit=ReductionUnitConfig.fast())
    slow_config = table1_config(n_cores, reduction_unit=ReductionUnitConfig.slow())

    points: List[SimPoint] = []
    for name, factory in PAPER_WORKLOAD_FACTORIES.items():
        workload = WorkloadSpec.plain(partial(factory, UpdateStyle.COMMUTATIVE))
        points.append(SimPoint(f"{name}/fast", workload, "COUP", n_cores, fast_config))
        points.append(SimPoint(f"{name}/slow", workload, "COUP", n_cores, slow_config))

    def build(results: Mapping[str, object]) -> List[dict]:
        rows: List[dict] = []
        for name in PAPER_WORKLOAD_FACTORIES:
            fast = results[f"{name}/fast"]
            slow = results[f"{name}/slow"]
            degradation = slow.run_cycles / fast.run_cycles - 1.0
            rows.append(
                {
                    "benchmark": name,
                    "n_cores": n_cores,
                    "fast_alu_cycles": fast.run_cycles,
                    "slow_alu_cycles": slow.run_cycles,
                    "degradation_pct": 100.0 * degradation,
                }
            )
        return rows

    return SweepSpec("sensitivity", points, build)


def run(n_cores: Optional[int] = None) -> List[dict]:
    """Compare fast and slow reduction units under COUP for every benchmark."""
    spec = sweep_spec(n_cores)
    return spec.rows(execute(spec))


def render(rows: List[dict]) -> None:
    """Print the Sec. 5.5 sensitivity table."""
    print_table(
        rows,
        columns=["benchmark", "n_cores", "fast_alu_cycles", "slow_alu_cycles", "degradation_pct"],
        title="Sec. 5.5: sensitivity to reduction-unit throughput (COUP, slow vs. fast ALU)",
    )


def main() -> List[dict]:
    """Regenerate the Sec. 5.5 sensitivity study."""
    rows = run()
    render(rows)
    return rows


if __name__ == "__main__":
    main()
