"""Sec. 5.5: sensitivity to reduction-unit throughput.

COUP's performance is barely sensitive to the reduction ALU: swapping the
default 2-stage pipelined 256-bit unit (one line per 2 cycles) for a simple
unpipelined 64-bit unit (one line per 16 cycles) degrades performance by at
most 0.88% in the paper (on bfs at 128 cores).  This experiment runs every
benchmark under COUP with both reduction units and reports the slowdown.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments import settings
from repro.experiments.paper_workloads import PAPER_WORKLOAD_FACTORIES
from repro.experiments.tables import print_table
from repro.sim.config import ReductionUnitConfig, table1_config
from repro.sim.simulator import simulate
from repro.workloads import UpdateStyle


def run(n_cores: Optional[int] = None) -> List[dict]:
    """Compare fast and slow reduction units under COUP for every benchmark."""
    n_cores = n_cores if n_cores is not None else settings.max_cores()
    fast_config = table1_config(n_cores, reduction_unit=ReductionUnitConfig.fast())
    slow_config = table1_config(n_cores, reduction_unit=ReductionUnitConfig.slow())

    rows: List[dict] = []
    for name, factory in PAPER_WORKLOAD_FACTORIES.items():
        fast = simulate(
            factory(UpdateStyle.COMMUTATIVE).generate(n_cores),
            fast_config,
            "COUP",
            track_values=False,
        )
        slow = simulate(
            factory(UpdateStyle.COMMUTATIVE).generate(n_cores),
            slow_config,
            "COUP",
            track_values=False,
        )
        degradation = slow.run_cycles / fast.run_cycles - 1.0
        rows.append(
            {
                "benchmark": name,
                "n_cores": n_cores,
                "fast_alu_cycles": fast.run_cycles,
                "slow_alu_cycles": slow.run_cycles,
                "degradation_pct": 100.0 * degradation,
            }
        )
    return rows


def main() -> List[dict]:
    """Regenerate the Sec. 5.5 sensitivity study."""
    rows = run()
    print_table(
        rows,
        columns=["benchmark", "n_cores", "fast_alu_cycles", "slow_alu_cycles", "degradation_pct"],
        title="Sec. 5.5: sensitivity to reduction-unit throughput (COUP, slow vs. fast ALU)",
    )
    return rows


if __name__ == "__main__":
    main()
