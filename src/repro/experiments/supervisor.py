"""Supervised worker pool for the campaign runner.

``multiprocessing.Pool`` treats a dead worker as a fatal event and a hung
worker as invisible: one OOM-killed or wedged sweep point stalls or poisons
the whole campaign.  This module replaces the pool with a small supervisor
that owns every task end to end:

* **Per-task deadlines** — each :class:`TaskSpec` carries its own wall-clock
  timeout (the runner scales it by point size); a worker that blows the
  deadline is SIGKILLed and its task retried.
* **Worker-death detection** — the supervisor waits on each worker's process
  sentinel alongside its result pipe, so a worker that dies without
  replying (SIGKILL, segfault, OOM) is detected immediately via its exit,
  not via a broken-pipe error minutes later.
* **Bounded, deterministic retry** — infrastructure failures (death,
  timeout) are retried up to ``max_attempts`` with exponential backoff
  measured in *scheduling events* (dispatches + completions), not seconds:
  after failure ``k`` a task becomes eligible once ``backoff_base << (k-1)``
  further events have occurred.  No clock reads, no random jitter — given
  the same completion order the schedule is exactly reproducible.
* **Quarantine** — a task that exhausts its attempts is reported as
  ``quarantined`` with every failure it accumulated, and the campaign keeps
  going; poison points degrade the run instead of killing it.

Errors *inside* the task function are in-band results, not infrastructure
failures: they are reported once with status ``error`` and never retried
(the task functions are deterministic, so re-running a failing point can
only waste its timeout again).

Workers are plain ``Process`` objects driven over a per-worker ``Pipe``;
they are respawned lazily after a death or a reaping, so a campaign with no
faults pays nothing beyond the pipes.
"""

from __future__ import annotations

import sys
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing.connection import Connection, wait
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

#: The task function every worker runs: ``(payload, attempt) -> value``.
#: The attempt index (0 for the first try) travels to the worker so
#: deterministic fault injection can fire on specific attempts.
WorkerFn = Callable[[Any, int], Any]

#: Structured one-line event sink (worker deaths, reaps, retries, spawns).
EventFn = Callable[[str], None]

#: Structured lifecycle hook for telemetry: ``(event, fields)`` with events
#: ``spawn`` / ``dispatch`` / ``complete`` / ``retry`` / ``quarantine``.
#: ``None`` (the default) costs nothing; the runner wires this to the obs
#: event stream when ``REPRO_OBS=full``.  Purely observational — the hook
#: must never influence scheduling, and the supervisor ignores its return.
LifecycleFn = Callable[[str, Dict[str, object]], None]

#: Worker exit deadline during shutdown before escalating to SIGKILL.
_SHUTDOWN_GRACE_S = 5.0


@dataclass(frozen=True, slots=True)
class TaskSpec:
    """One unit of supervised work."""

    task_id: str
    payload: Any
    #: Wall-clock budget for a single attempt, in seconds.
    timeout_s: float


@dataclass(frozen=True, slots=True)
class TaskOutcome:
    """Terminal state of one task.

    ``status`` is ``"ok"`` (the task function returned ``value``),
    ``"error"`` (the task function raised; ``value`` is the traceback text),
    or ``"quarantined"`` (infrastructure failures exhausted every attempt;
    ``value`` is ``None``).  ``failures`` lists every infrastructure failure
    the task survived or succumbed to, oldest first.
    """

    task_id: str
    status: str
    attempts: int
    value: Any
    failures: Tuple[str, ...]


@dataclass(slots=True)
class _Pending:
    """A task waiting to be dispatched (or re-dispatched)."""

    spec: TaskSpec
    attempt: int
    #: Scheduling-event count at which this task may be dispatched.
    eligible_at: int


@dataclass(slots=True)
class _Slot:
    """One live worker process and the task it is executing, if any."""

    process: Any
    conn: Connection
    busy: Optional[_Pending] = None
    deadline: float = field(default=0.0)


def _worker_loop(conn: Connection, worker_fn: WorkerFn) -> None:
    """Worker process body: execute tasks from the pipe until told to stop."""
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        task_id, attempt, payload = message
        try:
            value = worker_fn(payload, attempt)
        except BaseException:
            conn.send((task_id, attempt, "error", traceback.format_exc()))
            continue
        conn.send((task_id, attempt, "ok", value))


def _default_event_sink(message: str) -> None:
    sys.stderr.write(f"[supervisor] {message}\n")


class Supervisor:
    """Run tasks across ``jobs`` supervised workers (see module docstring)."""

    def __init__(
        self,
        worker_fn: WorkerFn,
        jobs: int,
        *,
        max_attempts: int = 3,
        backoff_base: int = 1,
        mp_context: Any = None,
        on_event: Optional[EventFn] = None,
        on_lifecycle: Optional[LifecycleFn] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if backoff_base < 1:
            raise ValueError("backoff_base must be >= 1")
        if mp_context is None:
            import multiprocessing

            mp_context = multiprocessing.get_context(
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
        self.worker_fn = worker_fn
        self.jobs = jobs
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self._context = mp_context
        self._event = on_event if on_event is not None else _default_event_sink
        self._lifecycle = on_lifecycle
        self._slots: List[_Slot] = []
        #: Scheduling-event counter: dispatches + completions + failures.
        #: Retry eligibility is measured against this, never the clock.
        self._events = 0
        #: Infrastructure failures accumulated per in-flight task id.
        self._failures: Dict[str, List[str]] = {}
        #: Failed tasks awaiting their backoff window.
        self._pending_retries: List[_Pending] = []

    # -- worker lifecycle ---------------------------------------------------

    def _spawn_slot(self) -> _Slot:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_loop,
            args=(child_conn, self.worker_fn),
            daemon=True,
        )
        process.start()
        child_conn.close()  # the worker holds its own copy
        slot = _Slot(process=process, conn=parent_conn)
        self._slots.append(slot)
        if self._lifecycle is not None:
            self._lifecycle("spawn", {"pid": process.pid})
        return slot

    def _discard_slot(self, slot: _Slot, *, kill: bool) -> None:
        """Retire a slot whose worker died or must die; it is never reused."""
        if kill and slot.process.is_alive():
            slot.process.kill()
        slot.process.join()
        slot.conn.close()
        self._slots.remove(slot)

    def shutdown(self) -> None:
        """Stop every worker (idempotent; called by ``run``'s finally)."""
        for slot in self._slots:
            try:
                slot.conn.send(None)
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + _SHUTDOWN_GRACE_S
        for slot in self._slots:
            slot.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if slot.process.is_alive():
                slot.process.kill()
                slot.process.join()
            slot.conn.close()
        self._slots.clear()

    # -- scheduling ---------------------------------------------------------

    def _pick_pending(self, pending: List[_Pending], have_busy: bool) -> Optional[int]:
        """Index of the next dispatchable pending task, or None.

        Backoff-eligible tasks go first (leftmost).  When nothing is eligible
        but no worker is busy either, waiting would deadlock — the event
        counter only advances through dispatches and completions — so the
        leftmost pending task is taken regardless (starvation guard).
        """
        for index, item in enumerate(pending):
            if item.eligible_at <= self._events:
                return index
        if pending and not have_busy:
            return 0
        return None

    def _dispatch(self, pending: List[_Pending]) -> None:
        while pending:
            idle = next((s for s in self._slots if s.busy is None), None)
            if idle is None and len(self._slots) >= self.jobs:
                return
            have_busy = any(s.busy is not None for s in self._slots)
            index = self._pick_pending(pending, have_busy)
            if index is None:
                return
            item = pending.pop(index)
            slot = idle if idle is not None else self._spawn_slot()
            try:
                slot.conn.send((item.spec.task_id, item.attempt, item.spec.payload))
            except (OSError, ValueError):
                # The worker died between completions; retire the slot and
                # put the task back without consuming one of its attempts.
                self._event(
                    f"worker pid={slot.process.pid} unreachable at dispatch "
                    f"of {item.spec.task_id}; respawning"
                )
                self._discard_slot(slot, kill=True)
                pending.insert(0, item)
                continue
            slot.busy = item
            slot.deadline = time.monotonic() + item.spec.timeout_s
            self._events += 1
            if self._lifecycle is not None:
                self._lifecycle(
                    "dispatch",
                    {
                        "attempt": item.attempt,
                        "pid": slot.process.pid,
                        "task": item.spec.task_id,
                        "timeout_s": item.spec.timeout_s,
                    },
                )

    # -- completion and failure --------------------------------------------

    def _complete(self, slot: _Slot) -> Optional[TaskOutcome]:
        """Consume a reply from a busy slot; returns the outcome, if valid."""
        item = slot.busy
        assert item is not None
        try:
            message = slot.conn.recv()
        except (EOFError, OSError):
            return self._fail(slot, "died mid-reply")
        slot.busy = None
        self._events += 1
        task_id, attempt, status, value = message
        if task_id != item.spec.task_id:  # pragma: no cover - defensive
            raise RuntimeError(
                f"worker pid={slot.process.pid} replied for {task_id!r} "
                f"while assigned {item.spec.task_id!r}"
            )
        failures = self._failures.pop(item.spec.task_id, [])
        if self._lifecycle is not None:
            self._lifecycle(
                "complete",
                {
                    "attempts": item.attempt + 1,
                    "pid": slot.process.pid,
                    "status": status,
                    "task": item.spec.task_id,
                },
            )
        return TaskOutcome(
            task_id=item.spec.task_id,
            status=status,
            attempts=item.attempt + 1,
            value=value,
            failures=tuple(failures),
        )

    def _fail(self, slot: _Slot, reason: str) -> Optional[TaskOutcome]:
        """Handle an infrastructure failure of the slot's current task.

        Returns a ``quarantined`` outcome when the task is out of attempts,
        otherwise re-queues it with deterministic backoff and returns None.
        The slot is always retired (the worker is dead or about to be).
        """
        item = slot.busy
        assert item is not None
        slot.busy = None
        self._events += 1
        attempts_done = item.attempt + 1
        failure = (
            f"attempt {attempts_done}/{self.max_attempts}: worker "
            f"pid={slot.process.pid} {reason}"
        )
        self._discard_slot(slot, kill=True)
        failures = self._failures.setdefault(item.spec.task_id, [])
        failures.append(failure)
        if attempts_done >= self.max_attempts:
            self._event(
                f"quarantining {item.spec.task_id} after {attempts_done} "
                f"attempt(s): {reason}"
            )
            del self._failures[item.spec.task_id]
            if self._lifecycle is not None:
                self._lifecycle(
                    "quarantine",
                    {
                        "attempts": attempts_done,
                        "reason": reason,
                        "task": item.spec.task_id,
                    },
                )
            return TaskOutcome(
                task_id=item.spec.task_id,
                status="quarantined",
                attempts=attempts_done,
                value=None,
                failures=tuple(failures),
            )
        delay = self.backoff_base << (attempts_done - 1)
        self._event(
            f"{item.spec.task_id} {reason}; retry {attempts_done + 1}/"
            f"{self.max_attempts} after {delay} scheduling event(s)"
        )
        self._pending_retries.append(
            _Pending(
                spec=item.spec,
                attempt=attempts_done,
                eligible_at=self._events + delay,
            )
        )
        if self._lifecycle is not None:
            self._lifecycle(
                "retry",
                {
                    "attempt": attempts_done,
                    "delay_events": delay,
                    "reason": reason,
                    "task": item.spec.task_id,
                },
            )
        return None

    # -- main loop ----------------------------------------------------------

    def run(self, tasks: Sequence[TaskSpec]) -> Iterator[TaskOutcome]:
        """Execute every task, yielding outcomes as they become terminal.

        Outcomes arrive in completion order (like ``imap_unordered``); the
        caller folds them by ``task_id``.  Workers are always torn down on
        the way out, including when the caller abandons the iterator.
        """
        seen: Dict[str, int] = {}
        for spec in tasks:
            if spec.task_id in seen:
                raise ValueError(f"duplicate task id {spec.task_id!r}")
            seen[spec.task_id] = 1
        pending = [_Pending(spec=spec, attempt=0, eligible_at=0) for spec in tasks]
        self._failures.clear()
        self._pending_retries = []
        remaining = len(pending)
        try:
            while remaining:
                pending.extend(self._pending_retries)
                self._pending_retries = []
                self._dispatch(pending)
                busy = [s for s in self._slots if s.busy is not None]
                if not busy:  # pragma: no cover - scheduling invariant
                    raise RuntimeError(
                        f"supervisor stalled with {remaining} task(s) unfinished"
                    )
                now = time.monotonic()
                next_deadline = min(s.deadline for s in busy)
                handles: List[Any] = [s.conn for s in busy]
                handles.extend(s.process.sentinel for s in busy)
                ready = set(wait(handles, timeout=max(0.0, next_deadline - now)))
                for slot in busy:
                    if slot.busy is None:
                        continue
                    outcome: Optional[TaskOutcome] = None
                    if slot.conn in ready:
                        outcome = self._complete(slot)
                    elif slot.process.sentinel in ready:
                        # Dead worker — but its reply may already be in the
                        # pipe (sent just before exiting); prefer the reply.
                        if slot.conn.poll():
                            outcome = self._complete(slot)
                        else:
                            outcome = self._fail(slot, "died (worker exit)")
                    elif time.monotonic() >= slot.deadline:
                        if slot.conn.poll():  # finished at the wire
                            outcome = self._complete(slot)
                        else:
                            outcome = self._fail(
                                slot,
                                f"exceeded {slot.busy.spec.timeout_s:.0f}s "
                                "deadline (reaped)",
                            )
                    if outcome is not None:
                        remaining -= 1
                        yield outcome
        finally:
            self.shutdown()


def supervise(
    tasks: Sequence[TaskSpec],
    worker_fn: WorkerFn,
    jobs: int,
    *,
    max_attempts: int = 3,
    backoff_base: int = 1,
    mp_context: Any = None,
    on_event: Optional[EventFn] = None,
    on_lifecycle: Optional[LifecycleFn] = None,
) -> Iterator[TaskOutcome]:
    """Convenience wrapper: build a :class:`Supervisor` and run the tasks."""
    supervisor = Supervisor(
        worker_fn,
        jobs,
        max_attempts=max_attempts,
        backoff_base=backoff_base,
        mp_context=mp_context,
        on_event=on_event,
        on_lifecycle=on_lifecycle,
    )
    return supervisor.run(tasks)
