"""Declarative sweep engine for the experiment layer.

Every figure and table in the paper is a sweep over the same grid —
benchmark x update style x protocol x core count — and before this module
each experiment hand-rolled its own nested loops.  The engine factors that
structure out:

* A :class:`SweepSpec` names an experiment's grid as an ordered list of
  *sweep points* plus a ``build`` function that folds the per-point results
  back into the experiment's row dictionaries.  Experiment modules expose
  ``sweep_spec()`` so the runner can schedule individual points.
* A :class:`SimPoint` is one simulation (workload spec x protocol x core
  count x machine config).  A :class:`FuncPoint` wraps anything else (the
  verification sweep, configuration tables) behind the same interface.
* Workload traces are materialized once per (workload parameters, update
  style, generation variant, core count, seed) and shared across every
  point that needs them — most importantly across protocols and across the
  fast/slow machine configurations of the sensitivity study — through a
  bounded per-process :class:`TraceCache`.  Sharing is safe because trace
  generation is deterministic and the simulator never mutates a trace; the
  equivalence suite pins that results are bit-identical to per-protocol
  regeneration.
* Completed points can be persisted in a :class:`ResultCache` keyed by a
  content hash of (machine config, workload parameters, protocol, seed,
  scale), which is what ``runner --resume`` uses to skip finished work.

The engine never changes *what* is simulated, only how the simulations are
named, scheduled, shared, and cached.
"""

from __future__ import annotations

import contextlib
import dataclasses
import enum
import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from functools import partial
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.experiments import settings
from repro.sim.access import WorkloadTrace
from repro.sim.config import SystemConfig
from repro.sim.simulator import MulticoreSimulator, make_protocol
from repro.sim.stats import SimulationResult
from repro.software.privatization import PrivatizationLevel
from repro.workloads.base import Workload

#: Bumped whenever a change invalidates previously cached point results.
ENGINE_VERSION = 1

#: Default location of the persistent point cache, relative to the cwd (the
#: same convention the runner uses for ``results/experiments``).
DEFAULT_CACHE_DIR = os.path.join("results", "sweep-cache")


# ---------------------------------------------------------------------------
# Workload specs and the shared trace cache
# ---------------------------------------------------------------------------


class WorkloadSpec:
    """A workload factory plus the generation variant to materialize.

    ``build`` returns a *fresh* :class:`Workload` instance; the spec derives
    a stable trace key from that instance's parameters (see
    :meth:`Workload.trace_key`) so identical traces are generated only once
    per process and shared across protocols and machine configurations.
    """

    __slots__ = ("build", "variant", "_materialize")

    def __init__(
        self,
        build: Callable[[], Workload],
        *,
        variant: Tuple = ("plain",),
        materialize: Optional[Callable[[Workload, int], WorkloadTrace]] = None,
    ) -> None:
        self.build = build
        self.variant = tuple(variant)
        self._materialize = materialize

    @classmethod
    def plain(cls, build: Callable[[], Workload]) -> "WorkloadSpec":
        """The ordinary ``workload.generate(n_cores)`` trace."""
        return cls(build)

    @classmethod
    def privatized(
        cls,
        build: Callable[[], Workload],
        level: PrivatizationLevel,
        cores_per_socket: int = 16,
    ) -> "WorkloadSpec":
        """A software-privatized variant (``generate_privatized``)."""
        return cls(
            build,
            variant=("privatized", level.value, cores_per_socket),
            materialize=partial(
                _materialize_privatized, level=level, cores_per_socket=cores_per_socket
            ),
        )

    def key(self, n_cores: int) -> Tuple:
        """Hashable identity of the trace :meth:`materialize` would produce."""
        return (self.build().trace_key(), self.variant, n_cores)

    def materialize(self, n_cores: int) -> WorkloadTrace:
        """Generate the trace from a fresh workload instance."""
        workload = self.build()
        if self._materialize is None:
            return workload.generate(n_cores)
        return self._materialize(workload, n_cores)


def _materialize_privatized(
    workload: Workload, n_cores: int, *, level: PrivatizationLevel, cores_per_socket: int
) -> WorkloadTrace:
    return workload.generate_privatized(
        n_cores, level=level, cores_per_socket=cores_per_socket
    )


class TraceCache:
    """Bounded LRU cache of materialized workload traces.

    One trace can serve many sweep points (the MESI and COUP runs of a
    ``compare_protocols``-style sweep, the fast- and slow-ALU runs of the
    sensitivity study, a 1-core baseline shared between experiments), so the
    cache is keyed by the full workload identity and bounded by trace count —
    traces are the memory hog, not the results.
    """

    def __init__(self, max_traces: int = 8) -> None:
        if max_traces <= 0:
            raise ValueError("max_traces must be positive")
        self.max_traces = max_traces
        self._traces: "OrderedDict[Tuple, WorkloadTrace]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, spec: WorkloadSpec, n_cores: int) -> WorkloadTrace:
        key = spec.key(n_cores)
        trace = self._traces.get(key)
        if trace is not None:
            self._traces.move_to_end(key)
            self.hits += 1
            return trace
        self.misses += 1
        trace = spec.materialize(n_cores)
        self._traces[key] = trace
        while len(self._traces) > self.max_traces:
            self._traces.popitem(last=False)
        return trace

    def clear(self) -> None:
        self._traces.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._traces)


#: Process-wide trace cache: shares traces across experiments in a serial
#: sweep and across the points a parallel worker happens to execute.
_shared_trace_cache = TraceCache()


def shared_trace_cache() -> TraceCache:
    """The process-wide trace cache used when no explicit cache is passed."""
    return _shared_trace_cache


class ExecutionContext:
    """What a sweep point may use while executing: the shared trace cache."""

    __slots__ = ("traces",)

    def __init__(self, traces: Optional[TraceCache] = None) -> None:
        self.traces = traces if traces is not None else _shared_trace_cache

    def trace(self, spec: WorkloadSpec, n_cores: int) -> WorkloadTrace:
        return self.traces.get(spec, n_cores)


# ---------------------------------------------------------------------------
# Sweep points
# ---------------------------------------------------------------------------


def _jsonable(value: Any) -> Any:
    """Recursively convert a fingerprint component to JSON-native types."""
    if isinstance(value, enum.Enum):
        return [type(value).__name__, value.value]
    if isinstance(value, (tuple, list)):
        return [_jsonable(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return value


@dataclasses.dataclass(frozen=True)
class SimPoint:
    """One simulation: workload trace x protocol x core count x machine."""

    key: str
    workload: WorkloadSpec
    protocol: str
    n_cores: int
    config: SystemConfig
    track_values: bool = False

    def fingerprint(self) -> Optional[dict]:
        """Content identity of this point for the persistent result cache."""
        return {
            "kind": "sim",
            "engine": ENGINE_VERSION,
            "workload": _jsonable(self.workload.key(self.n_cores)),
            "protocol": self.protocol,
            "n_cores": self.n_cores,
            "config": _jsonable(dataclasses.asdict(self.config)),
            "track_values": self.track_values,
            "scale": settings.scale(),
        }

    def execute(self, ctx: ExecutionContext) -> SimulationResult:
        trace = ctx.trace(self.workload, self.n_cores)
        engine = make_protocol(self.protocol, self.config, track_values=self.track_values)
        simulator = MulticoreSimulator(self.config, engine, track_values=self.track_values)
        return simulator.run(trace)


@dataclasses.dataclass(frozen=True)
class FuncPoint:
    """A non-simulation sweep point (verification runs, config tables).

    ``fn`` receives the :class:`ExecutionContext` so it can share cached
    traces, and must return JSON-serializable data (row dictionaries) for
    the point to be cacheable.  ``fingerprint_data`` identifies the point's
    inputs; ``None`` marks the point as never cached.
    """

    key: str
    fn: Callable[[ExecutionContext], Any]
    fingerprint_data: Optional[Mapping[str, Any]] = None

    def fingerprint(self) -> Optional[dict]:
        if self.fingerprint_data is None:
            return None
        return {
            "kind": "func",
            "engine": ENGINE_VERSION,
            "key": self.key,
            "data": _jsonable(dict(self.fingerprint_data)),
            "scale": settings.scale(),
        }

    def execute(self, ctx: ExecutionContext) -> Any:
        return self.fn(ctx)


SweepPoint = Union[SimPoint, FuncPoint]


# ---------------------------------------------------------------------------
# Specs
# ---------------------------------------------------------------------------


class SweepSpec:
    """An experiment as an ordered grid of sweep points plus a row builder.

    ``build`` maps ``{point key: point result}`` to whatever the experiment's
    public ``run(...)`` returns; it must not simulate anything itself, so the
    runner can execute points anywhere (other processes, the cache) and still
    reproduce the experiment's rows and printed tables exactly.
    """

    def __init__(
        self,
        experiment_id: str,
        points: Sequence[SweepPoint],
        build: Callable[[Mapping[str, Any]], Any],
    ) -> None:
        self.experiment_id = experiment_id
        self.points: List[SweepPoint] = list(points)
        self._by_key: Dict[str, SweepPoint] = {}
        for point in self.points:
            if point.key in self._by_key:
                raise ValueError(
                    f"duplicate sweep point key {point.key!r} in {experiment_id}"
                )
            self._by_key[point.key] = point
        self.build = build

    @property
    def point_keys(self) -> List[str]:
        return [point.key for point in self.points]

    def point(self, key: str) -> SweepPoint:
        return self._by_key[key]

    def rows(self, results: Mapping[str, Any]) -> Any:
        """Fold per-point results into the experiment's ``run()`` value."""
        return self.build(results)


# ---------------------------------------------------------------------------
# Persistent result cache (--resume)
# ---------------------------------------------------------------------------


class ResultCache:
    """Content-addressed store of completed sweep-point results.

    Each completed point is written to ``<root>/<hash>.json`` where the hash
    covers the point's full fingerprint — machine config, workload
    parameters (including the workload seed), protocol, core count, and the
    harness scale — so a cache entry can never be replayed against a
    different sweep.  Loads verify the stored fingerprint before trusting a
    file.  Results round-trip bit-identically (JSON preserves ints exactly
    and floats via shortest-repr).
    """

    def __init__(self, root: str = DEFAULT_CACHE_DIR, *, read: bool = True) -> None:
        self.root = root
        #: When False the cache is write-only: completed points are persisted
        #: for a later ``--resume`` sweep, but nothing is replayed.
        self.read = read
        self.stores = 0
        self.loads = 0

    @staticmethod
    def digest(fingerprint: Mapping[str, Any]) -> str:
        canonical = json.dumps(fingerprint, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def _path(self, fingerprint: Mapping[str, Any]) -> str:
        return os.path.join(self.root, f"{self.digest(fingerprint)}.json")

    def load(self, point: SweepPoint) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; a miss is ``(False, None)``."""
        if not self.read:
            return False, None
        fingerprint = point.fingerprint()
        if fingerprint is None:
            return False, None
        path = self._path(fingerprint)
        try:
            with open(path) as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return False, None
        if record.get("fingerprint") != fingerprint:
            return False, None  # hash collision or stale format: recompute
        value = record.get("value")
        if record.get("kind") == "sim":
            try:
                value = SimulationResult.from_jsonable(value)
            except (KeyError, TypeError):
                return False, None
        self.loads += 1
        return True, value

    def store(self, point: SweepPoint, value: Any) -> bool:
        """Persist one completed point; returns False if not cacheable."""
        fingerprint = point.fingerprint()
        if fingerprint is None:
            return False
        if isinstance(value, SimulationResult):
            record = {"kind": "sim", "fingerprint": fingerprint, "value": value.to_jsonable()}
        else:
            record = {"kind": "func", "fingerprint": fingerprint, "value": value}
        # The cache is purely an optimization: a non-JSON-serializable result
        # or an I/O failure (read-only or full cache dir) skips caching
        # rather than failing a point whose simulation already succeeded.
        tmp_path = None
        try:
            os.makedirs(self.root, exist_ok=True)
            path = self._path(fingerprint)
            fd, tmp_path = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle)
            os.replace(tmp_path, path)  # atomic: concurrent workers write identical content
        except (TypeError, OSError):
            if tmp_path is not None:
                with contextlib.suppress(OSError):
                    os.unlink(tmp_path)
            return False
        self.stores += 1
        return True


#: Result cache consulted by :func:`run_point` when none is passed
#: explicitly; the runner installs one per process for --resume sweeps.
_active_result_cache: Optional[ResultCache] = None


def set_result_cache(cache: Optional[ResultCache]) -> None:
    """Install (or clear) the process-wide persistent point cache."""
    global _active_result_cache
    _active_result_cache = cache


def active_result_cache() -> Optional[ResultCache]:
    return _active_result_cache


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def run_point(
    point: SweepPoint,
    *,
    ctx: Optional[ExecutionContext] = None,
    result_cache: Optional[ResultCache] = None,
) -> Tuple[Any, bool]:
    """Execute one sweep point; returns ``(value, came_from_cache)``."""
    cache = result_cache if result_cache is not None else _active_result_cache
    if cache is not None:
        hit, value = cache.load(point)
        if hit:
            return value, True
    if ctx is None:
        ctx = ExecutionContext()
    value = point.execute(ctx)
    if cache is not None:
        cache.store(point, value)
    return value, False


def execute(
    spec: SweepSpec,
    *,
    trace_cache: Optional[TraceCache] = None,
    result_cache: Optional[ResultCache] = None,
) -> Dict[str, Any]:
    """Run every point of a spec in order; returns ``{point key: result}``.

    This is the serial engine behind each experiment's ``run(...)``; the
    runner's ``--jobs N`` mode instead schedules the same points across
    worker processes and folds the results with :meth:`SweepSpec.rows`.
    """
    ctx = ExecutionContext(trace_cache)
    results: Dict[str, Any] = {}
    for point in spec.points:
        results[point.key], _ = run_point(point, ctx=ctx, result_cache=result_cache)
    return results
