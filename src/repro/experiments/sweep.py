"""Declarative sweep engine for the experiment layer.

Every figure and table in the paper is a sweep over the same grid —
benchmark x update style x protocol x core count — and before this module
each experiment hand-rolled its own nested loops.  The engine factors that
structure out:

* A :class:`SweepSpec` names an experiment's grid as an ordered list of
  *sweep points* plus a ``build`` function that folds the per-point results
  back into the experiment's row dictionaries.  Experiment modules expose
  ``sweep_spec()`` so the runner can schedule individual points.
* A :class:`SimPoint` is one simulation (workload spec x protocol x core
  count x machine config).  A :class:`FuncPoint` wraps anything else (the
  verification sweep, configuration tables) behind the same interface.
* Workload traces are materialized once per (workload parameters, update
  style, generation variant, core count, seed) and shared across every
  point that needs them — most importantly across protocols and across the
  fast/slow machine configurations of the sensitivity study — through a
  bounded per-process :class:`TraceCache`.  Sharing is safe because trace
  generation is deterministic and the simulator never mutates a trace; the
  equivalence suite pins that results are bit-identical to per-protocol
  regeneration.
* Traces are held in the packed columnar form
  (:class:`~repro.sim.columnar.ColumnarTrace`): ~29 bytes per access, which
  lets the cache hold 4x more traces, persists each trace as a verified
  ``.npz`` file when a cache directory is configured, and lets the parallel
  runner publish traces once into ``multiprocessing.shared_memory`` so
  workers map them zero-copy instead of regenerating or unpickling them
  (:func:`publish_trace_shm` / :func:`attach_trace_shm`).
* Completed points can be persisted in a :class:`ResultCache` keyed by a
  content hash of (machine config, workload parameters, protocol, seed,
  scale), which is what ``runner --resume`` uses to skip finished work.

The engine never changes *what* is simulated, only how the simulations are
named, scheduled, shared, and cached.
"""

from __future__ import annotations

import atexit
import contextlib
import dataclasses
import enum
import hashlib
import json
import os
import tempfile
import zipfile
from collections import OrderedDict

import numpy as np
from functools import partial
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

if TYPE_CHECKING:
    from multiprocessing import shared_memory

from repro import obs as _obs
from repro.experiments import settings
from repro.sim.access import WorkloadTrace
from repro.sim.columnar import (
    ACCESS_DTYPE,
    ColumnarTrace,
    TraceCodecError,
    as_columnar,
)
from repro.sim.config import SystemConfig
from repro.sim.simulator import MulticoreSimulator, make_protocol
from repro.sim.stats import SimulationResult
from repro.software.privatization import PrivatizationLevel
from repro.workloads.base import Workload

#: Bumped whenever a change invalidates previously cached point results.
#: (2: SystemConfig fingerprints gained the network topology subsystem.
#:  3: SimulationResult.to_jsonable emits final_values in canonical sorted
#:     order — required for batched-kernel/scalar cache-record equality.)
ENGINE_VERSION = 3

#: Default location of the persistent point cache, relative to the cwd (the
#: same convention the runner uses for ``results/experiments``).
DEFAULT_CACHE_DIR = os.path.join("results", "sweep-cache")


# ---------------------------------------------------------------------------
# Workload specs and the shared trace cache
# ---------------------------------------------------------------------------


class WorkloadSpec:
    """A workload factory plus the generation variant to materialize.

    ``build`` returns a *fresh* :class:`Workload` instance; the spec derives
    a stable trace key from that instance's parameters (see
    :meth:`Workload.trace_key`) so identical traces are generated only once
    per process and shared across protocols and machine configurations.
    """

    __slots__ = ("build", "variant", "_materialize")

    def __init__(
        self,
        build: Callable[[], Workload],
        *,
        variant: Tuple = ("plain",),
        materialize: Optional[Callable[[Workload, int], WorkloadTrace]] = None,
    ) -> None:
        self.build = build
        self.variant = tuple(variant)
        self._materialize = materialize

    @classmethod
    def plain(cls, build: Callable[[], Workload]) -> "WorkloadSpec":
        """The ordinary ``workload.generate(n_cores)`` trace."""
        return cls(build)

    @classmethod
    def privatized(
        cls,
        build: Callable[[], Workload],
        level: PrivatizationLevel,
        cores_per_socket: int = 16,
    ) -> "WorkloadSpec":
        """A software-privatized variant (``generate_privatized``)."""
        return cls(
            build,
            variant=("privatized", level.value, cores_per_socket),
            materialize=partial(
                _materialize_privatized, level=level, cores_per_socket=cores_per_socket
            ),
        )

    def key(self, n_cores: int) -> Tuple:
        """Hashable identity of the trace :meth:`materialize` would produce."""
        return (self.build().trace_key(), self.variant, n_cores)

    def materialize(self, n_cores: int) -> WorkloadTrace:
        """Generate the object-form trace from a fresh workload instance."""
        workload = self.build()
        if self._materialize is None:
            return workload.generate(n_cores)
        return self._materialize(workload, n_cores)

    def materialize_columnar(self, n_cores: int) -> ColumnarTrace:
        """Generate the packed columnar trace from a fresh workload instance.

        Plain variants use the workload's vectorized columnar builder;
        variant materializers (privatization) build the object form and pack
        it — either way the result simulates bit-identically to
        :meth:`materialize` (pinned by the golden-equivalence suite).
        """
        workload = self.build()
        if self._materialize is None:
            return workload.generate_columnar(n_cores)
        return as_columnar(self._materialize(workload, n_cores))


def _materialize_privatized(
    workload: Workload, n_cores: int, *, level: PrivatizationLevel, cores_per_socket: int
) -> WorkloadTrace:
    return workload.generate_privatized(
        n_cores, level=level, cores_per_socket=cores_per_socket
    )


#: Bumped whenever the packed trace format changes (invalidates .npz files).
TRACE_FORMAT_VERSION = 1


def trace_key_digest(key: Tuple) -> str:
    """Stable content digest of a workload trace key (npz/shm addressing)."""
    payload = {
        "format": TRACE_FORMAT_VERSION,
        "dtype": str(ACCESS_DTYPE),
        "key": _jsonable(key),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class TraceCache:
    """Bounded LRU cache of materialized workload traces, in columnar form.

    One trace can serve many sweep points (the MESI and COUP runs of a
    ``compare_protocols``-style sweep, the fast- and slow-ALU runs of the
    sensitivity study, a 1-core baseline shared between experiments), so the
    cache is keyed by the full workload identity and bounded by trace count —
    traces are the memory hog, not the results.  Traces are held packed
    (:class:`ColumnarTrace`, ~29 bytes per access vs ~100+ for objects, see
    :attr:`total_bytes`), which is why the default capacity is four times the
    old object-form bound.  A workload whose trace cannot be packed (exotic
    operand values) transparently falls back to the object form.

    With ``store_dir`` set, materialized traces are additionally persisted
    as ``<digest>.npz`` files and reloaded on a cold miss, so repeated or
    resumed sweeps skip regeneration entirely; every file embeds its full
    key fingerprint, which is verified on load before the trace is trusted.
    """

    def __init__(self, max_traces: int = 32, store_dir: Optional[str] = None) -> None:
        if max_traces <= 0:
            raise ValueError("max_traces must be positive")
        self.max_traces = max_traces
        self.store_dir = store_dir
        self._traces: "OrderedDict[Tuple, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_loads = 0
        self.disk_stores = 0

    def get(self, spec: WorkloadSpec, n_cores: int):
        key = spec.key(n_cores)
        trace = self._traces.get(key)
        if trace is not None:
            self._traces.move_to_end(key)
            self.hits += 1
            return trace
        self.misses += 1
        trace = self._load_or_materialize(spec, n_cores, key)
        self.put(key, trace)
        return trace

    def put(self, key: Tuple, trace) -> None:
        """Insert an externally materialized trace (shared-memory preload)."""
        self._traces[key] = trace
        self._traces.move_to_end(key)
        while len(self._traces) > self.max_traces:
            self._traces.popitem(last=False)

    def _load_or_materialize(self, spec: WorkloadSpec, n_cores: int, key: Tuple):
        fingerprint = None
        path = None
        if self.store_dir:
            try:
                fingerprint = _jsonable(key)
                path = os.path.join(self.store_dir, f"{trace_key_digest(key)}.npz")
                trace, extra = ColumnarTrace.load_npz_with_meta(path)
                if extra is not None and extra.get("trace_key") == fingerprint:
                    self.disk_loads += 1
                    return trace
            except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile):
                pass  # missing, corrupt, or stale file: regenerate
        try:
            trace = spec.materialize_columnar(n_cores)
        except TraceCodecError:
            # Unpackable trace: serve the object form (never persisted).
            return spec.materialize(n_cores)
        if path is not None:
            # Persistence is an optimization; a read-only or full disk must
            # not fail a sweep whose trace already materialized.
            try:
                trace.save_npz(path, extra_meta={"trace_key": fingerprint})
                self.disk_stores += 1
            except (OSError, TypeError, ValueError):
                pass
        return trace

    @property
    def total_bytes(self) -> int:
        """Packed bytes held across all cached columnar traces."""
        return sum(
            trace.nbytes for trace in self._traces.values() if hasattr(trace, "nbytes")
        )

    def stats(self) -> Dict[str, int]:
        """Occupancy and traffic counters (benchmark/CI reporting)."""
        return {
            "traces": len(self._traces),
            "bytes": self.total_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "disk_loads": self.disk_loads,
            "disk_stores": self.disk_stores,
        }

    def clear(self) -> None:
        self._traces.clear()
        self.hits = 0
        self.misses = 0
        self.disk_loads = 0
        self.disk_stores = 0

    def __len__(self) -> int:
        return len(self._traces)


#: Process-wide trace cache: shares traces across experiments in a serial
#: sweep and across the points a parallel worker happens to execute.
_shared_trace_cache = TraceCache()


# ---------------------------------------------------------------------------
# Zero-copy trace transport (runner --jobs N)
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ShmTraceHandle:
    """Picklable descriptor of a columnar trace published in shared memory.

    The parent concatenates every core's packed column into one
    ``multiprocessing.shared_memory`` segment; workers rebuild zero-copy
    read-only array views from ``(segment name, per-core lengths)`` instead
    of receiving pickled traces.  Only the small metadata (name, params,
    phase boundaries) travels through the task pickle.
    """

    shm_name: str
    lengths: Tuple[int, ...]
    trace_name: str
    params: Tuple[Tuple[str, Any], ...]
    phase_boundaries: Optional[Tuple[Tuple[int, ...], ...]]
    key_digest: str


#: Name prefix of every shared-memory segment the runner publishes.  The
#: owning pid is embedded right after it (``repro_shm_<pid>_<digest>``) so
#: :func:`reclaim_stale_segments` can tell a live campaign's segments from
#: those leaked by a crashed one.
SHM_NAME_PREFIX = "repro_shm_"

#: Every segment this process has published and not yet released, by name.
#: An atexit hook drains it so segments cannot outlive a normal exit even
#: when the publisher's ``finally`` never runs.
_published_segments: Dict[str, "shared_memory.SharedMemory"] = {}
_shm_cleanup_registered = False


def _register_published_segment(segment: "shared_memory.SharedMemory") -> None:
    global _shm_cleanup_registered
    if not _shm_cleanup_registered:
        atexit.register(_cleanup_published_segments)
        _shm_cleanup_registered = True
    _published_segments[segment.name] = segment


def _cleanup_published_segments() -> None:
    """atexit hook: unlink every still-published segment."""
    for segment in list(_published_segments.values()):
        with contextlib.suppress(OSError):
            segment.close()
        with contextlib.suppress(OSError):
            segment.unlink()
    _published_segments.clear()


def release_trace_shm(segment: "shared_memory.SharedMemory") -> None:
    """Close and unlink a published segment and drop it from the registry."""
    _published_segments.pop(segment.name, None)
    with contextlib.suppress(OSError):
        segment.close()
    with contextlib.suppress(OSError):
        segment.unlink()


def reclaim_stale_segments(shm_dir: str = "/dev/shm") -> List[str]:
    """Unlink ``repro_shm_*`` segments whose owning process is dead.

    A campaign killed with SIGKILL never runs its cleanup, leaving its
    published trace segments pinned in ``/dev/shm`` until reboot.  The
    runner calls this at startup: any segment whose name carries a pid that
    no longer exists is leaked and reclaimed.  Segments owned by live pids
    (or pids this user cannot signal) are left alone.  Returns the names
    reclaimed; on platforms without a POSIX shm filesystem this is a no-op.
    """
    reclaimed: List[str] = []
    if not os.path.isdir(shm_dir):
        return reclaimed
    for name in sorted(os.listdir(shm_dir)):
        if not name.startswith(SHM_NAME_PREFIX):
            continue
        owner = name[len(SHM_NAME_PREFIX) :].partition("_")[0]
        if not owner.isdigit():
            continue
        if int(owner) == os.getpid():
            continue  # this process's own live segments
        try:
            os.kill(int(owner), 0)
        except ProcessLookupError:
            pass  # owner is gone: the segment is leaked
        except PermissionError:
            continue  # owner exists under another user
        else:
            continue  # owner still alive
        with contextlib.suppress(OSError):
            os.unlink(os.path.join(shm_dir, name))
            reclaimed.append(name)
    return reclaimed


def publish_trace_shm(
    trace: ColumnarTrace, key: Tuple
) -> Tuple[ShmTraceHandle, "shared_memory.SharedMemory"]:
    """Copy a columnar trace into a named shared-memory segment.

    Returns ``(handle, segment)``; the caller owns the segment and must
    release it (:func:`release_trace_shm`) once every consumer is done.
    Until then the segment is tracked in the published registry, whose
    atexit hook unlinks anything still live at interpreter exit.
    """
    from multiprocessing import shared_memory

    total = sum(column.nbytes for column in trace.columns)
    name = f"{SHM_NAME_PREFIX}{os.getpid()}_{trace_key_digest(key)[:10]}"
    try:
        segment = shared_memory.SharedMemory(create=True, size=max(1, total), name=name)
    except FileExistsError:
        # A same-name leftover means an earlier campaign in this process (or
        # a recycled pid) leaked it; it is unreachable now, so reclaim it.
        with contextlib.suppress(OSError):
            stale = shared_memory.SharedMemory(name=name)
            stale.close()
            stale.unlink()
        segment = shared_memory.SharedMemory(create=True, size=max(1, total), name=name)
    _register_published_segment(segment)
    obs_reg = _obs.get_registry()
    if obs_reg is not None:
        obs_reg.inc("sweep.shm_publish")
    offset = 0
    for column in trace.columns:
        view = np.ndarray(len(column), dtype=ACCESS_DTYPE, buffer=segment.buf, offset=offset)
        view[:] = column
        offset += column.nbytes
    handle = ShmTraceHandle(
        shm_name=segment.name,
        lengths=tuple(len(column) for column in trace.columns),
        trace_name=trace.name,
        params=tuple(trace.params.items()),
        phase_boundaries=(
            tuple(tuple(bounds) for bounds in trace.phase_boundaries)
            if trace.phase_boundaries is not None
            else None
        ),
        key_digest=trace_key_digest(key),
    )
    return handle, segment


def attach_trace_shm(handle: ShmTraceHandle, *, in_worker: bool = False) -> ColumnarTrace:
    """Rebuild a zero-copy read-only :class:`ColumnarTrace` from a handle.

    ``in_worker`` must be True when attaching from a worker process that
    does *not* own the segment.  Under the spawn start method each worker
    runs its own resource tracker, and Python < 3.13 registers attached
    segments with it — the first worker to exit would unlink the segment
    out from under its siblings, so ownership is handed back by
    unregistering.  Forked workers share the publishing parent's tracker
    (registration is set-idempotent and the parent unlinks at the end), and
    a same-process attach shares the owner's registration outright — in
    both cases unregistering would erase the owner's claim, so it is
    skipped.
    """
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=handle.shm_name)
    try:
        import multiprocessing

        if in_worker and multiprocessing.get_start_method(allow_none=True) != "fork":
            from multiprocessing import resource_tracker

            resource_tracker.unregister(segment._name, "shared_memory")
    except (ImportError, AttributeError, KeyError, ValueError):  # pragma: no cover
        pass  # tracker layout differs by version; ownership fix is best-effort
    obs_reg = _obs.get_registry()
    if obs_reg is not None:
        obs_reg.inc("sweep.shm_attach")
    columns = []
    offset = 0
    for length in handle.lengths:
        view = np.ndarray(length, dtype=ACCESS_DTYPE, buffer=segment.buf, offset=offset)
        view.flags.writeable = False
        columns.append(view)
        offset += view.nbytes
    trace = ColumnarTrace(
        name=handle.trace_name,
        columns=columns,
        params=dict(handle.params),
        phase_boundaries=(
            [list(bounds) for bounds in handle.phase_boundaries]
            if handle.phase_boundaries is not None
            else None
        ),
    )
    trace._shm = segment  # keep the mapping alive as long as the views
    return trace


def shared_trace_cache() -> TraceCache:
    """The process-wide trace cache used when no explicit cache is passed."""
    return _shared_trace_cache


class ExecutionContext:
    """What a sweep point may use while executing: the shared trace cache."""

    __slots__ = ("traces",)

    def __init__(self, traces: Optional[TraceCache] = None) -> None:
        self.traces = traces if traces is not None else _shared_trace_cache

    def trace(self, spec: WorkloadSpec, n_cores: int) -> WorkloadTrace:
        return self.traces.get(spec, n_cores)


# ---------------------------------------------------------------------------
# Sweep points
# ---------------------------------------------------------------------------


def _jsonable(value: Any) -> Any:
    """Recursively convert a fingerprint component to JSON-native types."""
    if isinstance(value, enum.Enum):
        return [type(value).__name__, value.value]
    if isinstance(value, (tuple, list)):
        return [_jsonable(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return value


@dataclasses.dataclass(frozen=True)
class SimPoint:
    """One simulation: workload trace x protocol x core count x machine."""

    key: str
    workload: WorkloadSpec
    protocol: str
    n_cores: int
    config: SystemConfig
    track_values: bool = False

    def fingerprint(self) -> Optional[dict]:
        """Content identity of this point for the persistent result cache."""
        return {
            "kind": "sim",
            "engine": ENGINE_VERSION,
            "workload": _jsonable(self.workload.key(self.n_cores)),
            "protocol": self.protocol,
            "n_cores": self.n_cores,
            "config": _jsonable(dataclasses.asdict(self.config)),
            "track_values": self.track_values,
            "scale": settings.scale(),
        }

    def execute(self, ctx: ExecutionContext) -> SimulationResult:
        trace = ctx.trace(self.workload, self.n_cores)
        engine = make_protocol(self.protocol, self.config, track_values=self.track_values)
        simulator = MulticoreSimulator(self.config, engine, track_values=self.track_values)
        return simulator.run(trace)


@dataclasses.dataclass(frozen=True)
class FuncPoint:
    """A non-simulation sweep point (verification runs, config tables).

    ``fn`` receives the :class:`ExecutionContext` so it can share cached
    traces, and must return JSON-serializable data (row dictionaries) for
    the point to be cacheable.  ``fingerprint_data`` identifies the point's
    inputs; ``None`` marks the point as never cached.
    """

    key: str
    fn: Callable[[ExecutionContext], Any]
    fingerprint_data: Optional[Mapping[str, Any]] = None

    def fingerprint(self) -> Optional[dict]:
        if self.fingerprint_data is None:
            return None
        return {
            "kind": "func",
            "engine": ENGINE_VERSION,
            "key": self.key,
            "data": _jsonable(dict(self.fingerprint_data)),
            "scale": settings.scale(),
        }

    def execute(self, ctx: ExecutionContext) -> Any:
        return self.fn(ctx)


SweepPoint = Union[SimPoint, FuncPoint]


# ---------------------------------------------------------------------------
# Specs
# ---------------------------------------------------------------------------


class SweepSpec:
    """An experiment as an ordered grid of sweep points plus a row builder.

    ``build`` maps ``{point key: point result}`` to whatever the experiment's
    public ``run(...)`` returns; it must not simulate anything itself, so the
    runner can execute points anywhere (other processes, the cache) and still
    reproduce the experiment's rows and printed tables exactly.
    """

    def __init__(
        self,
        experiment_id: str,
        points: Sequence[SweepPoint],
        build: Callable[[Mapping[str, Any]], Any],
    ) -> None:
        self.experiment_id = experiment_id
        self.points: List[SweepPoint] = list(points)
        self._by_key: Dict[str, SweepPoint] = {}
        for point in self.points:
            if point.key in self._by_key:
                raise ValueError(
                    f"duplicate sweep point key {point.key!r} in {experiment_id}"
                )
            self._by_key[point.key] = point
        self.build = build

    @property
    def point_keys(self) -> List[str]:
        return [point.key for point in self.points]

    def point(self, key: str) -> SweepPoint:
        return self._by_key[key]

    def rows(self, results: Mapping[str, Any]) -> Any:
        """Fold per-point results into the experiment's ``run()`` value."""
        return self.build(results)


# ---------------------------------------------------------------------------
# Persistent result cache (--resume)
# ---------------------------------------------------------------------------


class ResultCache:
    """Content-addressed store of completed sweep-point results.

    Each completed point is written to ``<root>/<hash>.json`` where the hash
    covers the point's full fingerprint — machine config, workload
    parameters (including the workload seed), protocol, core count, and the
    harness scale — so a cache entry can never be replayed against a
    different sweep.  Loads verify the stored fingerprint before trusting a
    file.  Results round-trip bit-identically (JSON preserves ints exactly
    and floats via shortest-repr).
    """

    def __init__(self, root: str = DEFAULT_CACHE_DIR, *, read: bool = True) -> None:
        self.root = root
        #: When False the cache is write-only: completed points are persisted
        #: for a later ``--resume`` sweep, but nothing is replayed.
        self.read = read
        self.stores = 0
        self.loads = 0

    @staticmethod
    def digest(fingerprint: Mapping[str, Any]) -> str:
        canonical = json.dumps(fingerprint, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def _path(self, fingerprint: Mapping[str, Any]) -> str:
        return os.path.join(self.root, f"{self.digest(fingerprint)}.json")

    def contains(self, point: SweepPoint) -> bool:
        """Cheap existence probe (no load or verification).

        Used for scheduling decisions — e.g. the parallel runner skips
        publishing a trace for a point whose result will replay from this
        cache.  A stale or corrupt file can return a false positive; the
        worker's :meth:`load` still verifies before trusting it, and falls
        back to simulating (regenerating its trace locally).
        """
        if not self.read:
            return False
        fingerprint = point.fingerprint()
        return fingerprint is not None and os.path.exists(self._path(fingerprint))

    def load(self, point: SweepPoint) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; a miss is ``(False, None)``."""
        if not self.read:
            return False, None
        fingerprint = point.fingerprint()
        if fingerprint is None:
            return False, None
        path = self._path(fingerprint)
        obs_reg = _obs.get_registry()
        try:
            with open(path) as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError):
            if obs_reg is not None:
                obs_reg.inc("sweep.cache_miss")
            return False, None
        if record.get("fingerprint") != fingerprint:
            if obs_reg is not None:
                obs_reg.inc("sweep.cache_miss")
            return False, None  # hash collision or stale format: recompute
        value = record.get("value")
        if record.get("kind") == "sim":
            try:
                value = SimulationResult.from_jsonable(value)
            except (KeyError, TypeError):
                if obs_reg is not None:
                    obs_reg.inc("sweep.cache_miss")
                return False, None
        self.loads += 1
        if obs_reg is not None:
            obs_reg.inc("sweep.cache_hit")
        return True, value

    def store(self, point: SweepPoint, value: Any) -> bool:
        """Persist one completed point; returns False if not cacheable."""
        fingerprint = point.fingerprint()
        if fingerprint is None:
            return False
        if isinstance(value, SimulationResult):
            record = {"kind": "sim", "fingerprint": fingerprint, "value": value.to_jsonable()}
        else:
            record = {"kind": "func", "fingerprint": fingerprint, "value": value}
        # The cache is purely an optimization: a non-JSON-serializable result
        # or an I/O failure (read-only or full cache dir) skips caching
        # rather than failing a point whose simulation already succeeded.
        tmp_path = None
        try:
            os.makedirs(self.root, exist_ok=True)
            path = self._path(fingerprint)
            fd, tmp_path = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle, sort_keys=True)
            os.replace(tmp_path, path)  # atomic: concurrent workers write identical content
        except (TypeError, OSError):
            if tmp_path is not None:
                with contextlib.suppress(OSError):
                    os.unlink(tmp_path)
            return False
        self.stores += 1
        obs_reg = _obs.get_registry()
        if obs_reg is not None:
            obs_reg.inc("sweep.cache_store")
        return True


#: Result cache consulted by :func:`run_point` when none is passed
#: explicitly; the runner installs one per process for --resume sweeps.
_active_result_cache: Optional[ResultCache] = None


def set_result_cache(cache: Optional[ResultCache]) -> None:
    """Install (or clear) the process-wide persistent point cache."""
    global _active_result_cache
    _active_result_cache = cache


def active_result_cache() -> Optional[ResultCache]:
    return _active_result_cache


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def run_point(
    point: SweepPoint,
    *,
    ctx: Optional[ExecutionContext] = None,
    result_cache: Optional[ResultCache] = None,
) -> Tuple[Any, bool]:
    """Execute one sweep point; returns ``(value, came_from_cache)``."""
    cache = result_cache if result_cache is not None else _active_result_cache
    if cache is not None:
        hit, value = cache.load(point)
        if hit:
            return value, True
    if ctx is None:
        ctx = ExecutionContext()
    value = point.execute(ctx)
    if cache is not None:
        cache.store(point, value)
    return value, False


def execute(
    spec: SweepSpec,
    *,
    trace_cache: Optional[TraceCache] = None,
    result_cache: Optional[ResultCache] = None,
) -> Dict[str, Any]:
    """Run every point of a spec in order; returns ``{point key: result}``.

    This is the serial engine behind each experiment's ``run(...)``; the
    runner's ``--jobs N`` mode instead schedules the same points across
    worker processes and folds the results with :meth:`SweepSpec.rows`.
    """
    ctx = ExecutionContext(trace_cache)
    results: Dict[str, Any] = {}
    for point in spec.points:
        results[point.key], _ = run_point(point, ctx=ctx, result_cache=result_cache)
    return results
