"""Factory functions for the paper's five benchmarks at experiment scale.

Every speedup/AMAT/traffic experiment needs the same five workloads (Table 2)
configured at a size that a pure-Python simulator can run in seconds.  This
module centralises those configurations; the sizes scale with
:func:`repro.experiments.settings.scaled` so one knob grows or shrinks the
whole harness.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.experiments import settings
from repro.workloads import (
    BfsWorkload,
    FluidanimateWorkload,
    HistogramWorkload,
    PageRankWorkload,
    SpmvWorkload,
    UpdateStyle,
    Workload,
)


def make_hist(update_style: UpdateStyle = UpdateStyle.COMMUTATIVE, *, n_bins: int = 512) -> HistogramWorkload:
    """The ``hist`` benchmark: histogramming with the GRiN-like 512-bin default."""
    return HistogramWorkload(
        n_bins=n_bins,
        n_items=settings.scaled(24_000),
        update_style=update_style,
    )


def make_spmv(update_style: UpdateStyle = UpdateStyle.COMMUTATIVE) -> SpmvWorkload:
    """The ``spmv`` benchmark: CSC sparse matrix-vector multiplication."""
    return SpmvWorkload(
        n_rows=settings.scaled(1536),
        n_cols=settings.scaled(1536),
        nnz_per_col=6,
        update_style=update_style,
    )


def make_pgrank(update_style: UpdateStyle = UpdateStyle.COMMUTATIVE) -> PageRankWorkload:
    """The ``pgrank`` benchmark: push-style PageRank on a power-law graph."""
    return PageRankWorkload(
        n_vertices=settings.scaled(2048),
        avg_degree=6,
        n_iterations=2,
        update_style=update_style,
    )


def make_bfs(update_style: UpdateStyle = UpdateStyle.COMMUTATIVE) -> BfsWorkload:
    """The ``bfs`` benchmark: bitmap-based breadth-first search."""
    return BfsWorkload(
        n_vertices=settings.scaled(6144),
        avg_degree=8,
        max_levels=5,
        update_style=update_style,
    )


def make_fluidanimate(update_style: UpdateStyle = UpdateStyle.COMMUTATIVE) -> FluidanimateWorkload:
    """The ``fluidanimate`` benchmark: structured grid with ghost-cell sharing.

    The grid is kept much taller than the largest core count so that only a
    small fraction of cells are boundary (shared) cells, matching the paper's
    observation that fluidanimate sees only a small COUP benefit.
    """
    return FluidanimateWorkload(
        grid_x=24,
        grid_y=settings.scaled(768),
        n_steps=1,
        update_style=update_style,
    )


#: Benchmark name -> factory, in the order the paper lists them.
PAPER_WORKLOAD_FACTORIES: Dict[str, Callable[..., Workload]] = {
    "hist": make_hist,
    "spmv": make_spmv,
    "pgrank": make_pgrank,
    "bfs": make_bfs,
    "fluidanimate": make_fluidanimate,
}
