"""Figure 11: average memory access time (AMAT) breakdown.

For each benchmark and for 8-, 32-, and 128-core systems, the paper breaks the
average memory access latency into time spent at the L2, L3, off-chip network,
L4, coherence invalidations from the L4, and main memory, normalised to COUP's
AMAT at 8 cores.  COUP's AMAT advantage comes almost entirely from eliminating
the invalidation/serialization component.

Expressed as a sweep spec: one simulation point per (benchmark, core count,
protocol), folded into the paper's normalised rows by the spec's builder.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Mapping, Optional, Sequence

from repro.experiments import settings
from repro.experiments.paper_workloads import PAPER_WORKLOAD_FACTORIES
from repro.experiments.sweep import SimPoint, SweepSpec, WorkloadSpec, execute
from repro.experiments.tables import print_table
from repro.sim.config import TopologyConfig, table1_config
from repro.sim.stats import AMAT_COMPONENTS
from repro.workloads import UpdateStyle

#: Protocols in the order the paper stacks them, with the update style each
#: one simulates.
_PROTOCOL_STYLES = (("COUP", UpdateStyle.COMMUTATIVE), ("MESI", UpdateStyle.ATOMIC))


def sweep_spec(
    benchmarks: Optional[Sequence[str]] = None,
    core_points: Optional[Sequence[int]] = None,
    *,
    topology: Optional[TopologyConfig] = None,
    experiment_id: str = "figure11",
) -> SweepSpec:
    """The Fig. 11 grid: benchmark x core point x protocol.

    ``topology`` selects the off-chip topology/contention configuration for
    every simulation point (default: the paper's dancehall with contention
    disabled).  With a contention-enabled topology, each row additionally
    reports the topology name and the peak link utilization — the extended
    "AMAT under load" mode (experiment id ``figure11-contention``).
    """
    benchmarks = (
        list(dict.fromkeys(benchmarks)) if benchmarks else list(PAPER_WORKLOAD_FACTORIES)
    )
    core_points = list(core_points) if core_points else settings.amat_core_points()
    contention = topology is not None and topology.contention

    points: List[SimPoint] = []
    for name in benchmarks:
        if name not in PAPER_WORKLOAD_FACTORIES:
            raise ValueError(f"unknown benchmark {name!r}")
        factory = PAPER_WORKLOAD_FACTORIES[name]
        # Duplicate core points yield duplicate rows but a single sweep point.
        for n_cores in dict.fromkeys(core_points):
            config = table1_config(n_cores, topology=topology)
            for protocol, style in _PROTOCOL_STYLES:
                points.append(
                    SimPoint(
                        f"{name}/c{n_cores}/{protocol}",
                        WorkloadSpec.plain(partial(factory, style)),
                        protocol,
                        n_cores,
                        config,
                    )
                )

    def build(results: Mapping[str, object]) -> Dict[str, List[dict]]:
        out: Dict[str, List[dict]] = {}
        for name in benchmarks:
            rows: List[dict] = []
            normalisation: Optional[float] = None
            for n_cores in core_points:
                for protocol, _style in _PROTOCOL_STYLES:
                    result = results[f"{name}/c{n_cores}/{protocol}"]
                    row = {
                        "benchmark": name,
                        "protocol": protocol,
                        "n_cores": n_cores,
                        "amat": result.amat,
                    }
                    row.update(result.amat_breakdown())
                    if contention:
                        link_stats = result.link_stats
                        row["topology"] = (topology.name if topology else "dancehall")
                        row["max_link_utilization"] = (
                            link_stats.max_link_utilization
                            if link_stats is not None
                            else 0.0
                        )
                    rows.append(row)
                    if normalisation is None and protocol == "COUP":
                        normalisation = result.amat
            # Normalise to COUP at the smallest core count, as the paper does.
            normalisation = normalisation or 1.0
            for row in rows:
                row["relative_amat"] = row["amat"] / normalisation if normalisation else 0.0
            out[name] = rows
        return out

    return SweepSpec(experiment_id, points, build)


def run_benchmark(
    name: str, core_points: Optional[Sequence[int]] = None
) -> List[dict]:
    """AMAT breakdown rows for one benchmark (one row per protocol/core count)."""
    spec = sweep_spec([name], core_points)
    return spec.rows(execute(spec))[name]


def run(
    benchmarks: Optional[Sequence[str]] = None,
    core_points: Optional[Sequence[int]] = None,
    *,
    topology: Optional[TopologyConfig] = None,
) -> Dict[str, List[dict]]:
    """Run the full Fig. 11 experiment (optionally under a loaded topology)."""
    spec = sweep_spec(benchmarks, core_points, topology=topology)
    return spec.rows(execute(spec))


def render(results: Dict[str, List[dict]]) -> None:
    """Print one Fig. 11 table per benchmark."""
    for name, rows in results.items():
        columns = ["protocol", "n_cores", "relative_amat", *AMAT_COMPONENTS]
        if rows and "topology" in rows[0]:
            # Extended contention mode: show the topology and the peak link
            # utilization next to the breakdown.
            columns = [
                "protocol",
                "n_cores",
                "topology",
                "max_link_utilization",
                "relative_amat",
                *AMAT_COMPONENTS,
            ]
        print_table(
            rows,
            columns=columns,
            title=f"Figure 11: {name} AMAT breakdown (normalised to COUP at the smallest core count)",
        )
        print()


def main() -> Dict[str, List[dict]]:
    """Regenerate Fig. 11 and print one table per benchmark."""
    results = run()
    render(results)
    return results


if __name__ == "__main__":
    main()
