"""Figure 11: average memory access time (AMAT) breakdown.

For each benchmark and for 8-, 32-, and 128-core systems, the paper breaks the
average memory access latency into time spent at the L2, L3, off-chip network,
L4, coherence invalidations from the L4, and main memory, normalised to COUP's
AMAT at 8 cores.  COUP's AMAT advantage comes almost entirely from eliminating
the invalidation/serialization component.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments import settings
from repro.experiments.paper_workloads import PAPER_WORKLOAD_FACTORIES
from repro.experiments.tables import print_table
from repro.sim.config import table1_config
from repro.sim.simulator import simulate
from repro.sim.stats import AMAT_COMPONENTS
from repro.workloads import UpdateStyle


def run_benchmark(
    name: str, core_points: Optional[Sequence[int]] = None
) -> List[dict]:
    """AMAT breakdown rows for one benchmark (one row per protocol/core count)."""
    if name not in PAPER_WORKLOAD_FACTORIES:
        raise ValueError(f"unknown benchmark {name!r}")
    factory = PAPER_WORKLOAD_FACTORIES[name]
    core_points = list(core_points) if core_points else settings.amat_core_points()

    rows: List[dict] = []
    normalisation: Optional[float] = None
    for n_cores in core_points:
        config = table1_config(n_cores)
        for protocol, style in (("COUP", UpdateStyle.COMMUTATIVE), ("MESI", UpdateStyle.ATOMIC)):
            trace = factory(style).generate(n_cores)
            result = simulate(trace, config, protocol, track_values=False)
            breakdown = result.amat_breakdown()
            row = {
                "benchmark": name,
                "protocol": protocol,
                "n_cores": n_cores,
                "amat": result.amat,
            }
            row.update(breakdown)
            rows.append(row)
            if normalisation is None and protocol == "COUP":
                normalisation = result.amat
    # Normalise to COUP at the smallest core count, as the paper does.
    normalisation = normalisation or 1.0
    for row in rows:
        row["relative_amat"] = row["amat"] / normalisation if normalisation else 0.0
    return rows


def run(
    benchmarks: Optional[Sequence[str]] = None,
    core_points: Optional[Sequence[int]] = None,
) -> Dict[str, List[dict]]:
    """Run the full Fig. 11 experiment."""
    benchmarks = list(benchmarks) if benchmarks else list(PAPER_WORKLOAD_FACTORIES)
    return {name: run_benchmark(name, core_points) for name in benchmarks}


def main() -> Dict[str, List[dict]]:
    """Regenerate Fig. 11 and print one table per benchmark."""
    results = run()
    columns = ["protocol", "n_cores", "relative_amat", *AMAT_COMPONENTS]
    for name, rows in results.items():
        print_table(
            rows,
            columns=columns,
            title=f"Figure 11: {name} AMAT breakdown (normalised to COUP at the smallest core count)",
        )
        print()
    return results


if __name__ == "__main__":
    main()
