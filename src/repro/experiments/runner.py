"""Command-line entry point: run one or all of the paper's experiments.

Usage::

    python -m repro.experiments.runner            # run everything
    python -m repro.experiments.runner figure10   # run a single experiment
    python -m repro.experiments.runner --list     # list experiment ids
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time
from typing import List

from repro.experiments import EXPERIMENT_MODULES


def run_experiment(experiment_id: str) -> None:
    """Import and run one experiment's ``main()``."""
    module_path = EXPERIMENT_MODULES[experiment_id]
    module = importlib.import_module(module_path)
    start = time.perf_counter()
    module.main()
    elapsed = time.perf_counter() - start
    print(f"[{experiment_id}] completed in {elapsed:.1f}s\n")


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (default: all)",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids and exit")
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in EXPERIMENT_MODULES:
            print(experiment_id)
        return 0

    selected = args.experiments or list(EXPERIMENT_MODULES)
    unknown = [e for e in selected if e not in EXPERIMENT_MODULES]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENT_MODULES)}", file=sys.stderr)
        return 2

    for experiment_id in selected:
        run_experiment(experiment_id)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
