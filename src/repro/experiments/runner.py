"""Command-line entry point: run one or all of the paper's experiments.

Usage::

    python -m repro.experiments.runner                 # run everything
    python -m repro.experiments.runner figure10        # run a single experiment
    python -m repro.experiments.runner --list          # list experiment ids
    python -m repro.experiments.runner --jobs 4        # parallel sweep points
    python -m repro.experiments.runner --jobs 4 --resume   # skip cached points

Every experiment exposes its grid as a declarative sweep spec
(:mod:`repro.experiments.sweep`), so ``--jobs N`` load-balances *individual
sweep points* — one (benchmark x core count x protocol) simulation each —
across worker processes instead of whole experiments.  Each point is seeded
deterministically from ``--seed``, the experiment id, and the point key, so
results do not depend on execution order or the degree of parallelism; the
per-experiment tables are rebuilt from the point results and printed in
submission order, matching a serial run.

``--cache-dir`` persists every completed point keyed by a content hash of
(machine config, workload parameters, protocol, seed, scale), plus every
materialized workload trace as a packed ``.npz`` file under
``<cache-dir>/traces``; ``--resume`` additionally reuses any matching cached
points, so an interrupted or repeated sweep only simulates what is missing.

With ``--jobs N``, each distinct trace is materialized once in the parent,
published into ``multiprocessing.shared_memory``, and mapped zero-copy by the
workers (disable with ``--no-shm``); traces never travel through pickles.

With ``--results-dir`` (implied by ``--jobs``), every experiment writes a
structured JSON record (id, status, elapsed seconds, captured output), and
point-granularity sweeps also write one record per sweep point under
``<results-dir>/points/`` so ``scripts/collect_results.py`` and CI can fold
them.

With ``--jobs N`` the points run under a supervised worker pool
(:mod:`repro.experiments.supervisor`): every point gets a size-scaled
wall-clock deadline, dead or hung workers are detected and their points
retried with bounded deterministic backoff, and points that keep failing
are quarantined instead of killing the campaign.  Each point outcome is
also journalled to a crash-safe write-ahead log under
``<results-dir>/journal/`` (:mod:`repro.experiments.journal`), which
``--resume`` replays so a campaign killed at any instant — even mid-write —
resumes exactly.  The recovery paths are exercised deterministically via
the ``REPRO_FAULT`` knob (:mod:`repro.experiments.faults`).
"""

from __future__ import annotations

import argparse
import contextlib
import hashlib
import importlib
import io
import json
import os
import random
import re
import sys
import time
import traceback
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple, Union, cast

if TYPE_CHECKING:
    from multiprocessing.shared_memory import SharedMemory

from repro import obs as _obs
from repro.experiments import (
    EXPERIMENT_MODULES,
    faults,
    journal,
    settings,
    supervisor,
    sweep,
)
from repro.obs import events as obs_events

#: Default directory for per-experiment JSON records.
DEFAULT_RESULTS_DIR = os.path.join("results", "experiments")

#: Trace transport for one point: a shared-memory handle (zero-copy), the
#: pickled columnar trace itself (fallback when shm publishing fails), or
#: None (the worker regenerates the trace).
_TraceTransport = Optional[Union["sweep.ShmTraceHandle", "sweep.ColumnarTrace"]]
#: One point-granularity work item shipped to a worker: (experiment id,
#: point key, base seed, scale, max cores, cache dir, resume flag, trace
#: transport).
_PointTask = Tuple[str, str, int, float, int, Optional[str], bool, _TraceTransport]
#: A completed point: (experiment id, point key, status, elapsed seconds,
#: replayed-from-cache flag, result payload or traceback text, stderr text).
_PointDone = Tuple[str, str, str, float, bool, object, str]
#: One whole-experiment work item: (experiment id, base seed, scale, max cores).
_WholeTask = Tuple[str, int, float, int]


@dataclass
class ExperimentOutcome:
    """Result of running one experiment."""

    experiment_id: str
    status: str  # "ok" or "error"
    elapsed_s: float
    seed: int
    scale: float
    max_cores: int
    error: Optional[str] = None
    #: Point-granularity sweeps record how many points ran and how many were
    #: replayed from the persistent cache (None for whole-experiment runs).
    n_points: Optional[int] = None
    cached_points: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _experiment_seed(base_seed: int, experiment_id: str) -> int:
    """Deterministic per-experiment seed, independent of execution order."""
    return random.Random(f"{base_seed}:{experiment_id}").getrandbits(32)


def _point_seed(base_seed: int, experiment_id: str, point_key: str) -> int:
    """Deterministic per-point seed, independent of scheduling."""
    return random.Random(f"{base_seed}:{experiment_id}:{point_key}").getrandbits(32)


def _seed_everything(seed: int) -> None:
    """Seed the global RNGs an experiment might consult.

    The workloads construct their own :func:`numpy.random.default_rng`
    instances from fixed seeds, so this is belt-and-braces: it guarantees
    that any stray use of the global generators is also reproducible.
    """
    random.seed(seed)
    try:
        import numpy as np

        np.random.seed(seed % (2**32))
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        pass


def run_experiment(experiment_id: str, base_seed: int = 0) -> ExperimentOutcome:
    """Import and run one experiment's ``main()``; never raises.

    A failure is reported in the returned outcome (and by :func:`main` as a
    nonzero exit code) instead of being swallowed or aborting sibling
    experiments.
    """
    seed = _experiment_seed(base_seed, experiment_id)
    _seed_everything(seed)
    module_path = EXPERIMENT_MODULES[experiment_id]
    start = time.perf_counter()
    try:
        module = importlib.import_module(module_path)
        module.main()
    except Exception:
        elapsed = time.perf_counter() - start
        print(f"[{experiment_id}] FAILED after {elapsed:.1f}s", file=sys.stderr)
        traceback.print_exc()
        return ExperimentOutcome(
            experiment_id=experiment_id,
            status="error",
            elapsed_s=elapsed,
            seed=seed,
            scale=settings.scale(),
            max_cores=settings.max_cores(),
            error=traceback.format_exc(),
        )
    elapsed = time.perf_counter() - start
    print(f"[{experiment_id}] completed in {elapsed:.1f}s\n")
    return ExperimentOutcome(
        experiment_id=experiment_id,
        status="ok",
        elapsed_s=elapsed,
        seed=seed,
        scale=settings.scale(),
        max_cores=settings.max_cores(),
    )


def _run_captured(args: _WholeTask) -> Tuple[ExperimentOutcome, str, str]:
    """Run one whole experiment with stdout/stderr captured.

    The parent's scale/max_cores settings travel in ``args`` and are applied
    here: with the ``spawn`` start method a worker re-imports
    :mod:`repro.experiments.settings` from scratch, so anything the parent
    configured via ``set_scale``/``set_max_cores`` would otherwise be lost.
    """
    experiment_id, base_seed, scale, max_cores = args
    settings.set_scale(scale)
    settings.set_max_cores(max_cores)
    out = io.StringIO()
    err = io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        outcome = run_experiment(experiment_id, base_seed)
    return outcome, out.getvalue(), err.getvalue()


# ---------------------------------------------------------------------------
# Point-granularity execution
# ---------------------------------------------------------------------------

#: Worker-side memo of sweep specs: every worker process rebuilds each
#: experiment's spec at most once (specs are deterministic given settings,
#: so a rebuilt spec names exactly the points the parent scheduled).
_worker_specs: Dict[str, sweep.SweepSpec] = {}


def _build_spec(experiment_id: str) -> Optional[sweep.SweepSpec]:
    """The experiment's sweep spec, or None if it does not expose one."""
    module = importlib.import_module(EXPERIMENT_MODULES[experiment_id])
    spec_fn = getattr(module, "sweep_spec", None)
    return spec_fn() if spec_fn is not None else None


#: Worker-side memo of attached shared-memory traces, keyed by segment name:
#: each worker maps a published trace at most once and reuses the view for
#: every sweep point that needs it.
_attached_traces: Dict[str, sweep.ColumnarTrace] = {}


def _trace_store_dir(cache_dir: Optional[str]) -> Optional[str]:
    """Directory holding persisted ``.npz`` traces under a point cache dir."""
    return os.path.join(cache_dir, "traces") if cache_dir else None


def _emit_point_obs(
    experiment_id: str,
    point_key: str,
    status: str,
    elapsed_s: float,
    delta: Mapping[str, object],
) -> None:
    """Append this point's telemetry delta to the worker's event segment.

    Best-effort: a telemetry I/O failure must never fail the point.
    """
    try:
        writer = obs_events.process_writer(_obs.events_dir())
        writer.emit(
            "point_obs",
            {
                "counters": delta.get("counters", {}),
                "elapsed_s": round(elapsed_s, 6),
                "experiment": experiment_id,
                "phases": delta.get("phases", {}),
                "point": point_key,
                "status": status,
            },
        )
    except OSError:
        pass


def _run_point_task(args: _PointTask, attempt: int = 0) -> _PointDone:
    """Worker entry point: execute one sweep point.

    Returns ``(experiment_id, point_key, status, elapsed_s, cached,
    payload, stderr_text)`` where ``payload`` is the point result on
    success or the formatted traceback on error.  ``attempt`` is the
    supervisor's retry index for this point, which keys deterministic
    fault injection (``REPRO_FAULT``): a ``times=1`` fault fires on the
    first attempt and the retry runs clean.
    """
    experiment_id, point_key, base_seed, scale, max_cores, cache_dir, resume, handle = args
    plan = faults.active_plan()
    if plan:
        if plan.should("kill", experiment_id, point_key, attempt) is not None:
            faults.fire_kill()
        hang = plan.should("hang", experiment_id, point_key, attempt)
        if hang is not None:
            faults.fire_hang(hang.secs)
    settings.set_scale(scale)
    settings.set_max_cores(max_cores)
    cache = sweep.ResultCache(cache_dir, read=resume) if cache_dir else None
    sweep.shared_trace_cache().store_dir = _trace_store_dir(cache_dir)
    _seed_everything(_point_seed(base_seed, experiment_id, point_key))
    obs_reg = _obs.get_registry()
    obs_baseline = (
        obs_reg.snapshot()
        if obs_reg is not None and _obs.events_enabled()
        else None
    )
    err = io.StringIO()
    start = time.perf_counter()
    try:
        with contextlib.redirect_stdout(io.StringIO()), contextlib.redirect_stderr(err):
            spec = _worker_specs.get(experiment_id)
            if spec is None:
                spec = _build_spec(experiment_id)
                if spec is None:
                    # The parent only schedules point tasks for experiments
                    # with a sweep spec; a worker-side rebuild losing it
                    # means the experiment module changed under our feet.
                    raise RuntimeError(
                        f"{experiment_id} no longer exposes a sweep spec"
                    )
                _worker_specs[experiment_id] = spec
            point = spec.point(point_key)
            if handle is not None:
                # The parent shipped this point's trace: as a shared-memory
                # handle (mapped zero-copy, once per worker) or — when shm
                # publishing failed in the parent — as the pickled trace
                # itself.  A transport failure degrades to regeneration;
                # anything unexpected propagates as the point's error.
                try:
                    if isinstance(handle, sweep.ColumnarTrace):
                        trace = handle
                    else:
                        shm_fault = (
                            plan.should("shm", experiment_id, point_key, attempt)
                            if plan
                            else None
                        )
                        if shm_fault is not None:
                            raise faults.FaultInjected(
                                f"injected shm-attach failure ({shm_fault.describe()})"
                            )
                        trace = _attached_traces.get(handle.shm_name)
                        if trace is None:
                            trace = sweep.attach_trace_shm(handle, in_worker=True)
                            _attached_traces[handle.shm_name] = trace
                    sweep.shared_trace_cache().put(
                        point.workload.key(point.n_cores), trace
                    )
                except (OSError, ValueError, faults.FaultInjected) as exc:
                    print(
                        f"[worker] {experiment_id}/{point_key}: trace "
                        f"transport failed ({exc}); regenerating",
                        file=err,
                    )
            value, cached = sweep.run_point(point, result_cache=cache)
    except Exception:
        elapsed = time.perf_counter() - start
        if obs_reg is not None and obs_baseline is not None:
            _emit_point_obs(
                experiment_id, point_key, "error", elapsed, obs_reg.delta(obs_baseline)
            )
        return (
            experiment_id,
            point_key,
            "error",
            elapsed,
            False,
            traceback.format_exc(),
            err.getvalue(),
        )
    elapsed = time.perf_counter() - start
    if obs_reg is not None and obs_baseline is not None:
        _emit_point_obs(
            experiment_id, point_key, "ok", elapsed, obs_reg.delta(obs_baseline)
        )
    return experiment_id, point_key, "ok", elapsed, cached, value, err.getvalue()


def _sanitize_point_key(point_key: str) -> str:
    """A filesystem-safe, collision-free file stem for a point key."""
    stem = re.sub(r"[^A-Za-z0-9._-]+", "_", point_key)
    digest = hashlib.sha1(point_key.encode()).hexdigest()[:8]
    return f"{stem}-{digest}"


def _write_point_record(
    results_dir: str,
    experiment_id: str,
    point_key: str,
    *,
    status: str,
    elapsed_s: float,
    cached: bool,
    seed: int,
    value: object = None,
    error: Optional[str] = None,
) -> str:
    """Write one sweep point's structured JSON record; returns the path."""
    directory = os.path.join(results_dir, "points", experiment_id)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{_sanitize_point_key(point_key)}.json")
    record: Dict[str, object] = {
        "experiment_id": experiment_id,
        "point": point_key,
        "status": status,
        "elapsed_s": elapsed_s,
        "cached": cached,
        "seed": seed,
        "scale": settings.scale(),
        "max_cores": settings.max_cores(),
    }
    if error is not None:
        record["error"] = error
    summary = getattr(value, "summary", None)
    if callable(summary):
        record["summary"] = summary()
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
    return path


def _write_record(results_dir: str, outcome: ExperimentOutcome, output: str) -> str:
    """Write one experiment's structured JSON record; returns the path."""
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, f"{outcome.experiment_id}.json")
    record: Dict[str, object] = asdict(outcome)
    record["output"] = output
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
    return path


def _assemble_experiment(
    experiment_id: str,
    spec: sweep.SweepSpec,
    point_results: Dict[str, object],
    point_errors: Dict[str, str],
    elapsed_s: float,
    cached_points: int,
    base_seed: int,
) -> Tuple[ExperimentOutcome, str, str]:
    """Fold one experiment's point results into its rows and printed table."""
    seed = _experiment_seed(base_seed, experiment_id)

    def _outcome(status: str, error: Optional[str] = None) -> ExperimentOutcome:
        return ExperimentOutcome(
            experiment_id=experiment_id,
            status=status,
            elapsed_s=elapsed_s,
            seed=seed,
            scale=settings.scale(),
            max_cores=settings.max_cores(),
            error=error,
            n_points=len(spec.points),
            cached_points=cached_points,
        )

    if point_errors:
        failed = ", ".join(sorted(point_errors))
        error = f"sweep points failed: {failed}\n" + "\n".join(point_errors.values())
        err_text = f"[{experiment_id}] FAILED after {elapsed_s:.1f}s\n" + error
        return _outcome("error", error), "", err_text

    out = io.StringIO()
    err = io.StringIO()
    try:
        module = importlib.import_module(EXPERIMENT_MODULES[experiment_id])
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
            results = spec.rows(point_results)
            module.render(results)
            print(f"[{experiment_id}] completed in {elapsed_s:.1f}s\n")
    except Exception:
        error = traceback.format_exc()
        err_text = err.getvalue() + f"[{experiment_id}] FAILED after {elapsed_s:.1f}s\n" + error
        return _outcome("error", error), out.getvalue(), err_text
    return _outcome("ok"), out.getvalue(), err.getvalue()


def _task_timeout(point: sweep.SweepPoint, base: float, scale: float) -> float:
    """Wall-clock budget for one attempt of a sweep point.

    The base (``REPRO_POINT_TIMEOUT``) is scaled up for larger workloads
    and wider machines; function points (verification sweeps) get a flat 4x
    budget because their cost does not track core count.
    """
    if isinstance(point, sweep.SimPoint):
        return base * max(1.0, scale) * max(1.0, point.n_cores / 32.0)
    return base * 4.0


def _supervised_task(payload: object, attempt: int) -> Tuple[str, object]:
    """Supervisor task function: run one point or whole-experiment task."""
    kind, task = cast(Tuple[str, object], payload)
    if kind == "point":
        return kind, _run_point_task(cast(_PointTask, task), attempt)
    return kind, _run_captured(cast(_WholeTask, task))


def run_parallel(
    experiment_ids: List[str],
    jobs: int,
    *,
    base_seed: int = 0,
    results_dir: Optional[str] = None,
    cache_dir: Optional[str] = None,
    resume: bool = False,
    use_shm: bool = True,
) -> List[ExperimentOutcome]:
    """Run experiments at sweep-point granularity in ``jobs`` workers.

    Each experiment's grid is expanded into individual sweep points, which
    are load-balanced across a supervised worker pool
    (:class:`repro.experiments.supervisor.Supervisor`); per-experiment
    tables are rebuilt from the point results and printed in submission
    order.  Experiments without a sweep spec fall back to whole-experiment
    execution in a worker.

    Fault tolerance: every point carries a size-scaled wall-clock deadline;
    a worker that dies (OOM kill, segfault) or hangs past its deadline is
    detected, its point retried with deterministic backoff, and a point
    that keeps failing is quarantined — recorded and reported, while the
    rest of the campaign completes.  With ``results_dir``, every point
    outcome is also appended to a crash-safe journal
    (``<results_dir>/journal/``); a resumed campaign replays journalled
    points whose cache entries verify, without re-dispatching them.

    With ``use_shm`` (the default), every distinct workload trace is
    materialized once in the parent, published into a named
    ``multiprocessing.shared_memory`` segment, and mapped zero-copy by the
    workers.  A publish failure degrades to pickle transport (the trace
    travels in the task payload); an attach failure degrades to per-worker
    regeneration — results are identical on every path.
    """
    import multiprocessing

    plan = faults.refresh_active_plan()
    scale = settings.scale()
    max_cores = settings.max_cores()
    timeout_base = settings.point_timeout()
    attempts_budget = settings.max_attempts()

    specs: Dict[str, Optional[sweep.SweepSpec]] = {}
    spec_errors: Dict[str, str] = {}
    for experiment_id in experiment_ids:
        try:
            specs[experiment_id] = _build_spec(experiment_id)
        except Exception:
            # Reported as a failed experiment below; siblings keep running.
            specs[experiment_id] = None
            spec_errors[experiment_id] = traceback.format_exc()

    trace_handles: Dict[Tuple[object, ...], _TraceTransport] = {}
    shm_segments: List["SharedMemory"] = []
    if use_shm:
        reclaimed = sweep.reclaim_stale_segments()
        if reclaimed:
            print(
                f"[runner] reclaimed {len(reclaimed)} stale shared-memory "
                "segment(s) left by crashed runs",
                file=sys.stderr,
            )
        parent_cache = sweep.shared_trace_cache()
        parent_cache.store_dir = _trace_store_dir(cache_dir)
    resume_cache = (
        sweep.ResultCache(cache_dir, read=True) if (resume and cache_dir) else None
    )

    journal_writer: Optional[journal.JournalWriter] = None
    journaled: Dict[Tuple[str, str], Mapping[str, object]] = {}
    if results_dir:
        journal_directory = journal.journal_dir(results_dir)
        if resume:
            # JournalCorruptError (damage beyond the recoverable tail)
            # propagates: resuming over a silently mis-folded journal could
            # skip work that never completed.
            replay = journal.replay_dir(journal_directory)
            journaled = journal.latest_point_records(replay)
            for torn_path in replay.truncated_segments:
                print(
                    f"[runner] journal segment {torn_path} has a torn tail "
                    "(crash mid-write); intact prefix recovered",
                    file=sys.stderr,
                )
        journal_writer = journal.JournalWriter(
            journal.fresh_segment_path(journal_directory, os.getpid()),
            torn_hook=plan.torn_hook(),
        )

    # Campaign-side telemetry: the parent's own event segment plus a
    # supervisor lifecycle hook.  Everything here is observational —
    # a failure to open the segment degrades to no events, never aborts.
    obs_reg = _obs.get_registry()
    obs_baseline = obs_reg.snapshot() if obs_reg is not None else None
    campaign_events: Optional[obs_events.EventWriter] = None
    if _obs.events_enabled():
        try:
            campaign_events = obs_events.EventWriter(_obs.events_dir(), "campaign")
        except OSError as exc:
            print(f"[runner] obs event segment unavailable ({exc})", file=sys.stderr)

    def _lifecycle(event: str, fields: Dict[str, object]) -> None:
        if obs_reg is not None:
            obs_reg.inc(f"supervisor.{event}")
        if campaign_events is not None:
            record = dict(fields)
            record["event"] = event
            record["worker"] = fields.get("pid", "?")
            campaign_events.emit("worker", record)

    def _handle_for(point: sweep.SweepPoint) -> _TraceTransport:
        if not use_shm or not isinstance(point, sweep.SimPoint):
            return None
        if resume_cache is not None and resume_cache.contains(point):
            # The point will replay from the result cache: don't pay to
            # materialize and publish a trace nobody will read.  (If the
            # cached record turns out stale, the worker regenerates.)
            return None
        try:
            key = point.workload.key(point.n_cores)
        except (TypeError, ValueError) as exc:
            print(
                f"[runner] {point.key}: workload key failed ({exc}); "
                "trace will regenerate in workers",
                file=sys.stderr,
            )
            return None
        if key not in trace_handles:
            try:
                trace = parent_cache.get(point.workload, point.n_cores)
            except Exception as exc:
                # Materialization failed in the parent; defer to the
                # workers, where the failure is reported per point.
                print(
                    f"[runner] {point.key}: trace materialization failed "
                    f"in parent ({exc}); deferring to workers",
                    file=sys.stderr,
                )
                trace_handles[key] = None
                return None
            if isinstance(trace, sweep.ColumnarTrace):
                try:
                    shm_handle, segment = sweep.publish_trace_shm(trace, key)
                    shm_segments.append(segment)
                    trace_handles[key] = shm_handle
                except (OSError, MemoryError, ValueError) as exc:
                    # Publish failure (e.g. /dev/shm exhausted): degrade to
                    # pickle transport — the trace rides the task payload.
                    print(
                        f"[runner] {point.key}: shm publish failed ({exc}); "
                        "falling back to pickle transport",
                        file=sys.stderr,
                    )
                    trace_handles[key] = trace
            else:  # codec fallback: workers regenerate the object form
                trace_handles[key] = None
        return trace_handles[key]

    point_results: Dict[str, Dict[str, object]] = {e: {} for e in experiment_ids}
    point_errors: Dict[str, Dict[str, str]] = {e: {} for e in experiment_ids}
    point_elapsed: Dict[str, float] = {e: 0.0 for e in experiment_ids}
    cached_counts: Dict[str, int] = {e: 0 for e in experiment_ids}
    whole_outcomes: Dict[str, Tuple[ExperimentOutcome, str, str]] = {}

    def _point_digest(experiment_id: str, point_key: str) -> Optional[str]:
        """Content digest binding a journal record to its cache entry."""
        spec = specs.get(experiment_id)
        if spec is None:
            return None
        fingerprint = spec.point(point_key).fingerprint()
        if fingerprint is None:
            return None
        return sweep.ResultCache.digest(fingerprint)

    def _journal_point(
        experiment_id: str,
        point_key: str,
        *,
        status: str,
        cached: bool,
        attempts: int,
    ) -> None:
        if journal_writer is None:
            return
        journal_writer.append(
            {
                "kind": "point",
                "experiment_id": experiment_id,
                "point": point_key,
                "status": status,
                "digest": _point_digest(experiment_id, point_key),
                "seed": _point_seed(base_seed, experiment_id, point_key),
                "cached": cached,
                "attempts": attempts,
                "scale": scale,
                "max_cores": max_cores,
            }
        )

    tasks: List[supervisor.TaskSpec] = []
    for experiment_id in experiment_ids:
        if experiment_id in spec_errors:
            continue
        spec = specs[experiment_id]
        if spec is None:
            tasks.append(
                supervisor.TaskSpec(
                    task_id=f"whole:{experiment_id}",
                    payload=("whole", (experiment_id, base_seed, scale, max_cores)),
                    timeout_s=timeout_base * 8.0,
                )
            )
            continue
        for point in spec.points:
            # Journal replay pre-pass: a point the journal marks complete,
            # whose content digest still matches and whose cache entry
            # verifies, is folded in the parent without being dispatched.
            record = journaled.get((experiment_id, point.key))
            if (
                record is not None
                and record.get("status") == "ok"
                and resume_cache is not None
            ):
                fingerprint = point.fingerprint()
                digest = (
                    sweep.ResultCache.digest(fingerprint)
                    if fingerprint is not None
                    else None
                )
                if digest is not None and record.get("digest") == digest:
                    hit, value = resume_cache.load(point)
                    if hit:
                        point_results[experiment_id][point.key] = value
                        cached_counts[experiment_id] += 1
                        if results_dir:
                            _write_point_record(
                                results_dir,
                                experiment_id,
                                point.key,
                                status="ok",
                                elapsed_s=0.0,
                                cached=True,
                                seed=_point_seed(base_seed, experiment_id, point.key),
                                value=value,
                            )
                        continue
            tasks.append(
                supervisor.TaskSpec(
                    task_id=f"point:{experiment_id}/{point.key}",
                    payload=(
                        "point",
                        (
                            experiment_id,
                            point.key,
                            base_seed,
                            scale,
                            max_cores,
                            cache_dir,
                            resume,
                            _handle_for(point),
                        ),
                    ),
                    timeout_s=_task_timeout(point, timeout_base, scale),
                )
            )

    # Live status line: one update per completed task, rewritten in place on
    # a tty, throttled to occasional plain lines otherwise (CI logs).
    n_total = len(tasks)
    progress = {"done": 0, "failed": 0, "cached": 0}
    progress_start = time.monotonic()
    progress_tty = sys.stderr.isatty()
    progress_last = [0.0]

    def _progress(status: str, cached: bool) -> None:
        progress["done"] += 1
        if status != "ok":
            progress["failed"] += 1
        if cached:
            progress["cached"] += 1
        elapsed = time.monotonic() - progress_start
        rate = progress["done"] / elapsed if elapsed > 0 else 0.0
        line = (
            f"[runner] {progress['done']}/{n_total} tasks done"
            f" ({progress['failed']} failed, {progress['cached']} cached,"
            f" {rate:.2f}/s)"
        )
        if progress_tty:
            end = "\n" if progress["done"] == n_total else ""
            sys.stderr.write(f"\r\x1b[K{line}{end}")
            sys.stderr.flush()
        elif elapsed - progress_last[0] >= 5.0 or progress["done"] == n_total:
            progress_last[0] = elapsed
            print(line, file=sys.stderr)

    def _point_done_event(
        experiment_id: str,
        point_key: str,
        *,
        status: str,
        elapsed_s: float,
        cached: bool,
        attempts: int,
    ) -> None:
        if campaign_events is not None:
            campaign_events.emit(
                "point_done",
                {
                    "attempts": attempts,
                    "cached": cached,
                    "elapsed_s": round(elapsed_s, 6),
                    "experiment": experiment_id,
                    "point": point_key,
                    "status": status,
                },
            )

    def _synthesized_error(experiment_id: str, error: str) -> ExperimentOutcome:
        return ExperimentOutcome(
            experiment_id=experiment_id,
            status="error",
            elapsed_s=0.0,
            seed=_experiment_seed(base_seed, experiment_id),
            scale=scale,
            max_cores=max_cores,
            error=error,
        )

    # fork (where available) keeps already-imported modules warm in workers.
    context = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else None
    )
    boss = supervisor.Supervisor(
        _supervised_task,
        jobs,
        max_attempts=attempts_budget,
        mp_context=context,
        on_lifecycle=(
            _lifecycle if (obs_reg is not None or campaign_events is not None) else None
        ),
    )
    try:
        for task_outcome in boss.run(tasks) if tasks else ():
            kind, _, rest = task_outcome.task_id.partition(":")
            if kind == "point":
                experiment_id, _, key = rest.partition("/")
                if task_outcome.status == "quarantined":
                    message = (
                        f"quarantined after {task_outcome.attempts} attempt(s):\n  "
                        + "\n  ".join(task_outcome.failures)
                    )
                    point_errors[experiment_id][key] = message
                    if results_dir:
                        _write_point_record(
                            results_dir,
                            experiment_id,
                            key,
                            status="quarantined",
                            elapsed_s=0.0,
                            cached=False,
                            seed=_point_seed(base_seed, experiment_id, key),
                            error=message,
                        )
                    _journal_point(
                        experiment_id,
                        key,
                        status="quarantined",
                        cached=False,
                        attempts=task_outcome.attempts,
                    )
                    _point_done_event(
                        experiment_id,
                        key,
                        status="quarantined",
                        elapsed_s=0.0,
                        cached=False,
                        attempts=task_outcome.attempts,
                    )
                    _progress("quarantined", False)
                    continue
                if task_outcome.status == "error":
                    # The task function itself raised (outside the point's
                    # own error capture) — deterministic, so never retried.
                    point_errors[experiment_id][key] = str(task_outcome.value)
                    if results_dir:
                        _write_point_record(
                            results_dir,
                            experiment_id,
                            key,
                            status="error",
                            elapsed_s=0.0,
                            cached=False,
                            seed=_point_seed(base_seed, experiment_id, key),
                            error=str(task_outcome.value),
                        )
                    _journal_point(
                        experiment_id,
                        key,
                        status="error",
                        cached=False,
                        attempts=task_outcome.attempts,
                    )
                    _point_done_event(
                        experiment_id,
                        key,
                        status="error",
                        elapsed_s=0.0,
                        cached=False,
                        attempts=task_outcome.attempts,
                    )
                    _progress("error", False)
                    continue
                _, done = cast(Tuple[str, object], task_outcome.value)
                (
                    experiment_id,
                    key,
                    status,
                    elapsed,
                    cached,
                    payload,
                    err_text,
                ) = cast(_PointDone, done)
                point_elapsed[experiment_id] += elapsed
                cached_counts[experiment_id] += int(cached)
                if status == "ok":
                    point_results[experiment_id][key] = payload
                else:
                    point_errors[experiment_id][key] = str(payload)
                if err_text:
                    sys.stderr.write(err_text)
                if results_dir:
                    _write_point_record(
                        results_dir,
                        experiment_id,
                        key,
                        status=status,
                        elapsed_s=elapsed,
                        cached=cached,
                        seed=_point_seed(base_seed, experiment_id, key),
                        value=payload if status == "ok" else None,
                        error=str(payload) if status != "ok" else None,
                    )
                _journal_point(
                    experiment_id,
                    key,
                    status=status,
                    cached=cached,
                    attempts=task_outcome.attempts,
                )
                _point_done_event(
                    experiment_id,
                    key,
                    status=status,
                    elapsed_s=elapsed,
                    cached=cached,
                    attempts=task_outcome.attempts,
                )
                _progress(status, cached)
            else:  # whole-experiment task
                experiment_id = rest
                if task_outcome.status in ("quarantined", "error"):
                    message = (
                        f"{task_outcome.status} after {task_outcome.attempts} "
                        "attempt(s):\n  " + "\n  ".join(task_outcome.failures)
                        if task_outcome.status == "quarantined"
                        else str(task_outcome.value)
                    )
                    whole_outcomes[experiment_id] = (
                        _synthesized_error(experiment_id, message),
                        "",
                        f"[{experiment_id}] FAILED\n{message}\n",
                    )
                    _progress("error", False)
                    continue
                _, done = cast(Tuple[str, object], task_outcome.value)
                whole_outcome, out, err = cast(
                    Tuple[ExperimentOutcome, str, str], done
                )
                whole_outcomes[whole_outcome.experiment_id] = (whole_outcome, out, err)
                _progress("ok", False)
    finally:
        boss.shutdown()
        if campaign_events is not None:
            # One campaign_obs delta captures the parent's own counters
            # (supervisor lifecycle, resume-cache hits) for the fold.
            if obs_reg is not None and obs_baseline is not None:
                campaign_events.emit(
                    "campaign_obs", dict(obs_reg.delta(obs_baseline))
                )
            campaign_events.close()
        if journal_writer is not None:
            journal_writer.close()
        # The parent owns every published segment: release them only after
        # all workers have drained (shutdown above joins them).
        for segment in shm_segments:
            sweep.release_trace_shm(segment)

    outcomes: List[ExperimentOutcome] = []
    for experiment_id in experiment_ids:
        if experiment_id in spec_errors:
            error = spec_errors[experiment_id]
            outcome = ExperimentOutcome(
                experiment_id=experiment_id,
                status="error",
                elapsed_s=0.0,
                seed=_experiment_seed(base_seed, experiment_id),
                scale=scale,
                max_cores=max_cores,
                error=error,
            )
            out, err = "", f"[{experiment_id}] FAILED building sweep spec\n" + error
        elif specs[experiment_id] is None:
            outcome, out, err = whole_outcomes[experiment_id]
        else:
            outcome, out, err = _assemble_experiment(
                experiment_id,
                specs[experiment_id],
                point_results[experiment_id],
                point_errors[experiment_id],
                point_elapsed[experiment_id],
                cached_counts[experiment_id],
                base_seed,
            )
        sys.stdout.write(out)
        if err:
            sys.stderr.write(err)
        if results_dir:
            _write_record(results_dir, outcome, out)
        outcomes.append(outcome)
    return outcomes


def run_serial(
    experiment_ids: List[str],
    *,
    base_seed: int = 0,
    results_dir: Optional[str] = None,
    cache_dir: Optional[str] = None,
    resume: bool = False,
) -> List[ExperimentOutcome]:
    """Run experiments one after another in this process.

    With ``resume``, a persistent point cache is installed process-wide so
    each experiment's ``run()`` skips sweep points that are already cached.
    A cache dir also persists workload traces as ``.npz`` files under
    ``<cache-dir>/traces``, so later sweeps load instead of regenerating.
    """
    if cache_dir:
        sweep.set_result_cache(sweep.ResultCache(cache_dir, read=resume))
        sweep.shared_trace_cache().store_dir = _trace_store_dir(cache_dir)
    try:
        outcomes: List[ExperimentOutcome] = []
        for experiment_id in experiment_ids:
            if results_dir:
                outcome, out, err = _run_captured(
                    (experiment_id, base_seed, settings.scale(), settings.max_cores())
                )
                sys.stdout.write(out)
                if err:
                    sys.stderr.write(err)
                _write_record(results_dir, outcome, out)
            else:
                outcome = run_experiment(experiment_id, base_seed)
            outcomes.append(outcome)
        return outcomes
    finally:
        if cache_dir:
            sweep.set_result_cache(None)
            sweep.shared_trace_cache().store_dir = None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (default: all)",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids and exit")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "run in N worker processes, load-balancing individual sweep "
            "points (default: 1, serial)"
        ),
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base seed; every experiment and sweep point derives its own deterministic seed",
    )
    parser.add_argument(
        "--results-dir",
        default=None,
        metavar="DIR",
        help=(
            "write one JSON record per experiment (and per sweep point) into DIR "
            f"(default with --jobs: {DEFAULT_RESULTS_DIR})"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "persist completed sweep points into DIR, keyed by a content hash "
            "of (config, workload params, protocol, seed, scale) "
            f"(default with --resume: {sweep.DEFAULT_CACHE_DIR})"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="reuse sweep points already present in the cache dir, simulating only what is missing",
    )
    parser.add_argument(
        "--no-shm",
        action="store_true",
        help=(
            "with --jobs: disable shared-memory trace transport and let each "
            "worker materialize its own traces (results are identical)"
        ),
    )
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in EXPERIMENT_MODULES:
            print(experiment_id)
        return 0

    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2

    selected = args.experiments or list(EXPERIMENT_MODULES)
    unknown = [e for e in selected if e not in EXPERIMENT_MODULES]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENT_MODULES)}", file=sys.stderr)
        return 2

    results_dir = args.results_dir
    if results_dir is None and args.jobs > 1:
        results_dir = DEFAULT_RESULTS_DIR
    cache_dir = args.cache_dir
    if cache_dir is None and args.resume:
        cache_dir = sweep.DEFAULT_CACHE_DIR

    if args.jobs > 1:
        try:
            outcomes = run_parallel(
                selected,
                args.jobs,
                base_seed=args.seed,
                results_dir=results_dir,
                cache_dir=cache_dir,
                resume=args.resume,
                use_shm=not args.no_shm,
            )
        except faults.FaultSpecError as exc:
            print(f"invalid REPRO_FAULT specification: {exc}", file=sys.stderr)
            return 2
        except journal.JournalCorruptError as exc:
            print(
                f"result journal corrupt beyond the recoverable tail: {exc}\n"
                "refusing to resume over damaged records; move the journal "
                "directory aside to start fresh",
                file=sys.stderr,
            )
            return 3
        except faults.SimulatedCrash as exc:
            print(f"campaign aborted by injected crash: {exc}", file=sys.stderr)
            return 70
    else:
        outcomes = run_serial(
            selected,
            base_seed=args.seed,
            results_dir=results_dir,
            cache_dir=cache_dir,
            resume=args.resume,
        )

    failures = [outcome for outcome in outcomes if not outcome.ok]
    if failures:
        failed = ", ".join(outcome.experiment_id for outcome in failures)
        print(f"{len(failures)} experiment(s) failed: {failed}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
