"""Command-line entry point: run one or all of the paper's experiments.

Usage::

    python -m repro.experiments.runner                 # run everything
    python -m repro.experiments.runner figure10        # run a single experiment
    python -m repro.experiments.runner --list          # list experiment ids
    python -m repro.experiments.runner --jobs 4        # run experiments in parallel

Experiments are independent of each other, so ``--jobs N`` runs them in
worker processes.  Each experiment is seeded deterministically from
``--seed`` and its own id, so results do not depend on the execution order
or the degree of parallelism; each worker's stdout is captured and replayed
in submission order so the combined output matches a serial run.

With ``--results-dir`` (implied by ``--jobs``), every experiment writes a
structured JSON record (id, status, elapsed seconds, captured output) that
``scripts/collect_results.py`` and CI can consume.
"""

from __future__ import annotations

import argparse
import contextlib
import importlib
import io
import json
import os
import random
import sys
import time
import traceback
from dataclasses import asdict, dataclass
from typing import List, Optional, Tuple

from repro.experiments import EXPERIMENT_MODULES, settings

#: Default directory for per-experiment JSON records.
DEFAULT_RESULTS_DIR = os.path.join("results", "experiments")


@dataclass
class ExperimentOutcome:
    """Result of running one experiment."""

    experiment_id: str
    status: str  # "ok" or "error"
    elapsed_s: float
    seed: int
    scale: float
    max_cores: int
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _experiment_seed(base_seed: int, experiment_id: str) -> int:
    """Deterministic per-experiment seed, independent of execution order."""
    return random.Random(f"{base_seed}:{experiment_id}").getrandbits(32)


def _seed_everything(seed: int) -> None:
    """Seed the global RNGs an experiment might consult.

    The workloads construct their own :func:`numpy.random.default_rng`
    instances from fixed seeds, so this is belt-and-braces: it guarantees
    that any stray use of the global generators is also reproducible.
    """
    random.seed(seed)
    try:
        import numpy as np

        np.random.seed(seed % (2**32))
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        pass


def run_experiment(experiment_id: str, base_seed: int = 0) -> ExperimentOutcome:
    """Import and run one experiment's ``main()``; never raises.

    A failure is reported in the returned outcome (and by :func:`main` as a
    nonzero exit code) instead of being swallowed or aborting sibling
    experiments.
    """
    seed = _experiment_seed(base_seed, experiment_id)
    _seed_everything(seed)
    module_path = EXPERIMENT_MODULES[experiment_id]
    start = time.perf_counter()
    try:
        module = importlib.import_module(module_path)
        module.main()
    except Exception:
        elapsed = time.perf_counter() - start
        print(f"[{experiment_id}] FAILED after {elapsed:.1f}s", file=sys.stderr)
        traceback.print_exc()
        return ExperimentOutcome(
            experiment_id=experiment_id,
            status="error",
            elapsed_s=elapsed,
            seed=seed,
            scale=settings.scale(),
            max_cores=settings.max_cores(),
            error=traceback.format_exc(),
        )
    elapsed = time.perf_counter() - start
    print(f"[{experiment_id}] completed in {elapsed:.1f}s\n")
    return ExperimentOutcome(
        experiment_id=experiment_id,
        status="ok",
        elapsed_s=elapsed,
        seed=seed,
        scale=settings.scale(),
        max_cores=settings.max_cores(),
    )


def _run_captured(args: Tuple[str, int, float, int]) -> Tuple[ExperimentOutcome, str, str]:
    """Worker entry point: run one experiment with stdout/stderr captured.

    The parent's scale/max_cores settings travel in ``args`` and are applied
    here: with the ``spawn`` start method a worker re-imports
    :mod:`repro.experiments.settings` from scratch, so anything the parent
    configured via ``set_scale``/``set_max_cores`` would otherwise be lost.
    """
    experiment_id, base_seed, scale, max_cores = args
    settings.set_scale(scale)
    settings.set_max_cores(max_cores)
    out = io.StringIO()
    err = io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        outcome = run_experiment(experiment_id, base_seed)
    return outcome, out.getvalue(), err.getvalue()


def _write_record(results_dir: str, outcome: ExperimentOutcome, output: str) -> str:
    """Write one experiment's structured JSON record; returns the path."""
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, f"{outcome.experiment_id}.json")
    record = asdict(outcome)
    record["output"] = output
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2)
    return path


def run_parallel(
    experiment_ids: List[str],
    jobs: int,
    *,
    base_seed: int = 0,
    results_dir: Optional[str] = None,
) -> List[ExperimentOutcome]:
    """Run experiments in ``jobs`` worker processes, preserving output order."""
    import multiprocessing

    outcomes: List[ExperimentOutcome] = []
    scale = settings.scale()
    max_cores = settings.max_cores()
    work = [
        (experiment_id, base_seed, scale, max_cores)
        for experiment_id in experiment_ids
    ]
    # fork (where available) keeps already-imported modules warm in workers.
    context = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else None
    )
    with context.Pool(processes=jobs) as pool:
        for outcome, out, err in pool.imap(_run_captured, work):
            sys.stdout.write(out)
            if err:
                sys.stderr.write(err)
            if results_dir:
                _write_record(results_dir, outcome, out)
            outcomes.append(outcome)
    return outcomes


def run_serial(
    experiment_ids: List[str],
    *,
    base_seed: int = 0,
    results_dir: Optional[str] = None,
) -> List[ExperimentOutcome]:
    """Run experiments one after another in this process."""
    outcomes: List[ExperimentOutcome] = []
    for experiment_id in experiment_ids:
        if results_dir:
            outcome, out, err = _run_captured(
                (experiment_id, base_seed, settings.scale(), settings.max_cores())
            )
            sys.stdout.write(out)
            if err:
                sys.stderr.write(err)
            _write_record(results_dir, outcome, out)
        else:
            outcome = run_experiment(experiment_id, base_seed)
        outcomes.append(outcome)
    return outcomes


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (default: all)",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids and exit")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run experiments in N worker processes (default: 1, serial)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base seed; each experiment derives its own deterministic seed",
    )
    parser.add_argument(
        "--results-dir",
        default=None,
        metavar="DIR",
        help=(
            "write one JSON record per experiment into DIR "
            f"(default with --jobs: {DEFAULT_RESULTS_DIR})"
        ),
    )
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in EXPERIMENT_MODULES:
            print(experiment_id)
        return 0

    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2

    selected = args.experiments or list(EXPERIMENT_MODULES)
    unknown = [e for e in selected if e not in EXPERIMENT_MODULES]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENT_MODULES)}", file=sys.stderr)
        return 2

    results_dir = args.results_dir
    if results_dir is None and args.jobs > 1:
        results_dir = DEFAULT_RESULTS_DIR

    if args.jobs > 1:
        outcomes = run_parallel(
            selected, args.jobs, base_seed=args.seed, results_dir=results_dir
        )
    else:
        outcomes = run_serial(selected, base_seed=args.seed, results_dir=results_dir)

    failures = [outcome for outcome in outcomes if not outcome.ok]
    if failures:
        failed = ", ".join(outcome.experiment_id for outcome in failures)
        print(f"{len(failures)} experiment(s) failed: {failed}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
