"""Figure 2: histogram performance vs. number of bins on 64 cores.

The paper's Fig. 2 compares three histogram implementations — MESI with atomic
fetch-and-add, MESI with software privatization (TBB-style reductions), and
COUP with commutative additions — as the number of output bins grows from 32
to 32K, with a fixed number of input elements.  Performance is reported
relative to COUP at 32 bins (higher is better).

With few bins, atomics are heavily contended and privatization wins among the
software schemes; with many bins, the privatized reduction phase dominates and
atomics win.  COUP avoids both costs and stays on top across the sweep.
"""

from __future__ import annotations

from functools import partial
from typing import List, Mapping, Optional, Sequence

from repro.experiments import settings
from repro.experiments.sweep import SimPoint, SweepSpec, WorkloadSpec, execute
from repro.experiments.tables import print_table
from repro.sim.config import table1_config
from repro.software.privatization import PrivatizationLevel
from repro.workloads import HistogramWorkload, UpdateStyle

#: Bin counts swept by the paper (32 .. 32K); the default harness uses a
#: subset so the sweep finishes in seconds.
PAPER_BIN_COUNTS = (32, 128, 512, 2048, 8192, 32768)
DEFAULT_BIN_COUNTS = (32, 256, 2048, 16384)


def sweep_spec(
    bin_counts: Sequence[int] = DEFAULT_BIN_COUNTS,
    *,
    n_cores: int = 64,
    n_items: Optional[int] = None,
) -> SweepSpec:
    """The Fig. 2 grid: three schemes per bin count."""
    n_cores = min(n_cores, settings.max_cores())
    n_items = n_items if n_items is not None else settings.scaled(24_000)
    config = table1_config(n_cores)
    bin_counts = tuple(bin_counts)

    points: List[SimPoint] = []
    # Duplicate bin counts yield duplicate rows but a single sweep point each.
    for n_bins in dict.fromkeys(bin_counts):
        coup_hist = partial(
            HistogramWorkload,
            n_bins=n_bins,
            n_items=n_items,
            update_style=UpdateStyle.COMMUTATIVE,
        )
        atomic_hist = partial(
            HistogramWorkload,
            n_bins=n_bins,
            n_items=n_items,
            update_style=UpdateStyle.ATOMIC,
        )
        points.append(
            SimPoint(
                f"bins{n_bins}/coup", WorkloadSpec.plain(coup_hist), "COUP", n_cores, config
            )
        )
        points.append(
            SimPoint(
                f"bins{n_bins}/atomics",
                WorkloadSpec.plain(atomic_hist),
                "MESI",
                n_cores,
                config,
            )
        )
        points.append(
            SimPoint(
                f"bins{n_bins}/privatization",
                WorkloadSpec.privatized(atomic_hist, PrivatizationLevel.CORE),
                "MESI",
                n_cores,
                config,
            )
        )

    def build(results: Mapping[str, object]) -> List[dict]:
        rows: List[dict] = []
        for n_bins in bin_counts:
            rows.append(
                {
                    "n_bins": n_bins,
                    "coup_cycles": results[f"bins{n_bins}/coup"].run_cycles,
                    "atomics_cycles": results[f"bins{n_bins}/atomics"].run_cycles,
                    "privatization_cycles": results[f"bins{n_bins}/privatization"].run_cycles,
                }
            )
        baseline = rows[0]["coup_cycles"]
        for row in rows:
            row["coup_rel"] = baseline / row["coup_cycles"]
            row["atomics_rel"] = baseline / row["atomics_cycles"]
            row["privatization_rel"] = baseline / row["privatization_cycles"]
        return rows

    return SweepSpec("figure2", points, build)


def run(
    bin_counts: Sequence[int] = DEFAULT_BIN_COUNTS,
    *,
    n_cores: int = 64,
    n_items: Optional[int] = None,
) -> List[dict]:
    """Run the Fig. 2 sweep and return one row per bin count.

    Each row reports the run time of the three schemes and their performance
    relative to COUP at the smallest bin count, which is the paper's
    normalisation.
    """
    spec = sweep_spec(bin_counts, n_cores=n_cores, n_items=n_items)
    return spec.rows(execute(spec))


def render(rows: List[dict]) -> None:
    """Print the Fig. 2 table."""
    print_table(
        rows,
        columns=[
            "n_bins",
            "coup_rel",
            "atomics_rel",
            "privatization_rel",
        ],
        title="Figure 2: histogram performance vs. bins (relative to COUP at "
        f"{rows[0]['n_bins']} bins, higher is better)",
    )


def main() -> List[dict]:
    """Regenerate Fig. 2 and print it as a table."""
    rows = run()
    render(rows)
    return rows


if __name__ == "__main__":
    main()
