"""Table 1: configuration of the simulated system.

The paper's Table 1 lists the parameters of the simulated machine.  This
experiment reports the corresponding parameters of the reproduction's
:func:`repro.sim.config.table1_config` machine so they can be compared side by
side and checked by tests.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.experiments.sweep import FuncPoint, SweepSpec, execute
from repro.experiments.tables import print_table
from repro.sim.config import SystemConfig, TopologyConfig, table1_config

#: Named off-chip topology presets for the Table 1 machine.  ``dancehall``
#: is the paper's Fig. 9 arrangement (and the default); the others are the
#: contention-enabled alternatives the topology sensitivity study sweeps.
TOPOLOGY_PRESETS: Dict[str, TopologyConfig] = {
    "dancehall": TopologyConfig(),
    "dancehall-contended": TopologyConfig(name="dancehall", contention=True),
    "crossbar": TopologyConfig(name="crossbar", contention=True),
    "mesh": TopologyConfig(name="mesh", contention=True),
    "torus": TopologyConfig(name="torus", contention=True),
}


def preset_config(n_cores: int, preset: str) -> SystemConfig:
    """The Table 1 machine with one of :data:`TOPOLOGY_PRESETS` applied."""
    try:
        topology = TOPOLOGY_PRESETS[preset]
    except KeyError as exc:
        raise ValueError(
            f"unknown topology preset {preset!r}; expected one of "
            f"{sorted(TOPOLOGY_PRESETS)}"
        ) from exc
    return table1_config(n_cores, topology=topology)


def rows_for(config: SystemConfig) -> List[dict]:
    """Describe a machine configuration as (parameter, value) rows."""
    return [
        {"parameter": "cores", "value": f"{config.n_cores} ({config.cores_per_chip}/chip)"},
        {"parameter": "processor chips", "value": config.n_chips},
        {"parameter": "l4 chips", "value": config.n_l4_chips},
        {
            "parameter": "L1D",
            "value": f"{config.l1d.size_bytes // 1024}KB {config.l1d.ways}-way, {config.l1d.latency}-cycle",
        },
        {
            "parameter": "L2",
            "value": f"{config.l2.size_bytes // 1024}KB {config.l2.ways}-way, {config.l2.latency}-cycle",
        },
        {
            "parameter": "L3",
            "value": (
                f"{config.l3.size_bytes // (1024 * 1024)}MB, {config.l3.banks} banks, "
                f"{config.l3.ways}-way, {config.l3.latency}-cycle"
            ),
        },
        {
            "parameter": "L4",
            "value": (
                f"{config.l4.size_bytes // (1024 * 1024)}MB/chip, {config.l4.banks} banks, "
                f"{config.l4.ways}-way, {config.l4.latency}-cycle"
            ),
        },
        {
            "parameter": "off-chip network",
            "value": (
                f"{config.network.topology.name}, "
                f"{config.network.offchip_link_latency}-cycle links"
                + (
                    f", contention on ({config.network.topology.link_bandwidth_bytes_per_cycle:g} B/cycle links)"
                    if config.network.topology.contention
                    else ""
                )
            ),
        },
        {
            "parameter": "coherence",
            "value": f"MESI/MEUSI, {config.line_bytes}B lines, no silent drops",
        },
        {
            "parameter": "main memory",
            "value": (
                f"{config.memory.channels_per_l4_chip} channels/L4 chip, "
                f"{config.memory.latency}-cycle latency"
            ),
        },
        {
            "parameter": "reduction unit",
            "value": (
                f"{config.reduction_unit.lane_bits}-bit, "
                f"1 line / {config.reduction_unit.cycles_per_line} cycles"
            ),
        },
    ]


def sweep_spec(n_cores: int = 128) -> SweepSpec:
    """A single descriptive point: the Table 1 machine's parameters."""
    config = table1_config(n_cores)
    point = FuncPoint(
        "config",
        lambda ctx: rows_for(config),
        fingerprint_data={"config": dataclasses.asdict(config)},
    )
    return SweepSpec("table1", [point], lambda results: results["config"])


def run(n_cores: int = 128) -> List[dict]:
    """Build the Table 1 rows for the reproduction's machine."""
    spec = sweep_spec(n_cores)
    return spec.rows(execute(spec))


def render(rows: List[dict]) -> None:
    """Print the Table 1 rows."""
    print_table(rows, columns=["parameter", "value"], title="Table 1: simulated system configuration")


def main() -> List[dict]:
    rows = run()
    render(rows)
    return rows


if __name__ == "__main__":
    main()
