"""Deterministic fault injection for the campaign fabric.

The supervisor (:mod:`repro.experiments.supervisor`) and the result journal
(:mod:`repro.experiments.journal`) exist to survive worker deaths, hangs,
shared-memory failures, and torn journal writes.  None of those paths may be
"discovered in production": this module injects each fault class *on demand
and deterministically*, so recovery is exercised in CI and the recovered
campaign can be compared bit-for-bit against a fault-free run.

Faults are requested through the ``REPRO_FAULT`` environment knob
(registered in :data:`repro.experiments.settings.ENV_KNOBS`).  Grammar::

    spec      ::= directive (";" directive)*
    directive ::= kind (":" param "=" value ("," param "=" value)*)?
    kind      ::= "kill" | "hang" | "shm" | "torn"

Directive kinds:

* ``kill`` — the worker process SIGKILLs itself before executing the
  matching point (simulates an OOM kill / hardware loss).
* ``hang`` — the worker sleeps ``secs`` (default 3600) before executing the
  matching point, so the supervisor's per-point deadline must reap it.
* ``shm`` — the worker's shared-memory trace attach raises
  :class:`FaultInjected`, exercising the degrade-to-regeneration path.
* ``torn`` — the parent's journal append writes only a prefix of the
  record (``cut`` bytes, default half) and raises :class:`SimulatedCrash`,
  simulating a campaign killed mid-write.

Directive parameters (all optional):

* ``point=<substr>`` — only tasks whose point key contains the substring.
* ``exp=<substr>`` — only tasks whose experiment id contains the substring.
* ``times=<n>`` — fire on attempts ``0 .. n-1`` of each matching task
  (default 1: the fault fires once per point and the retry succeeds).
* ``secs=<float>`` — sleep duration for ``hang`` (default 3600).
* ``cut=<n>`` — bytes of the journal record actually written for ``torn``
  (default: half the encoded record).

Determinism: whether a fault fires depends only on the directive, the task's
(experiment id, point key) and its attempt index — never on wall-clock time
or random draws — so a fault campaign is exactly repeatable.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

#: Recognised directive kinds, in documentation order.
FAULT_KINDS: Tuple[str, ...] = ("kill", "hang", "shm", "torn")

#: Signature of the journal torn-write hook: ``(record, encoded_length) ->
#: bytes to actually write`` or ``None`` for a clean write.
TornHook = Callable[[Mapping[str, object], int], Optional[int]]


class FaultSpecError(ValueError):
    """A malformed ``REPRO_FAULT`` specification."""


class FaultInjected(RuntimeError):
    """Raised at an injection site that simulates a recoverable failure."""


class SimulatedCrash(RuntimeError):
    """Raised to abort the campaign process as an injected hard crash."""


@dataclass(frozen=True, slots=True)
class FaultDirective:
    """One parsed ``REPRO_FAULT`` directive."""

    kind: str
    point: str = ""
    experiment: str = ""
    times: int = 1
    secs: float = 3600.0
    cut: int = 0

    def matches(self, experiment_id: str, point_key: str, attempt: int) -> bool:
        """True when this directive fires for the given task attempt."""
        return (
            self.point in point_key
            and self.experiment in experiment_id
            and attempt < self.times
        )

    def describe(self) -> str:
        """Compact human-readable form for log lines."""
        parts = [self.kind]
        if self.experiment:
            parts.append(f"exp={self.experiment}")
        if self.point:
            parts.append(f"point={self.point}")
        if self.times != 1:
            parts.append(f"times={self.times}")
        return ":".join(parts[:1]) + (":" + ",".join(parts[1:]) if parts[1:] else "")


def parse_fault_spec(text: str) -> Tuple[FaultDirective, ...]:
    """Parse a ``REPRO_FAULT`` value; raises :class:`FaultSpecError`."""
    directives: List[FaultDirective] = []
    for raw in text.split(";"):
        raw = raw.strip()
        if not raw:
            continue
        kind, _, param_text = raw.partition(":")
        kind = kind.strip()
        if kind not in FAULT_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {kind!r} in {raw!r}; "
                f"expected one of {', '.join(FAULT_KINDS)}"
            )
        params: Dict[str, str] = {}
        if param_text:
            for pair in param_text.split(","):
                name, sep, value = pair.partition("=")
                if not sep or not name.strip():
                    raise FaultSpecError(
                        f"malformed parameter {pair!r} in {raw!r}; expected name=value"
                    )
                params[name.strip()] = value.strip()
        try:
            directive = FaultDirective(
                kind=kind,
                point=params.pop("point", ""),
                experiment=params.pop("exp", ""),
                times=int(params.pop("times", "1")),
                secs=float(params.pop("secs", "3600")),
                cut=int(params.pop("cut", "0")),
            )
        except ValueError as exc:
            raise FaultSpecError(f"malformed parameter value in {raw!r}: {exc}") from exc
        if params:
            unknown = ", ".join(sorted(params))
            raise FaultSpecError(f"unknown parameter(s) {unknown} in {raw!r}")
        if directive.times < 1:
            raise FaultSpecError(f"times must be >= 1 in {raw!r}")
        directives.append(directive)
    return tuple(directives)


class FaultPlan:
    """The active set of fault directives plus parent-side firing counters.

    Worker-side faults (``kill``/``hang``/``shm``) are matched against the
    task's attempt index, which the supervisor threads into the worker, so a
    ``times=1`` directive fires exactly once per matching point and the
    retry runs clean.  The parent-side ``torn`` fault has no retry loop, so
    the plan counts its firings in memory instead.
    """

    __slots__ = ("directives", "_fired")

    def __init__(self, directives: Tuple[FaultDirective, ...] = ()) -> None:
        self.directives = directives
        self._fired: Dict[int, int] = {}

    @classmethod
    def from_env(cls) -> "FaultPlan":
        """Parse the plan from ``REPRO_FAULT`` (empty knob: no faults)."""
        return cls(parse_fault_spec(os.environ.get("REPRO_FAULT", "")))

    def __bool__(self) -> bool:
        return bool(self.directives)

    def should(
        self, kind: str, experiment_id: str, point_key: str, attempt: int
    ) -> Optional[FaultDirective]:
        """The first matching directive of ``kind`` for this attempt."""
        for directive in self.directives:
            if directive.kind == kind and directive.matches(
                experiment_id, point_key, attempt
            ):
                return directive
        return None

    def fire_counted(
        self, kind: str, experiment_id: str, point_key: str
    ) -> Optional[FaultDirective]:
        """Parent-side match: each directive's in-memory count is its attempt."""
        for index, directive in enumerate(self.directives):
            if directive.kind != kind:
                continue
            fired = self._fired.get(index, 0)
            if directive.matches(experiment_id, point_key, fired):
                self._fired[index] = fired + 1
                return directive
        return None

    def torn_hook(self) -> Optional[TornHook]:
        """A journal torn-write hook, or None when no ``torn`` directive exists.

        The hook receives the record about to be journalled and the encoded
        length; it returns the number of bytes the journal should actually
        write before simulating the crash (``None`` = write cleanly).
        """
        if not any(directive.kind == "torn" for directive in self.directives):
            return None

        def hook(record: Mapping[str, object], nbytes: int) -> Optional[int]:
            experiment_id = str(record.get("experiment_id", ""))
            point_key = str(record.get("point", ""))
            directive = self.fire_counted("torn", experiment_id, point_key)
            if directive is None:
                return None
            cut = directive.cut if 0 < directive.cut < nbytes else nbytes // 2
            return cut

        return hook


#: Process-wide active plan; parsed lazily from the environment so forked
#: workers inherit the parent's parsed plan and spawned workers re-parse the
#: same (inherited) environment.
_active_plan: Optional[FaultPlan] = None


def active_plan() -> FaultPlan:
    """The process-wide fault plan (parsed from ``REPRO_FAULT`` on first use)."""
    global _active_plan
    if _active_plan is None:
        _active_plan = FaultPlan.from_env()
    return _active_plan


def refresh_active_plan() -> FaultPlan:
    """Re-parse ``REPRO_FAULT`` and install the result as the active plan.

    The campaign runner calls this at the start of every campaign so an
    environment change between runs (tests, the chaos CI lane) takes effect,
    and so forked workers inherit a plan consistent with the environment.
    """
    global _active_plan
    _active_plan = FaultPlan.from_env()
    return _active_plan


def set_active_plan(plan: Optional[FaultPlan]) -> None:
    """Install (or clear, with ``None``) the process-wide plan (tests)."""
    global _active_plan
    _active_plan = plan


def fire_kill() -> None:
    """Injection action: SIGKILL the current process (no cleanup runs)."""
    os.kill(os.getpid(), signal.SIGKILL)


def fire_hang(secs: float) -> None:
    """Injection action: block for ``secs`` seconds."""
    time.sleep(secs)
