"""Experiment harness: one module per table and figure of the paper.

Every module exposes ``run(...)`` returning structured rows and ``main()``
printing the corresponding table; the registry below maps experiment ids to
those entry points so benchmarks, tests, and the command line can discover
them uniformly.
"""

from repro.experiments import settings
from repro.experiments.tables import format_table, geometric_mean, print_table

#: Experiment id -> dotted module path implementing it.
EXPERIMENT_MODULES = {
    "figure2": "repro.experiments.figure02_histogram_bins",
    "figure8": "repro.experiments.figure08_verification",
    "figure10": "repro.experiments.figure10_speedups",
    "figure11": "repro.experiments.figure11_amat",
    "figure12": "repro.experiments.figure12_privatization",
    "figure13": "repro.experiments.figure13_refcount",
    "table1": "repro.experiments.table1_configuration",
    "table2": "repro.experiments.table2_benchmarks",
    "traffic": "repro.experiments.traffic_reduction",
    "sensitivity": "repro.experiments.sensitivity_reduction_unit",
    # Interconnect subsystem: AMAT under load and topology sensitivity.
    "figure11-contention": "repro.experiments.figure11_amat_contention",
    "sensitivity-topology": "repro.experiments.sensitivity_topology",
    # Ablations beyond the paper's figures (design-choice studies).
    "ablation-interleaving": "repro.experiments.ablation_interleaving",
    "ablation-hierarchical": "repro.experiments.ablation_hierarchical_reduction",
}

__all__ = [
    "EXPERIMENT_MODULES",
    "format_table",
    "geometric_mean",
    "print_table",
    "settings",
]
