"""Workload framework.

A workload describes a parallel program at the level the coherence protocol
cares about: which cores issue which memory accesses (loads, stores, atomics,
commutative updates) to which addresses, in which order, and with how much
independent compute between them.  Each workload can be *generated* for any
core count, producing a :class:`~repro.sim.access.WorkloadTrace`.

Workloads also support *variants* that model the software techniques the
paper compares against (Sec. 2.2 / Sec. 4): the same logical computation can
be expressed with conventional atomic operations, with COUP commutative
updates, with core- or socket-level privatization, or with delegation, and
the resulting traces differ exactly as the real programs' access streams
would.
"""

from __future__ import annotations

import abc
import enum
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.sim.access import AccessType, MemoryAccess, Trace, WorkloadTrace
from repro.sim.columnar import VK_NONE, ColumnarTrace, code_for, encode_value


class UpdateStyle(enum.Enum):
    """How a workload expresses its updates to shared data."""

    #: Conventional atomic read-modify-write instructions (the paper's baseline).
    ATOMIC = "atomic"
    #: COUP commutative-update instructions.
    COMMUTATIVE = "commutative"
    #: Remote memory operations shipped to the home shared-cache bank.
    REMOTE = "remote"
    #: Plain stores (only correct when the data is private to the thread).
    PRIVATE_STORE = "private_store"


# Address-space layout: each workload's data structures are placed in disjoint
# regions so synthetic traces never alias accidentally.
REGION_BYTES = 1 << 28


class AddressMap:
    """Carves the simulated address space into named regions.

    Consecutive regions are staggered by an odd number of cache lines so that
    different regions do not alias onto the same cache sets (a real allocator
    would not hand out 256 MiB-aligned blocks either); without the stagger,
    workloads with many regions — e.g. one privatized replica per core — would
    suffer pathological conflict misses that no real machine would see.
    """

    #: Stagger between regions, in bytes: an odd number of 64-byte lines.
    REGION_STAGGER = 64 * 1031

    def __init__(self, base: int = 0x1000_0000) -> None:
        self._base = base
        self._regions: Dict[str, int] = {}
        self._next = base

    def region(self, name: str, size_bytes: int = REGION_BYTES) -> int:
        """Base address of a named region, allocating it on first use."""
        if name not in self._regions:
            self._regions[name] = self._next
            self._next += size_bytes + self.REGION_STAGGER
        return self._regions[name]

    def element(self, name: str, index: int, element_bytes: int = 8) -> int:
        """Byte address of the ``index``-th element of a named array."""
        return self.region(name) + index * element_bytes


@dataclass
class WorkloadStats:
    """Static characteristics of a generated workload (Table 2 reporting)."""

    name: str
    comm_op: str
    total_accesses: int
    update_accesses: int
    read_accesses: int
    total_instructions: int
    comm_op_fraction: float
    params: dict

    def as_row(self) -> dict:
        return {
            "benchmark": self.name,
            "comm_ops": self.comm_op,
            "accesses": self.total_accesses,
            "updates": self.update_accesses,
            "reads": self.read_accesses,
            "instructions": self.total_instructions,
            "comm_op_fraction": self.comm_op_fraction,
        }


class Workload(abc.ABC):
    """Base class for workload generators.

    Subclasses implement :meth:`_build` to emit per-core traces for a given
    core count.  Generation is deterministic given the constructor parameters
    and ``seed``, which tests rely on — and which :meth:`trace_key` turns
    into a stable identity so the sweep engine can materialize each trace
    once and share it across protocols and machine configurations.
    """

    #: Short name used in experiment tables (matches the paper's names).
    name: str = "workload"
    #: Description of the commutative operation used, for Table 2.
    comm_op_label: str = "64b int add"

    #: Instance attributes that are generation infrastructure rather than
    #: parameters, and therefore excluded from :meth:`trace_key`.
    TRACE_KEY_EXCLUDED = frozenset({"addresses"})

    def __init__(self, *, seed: int = 42, update_style: UpdateStyle = UpdateStyle.COMMUTATIVE) -> None:
        self.seed = seed
        self.update_style = update_style
        self.addresses = AddressMap()

    # -- helpers for subclasses ------------------------------------------------

    def _rng(self, stream: int = 0) -> np.random.Generator:
        return np.random.default_rng((self.seed, stream))

    def make_update(
        self,
        address: int,
        op,
        value,
        *,
        think: int = 0,
    ) -> MemoryAccess:
        """Build an update access according to the workload's update style."""
        if self.update_style is UpdateStyle.ATOMIC:
            return MemoryAccess.atomic(address, op, value, think=think)
        if self.update_style is UpdateStyle.COMMUTATIVE:
            return MemoryAccess.commutative(address, op, value, think=think)
        if self.update_style is UpdateStyle.REMOTE:
            return MemoryAccess.remote_update(address, op, value, think=think)
        return MemoryAccess.store(address, value, think=think)

    def _update_shape(self, op=None):
        """(access_type, op, size_bytes) triple :meth:`make_update` would use.

        Trace builders with large inner loops resolve the update shape once
        via this helper and construct :class:`MemoryAccess` records directly,
        instead of re-dispatching on the update style per element.
        """
        op = op if op is not None else getattr(self, "op", None)
        if self.update_style is UpdateStyle.ATOMIC:
            return AccessType.ATOMIC_RMW, op, op.word_bytes
        if self.update_style is UpdateStyle.COMMUTATIVE:
            return AccessType.COMMUTATIVE_UPDATE, op, op.word_bytes
        if self.update_style is UpdateStyle.REMOTE:
            return AccessType.REMOTE_UPDATE, op, op.word_bytes
        return AccessType.STORE, None, 8

    def _update_code(self, value, op=None) -> int:
        """Packed ``type_code`` of the update :meth:`make_update` would build.

        ``value`` is a representative operand (its int/float kind is folded
        into the code).  Vectorized trace builders resolve this once per
        column instead of dispatching on the update style per element.
        """
        access_type, update_op, size = self._update_shape(op)
        value_kind, _delta = encode_value(value)
        return code_for(access_type, update_op, size, value_kind)

    @staticmethod
    def _load_code(size_bytes: int = 8) -> int:
        """Packed ``type_code`` of a plain load of ``size_bytes``."""
        return code_for(AccessType.LOAD, None, size_bytes, VK_NONE)

    @staticmethod
    def split_work(n_items: int, n_cores: int) -> List[range]:
        """Contiguous block partition of ``n_items`` among ``n_cores``."""
        bounds = np.linspace(0, n_items, n_cores + 1).astype(int)
        return [range(int(bounds[i]), int(bounds[i + 1])) for i in range(n_cores)]

    def trace_key(self) -> tuple:
        """Hashable identity of the traces this workload would generate.

        Two workloads with equal keys generate identical traces for every
        core count, so the key (plus the core count and generation variant)
        is what the sweep engine's trace cache and persistent result cache
        hash.  The key covers the class and every parameter attribute:
        primitives and enums directly, and sequences of primitives as
        tuples.  An attribute of any other type makes the key unique to this
        *instance* (via a process-unique token, never ``id()``, whose values
        recur once objects are freed) — refusing to share a trace is always
        safe, silently sharing the wrong one is not.
        """
        items = []
        for attr_name, value in sorted(vars(self).items()):
            if attr_name in self.TRACE_KEY_EXCLUDED or attr_name.startswith("_"):
                continue
            if isinstance(value, enum.Enum):
                items.append((attr_name, (type(value).__name__, value.name)))
            elif value is None or isinstance(value, (bool, int, float, str)):
                items.append((attr_name, value))
            elif isinstance(value, (tuple, list)) and all(
                item is None or isinstance(item, (bool, int, float, str)) for item in value
            ):
                items.append((attr_name, tuple(value)))
            else:
                items.append((attr_name, ("unkeyable", self._unkeyable_token())))
        return (type(self).__qualname__, tuple(items))

    #: Source of process-unique tokens for unkeyable workloads.
    _unkeyable_tokens = itertools.count()

    def _unkeyable_token(self) -> int:
        """A token that is stable for this instance and never reused."""
        token = self.__dict__.get("_trace_key_token")
        if token is None:
            token = next(Workload._unkeyable_tokens)
            self._trace_key_token = token
        return token

    # -- public API --------------------------------------------------------------

    @abc.abstractmethod
    def _build(self, n_cores: int) -> WorkloadTrace:
        """Emit the per-core traces for ``n_cores`` cores."""

    def _build_columnar(self, n_cores: int) -> ColumnarTrace:
        """Emit the packed columnar traces for ``n_cores`` cores.

        Subclasses override this with a vectorized builder that produces the
        columns directly (same parameters, same RNG draw order — the
        round-trip suite pins ``_build_columnar(n)`` array-equal to
        ``ColumnarTrace.from_workload(_build(n))``).  The default packs the
        object-form trace, which is always correct but not faster.
        """
        return ColumnarTrace.from_workload(self._build(n_cores))

    def generate(self, n_cores: int) -> WorkloadTrace:
        """Generate the workload trace for ``n_cores`` cores."""
        if n_cores <= 0:
            raise ValueError("n_cores must be positive")
        trace = self._build(n_cores)
        trace.params.setdefault("update_style", self.update_style.value)
        trace.params.setdefault("seed", self.seed)
        trace.validate()
        return trace

    def generate_columnar(self, n_cores: int) -> ColumnarTrace:
        """Generate the packed columnar trace for ``n_cores`` cores.

        Semantically identical to :meth:`generate` (same accesses, same
        order, same metadata) in the representation the simulator's columnar
        fast path and the sweep engine's caches consume natively.
        """
        if n_cores <= 0:
            raise ValueError("n_cores must be positive")
        trace = self._build_columnar(n_cores)
        trace.params.setdefault("update_style", self.update_style.value)
        trace.params.setdefault("seed", self.seed)
        trace.validate()
        return trace

    def stats(self, n_cores: int, trace: Optional[WorkloadTrace] = None) -> WorkloadStats:
        """Static statistics of the generated trace (Table 2).

        ``trace`` lets callers that already materialized the trace (e.g.
        through the sweep engine's trace cache) avoid regenerating it; it
        must be a trace this workload's :meth:`generate` produced for
        ``n_cores``.
        """
        if trace is None:
            trace = self.generate(n_cores)
        if isinstance(trace, ColumnarTrace):
            updates, reads = trace.update_read_counts()
        else:
            updates = sum(
                1
                for core_trace in trace.per_core
                for access in core_trace
                if access.access_type.is_update
            )
            reads = sum(
                1
                for core_trace in trace.per_core
                for access in core_trace
                if not access.access_type.is_update
            )
        return WorkloadStats(
            name=self.name,
            comm_op=self.comm_op_label,
            total_accesses=trace.total_accesses,
            update_accesses=updates,
            read_accesses=reads,
            total_instructions=trace.total_instructions,
            comm_op_fraction=trace.commutative_fraction(),
            params=dict(trace.params),
        )

    def reference_result(self) -> Optional[Dict[int, object]]:
        """Sequentially computed expected memory values, if meaningful.

        Subclasses that update well-defined shared structures override this so
        integration tests can compare the protocol's final memory image with a
        sequential execution of the same computation.
        """
        return None
