"""Reference-counting microbenchmarks (Sec. 5.4, Fig. 13).

Two microbenchmarks model the two reference-counting regimes the paper
studies:

* **Immediate deallocation** (:class:`ImmediateRefcountWorkload`): each thread
  performs a fixed number of increment and decrement-and-read operations over
  a pool of shared counters, choosing a random counter each iteration.  The
  low-count variant keeps 0 or 1 references per thread and object (surpluses
  oscillate around zero, the worst case for SNZI); the high-count variant
  keeps up to five (SNZI's best case).  Variants: flat atomic counters
  (``XADD``), COUP commutative adds (reads trigger reductions), and SNZI
  trees.

* **Delayed deallocation** (:class:`DelayedRefcountWorkload`): threads perform
  only increments/decrements during an epoch, then check which counters are
  zero at epoch boundaries.  Variants: COUP (commutative adds plus a
  commutative-OR "modified" bitmap, read between epochs) and Refcache
  (per-thread delta caches flushed at epoch end).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

import numpy as np

from repro.core.commutative import CommutativeOp
from repro.sim.access import AccessType, MemoryAccess, Trace, WorkloadTrace
from repro.sim.columnar import VK_INT, VK_UINT, ColumnBuilder, ColumnarTrace, code_for
from repro.software.refcache import RefcacheThreadCache
from repro.software.snzi import SnziTree
from repro.workloads.base import UpdateStyle, Workload


class RefcountScheme(enum.Enum):
    """Reference-counting implementation being modelled."""

    XADD = "xadd"
    COUP = "coup"
    SNZI = "snzi"
    REFCACHE = "refcache"


class CountMode(enum.Enum):
    """How many references each thread holds per object (Fig. 13a vs 13b)."""

    LOW = "low"
    HIGH = "high"


#: Increment probability given the number of references currently held, in
#: high-count mode (from the paper's description of the microbenchmark).
HIGH_COUNT_INCREMENT_PROBABILITY = {0: 1.0, 1: 0.7, 2: 0.5, 3: 0.5, 4: 0.3, 5: 0.0}


class ImmediateRefcountWorkload(Workload):
    """Immediate-deallocation reference counting over shared counters."""

    name = "refcount-immediate"
    comm_op_label = "64b int add"

    THINK_PER_OP = 15

    def __init__(
        self,
        n_counters: int = 1024,
        updates_per_thread: int = 2000,
        *,
        scheme: RefcountScheme = RefcountScheme.COUP,
        count_mode: CountMode = CountMode.LOW,
        counter_bytes: int = 8,
        seed: int = 42,
    ) -> None:
        style = (
            UpdateStyle.COMMUTATIVE if scheme is RefcountScheme.COUP else UpdateStyle.ATOMIC
        )
        super().__init__(seed=seed, update_style=style)
        if n_counters <= 0 or updates_per_thread <= 0:
            raise ValueError("n_counters and updates_per_thread must be positive")
        if scheme is RefcountScheme.REFCACHE:
            raise ValueError("Refcache applies to the delayed-deallocation benchmark")
        self.n_counters = n_counters
        self.updates_per_thread = updates_per_thread
        self.scheme = scheme
        self.count_mode = count_mode
        self.counter_bytes = counter_bytes
        self.op = CommutativeOp.ADD_I64

    def _counter_address(self, counter: int) -> int:
        return self.addresses.element("refcount_counters", counter, self.counter_bytes)

    def _choose_increment(self, rng: np.random.Generator, held: int) -> bool:
        if self.count_mode is CountMode.LOW:
            return held == 0
        probability = HIGH_COUNT_INCREMENT_PROBABILITY.get(min(held, 5), 0.0)
        return bool(rng.random() < probability)

    def _build(self, n_cores: int) -> WorkloadTrace:
        per_core: List[Trace] = []
        snzi_trees: Dict[int, SnziTree] = {}
        if self.scheme is RefcountScheme.SNZI:
            snzi_trees = {
                counter: SnziTree(self.addresses, counter, n_cores)
                for counter in range(self.n_counters)
            }

        for core_id in range(n_cores):
            rng = self._rng(1000 + core_id)
            held: Dict[int, int] = {}
            trace: Trace = []
            for _ in range(self.updates_per_thread):
                counter = int(rng.integers(0, self.n_counters))
                references = held.get(counter, 0)
                increment = self._choose_increment(rng, references)
                if increment:
                    held[counter] = references + 1
                    trace.extend(self._increment(core_id, counter, snzi_trees))
                else:
                    held[counter] = max(0, references - 1)
                    trace.extend(self._decrement_and_read(core_id, counter, snzi_trees))
            per_core.append(trace)

        return WorkloadTrace(
            name=f"{self.name}-{self.scheme.value}-{self.count_mode.value}",
            per_core=per_core,
            params={
                "n_counters": self.n_counters,
                "updates_per_thread": self.updates_per_thread,
                "scheme": self.scheme.value,
                "count_mode": self.count_mode.value,
            },
        )

    def _build_columnar(self, n_cores: int) -> ColumnarTrace:
        """Column-direct twin of :meth:`_build` for the flat-counter schemes.

        The per-update RNG draws depend on the evolving held-reference state,
        so the loop stays sequential — but it emits raw column values instead
        of constructing an object per access.  SNZI trees interleave helper-
        built sub-traces and fall back to packing the object form.
        """
        if self.scheme is RefcountScheme.SNZI:
            return super()._build_columnar(n_cores)
        base = self.addresses.region("refcount_counters")
        update_code = self._update_code(1)
        load_code = self._load_code(8)
        counter_bytes = self.counter_bytes
        think = self.THINK_PER_OP
        columns = []
        for core_id in range(n_cores):
            rng = self._rng(1000 + core_id)
            held: Dict[int, int] = {}
            builder = ColumnBuilder()
            append = builder.append
            for _ in range(self.updates_per_thread):
                counter = int(rng.integers(0, self.n_counters))
                references = held.get(counter, 0)
                address = base + counter * counter_bytes
                if self._choose_increment(rng, references):
                    held[counter] = references + 1
                    append(update_code, address, 1, think)
                else:
                    held[counter] = max(0, references - 1)
                    append(update_code, address, -1, think)
                    append(load_code, address, 0, 2)
            columns.append(builder.build())
        return ColumnarTrace(
            name=f"{self.name}-{self.scheme.value}-{self.count_mode.value}",
            columns=columns,
            params={
                "n_counters": self.n_counters,
                "updates_per_thread": self.updates_per_thread,
                "scheme": self.scheme.value,
                "count_mode": self.count_mode.value,
            },
        )

    def _increment(
        self, core_id: int, counter: int, snzi_trees: Dict[int, SnziTree]
    ) -> Trace:
        if self.scheme is RefcountScheme.SNZI:
            trace = snzi_trees[counter].arrive(core_id)
            trace[0].think_instructions += self.THINK_PER_OP
            return trace
        return [
            self.make_update(self._counter_address(counter), self.op, 1, think=self.THINK_PER_OP)
        ]

    def _decrement_and_read(
        self, core_id: int, counter: int, snzi_trees: Dict[int, SnziTree]
    ) -> Trace:
        if self.scheme is RefcountScheme.SNZI:
            trace = snzi_trees[counter].depart(core_id)
            trace[0].think_instructions += self.THINK_PER_OP
            trace.extend(snzi_trees[counter].query(core_id))
            return trace
        address = self._counter_address(counter)
        return [
            self.make_update(address, self.op, -1, think=self.THINK_PER_OP),
            MemoryAccess.load(address, think=2),
        ]

    def reference_result(self) -> Optional[Dict[int, object]]:
        """Expected counter values (flat-counter schemes only)."""
        if self.scheme is RefcountScheme.SNZI:
            return None
        return None  # Values depend on the per-core RNG interleaving of held sets.


class DelayedRefcountWorkload(Workload):
    """Delayed-deallocation reference counting with per-epoch zero checks."""

    name = "refcount-delayed"
    comm_op_label = "64b int add + 64b OR"

    THINK_PER_OP = 12
    BITS_PER_WORD = 64

    def __init__(
        self,
        n_counters: int = 4096,
        updates_per_epoch: int = 100,
        n_epochs: int = 2,
        *,
        scheme: RefcountScheme = RefcountScheme.COUP,
        seed: int = 42,
    ) -> None:
        style = (
            UpdateStyle.COMMUTATIVE if scheme is RefcountScheme.COUP else UpdateStyle.ATOMIC
        )
        super().__init__(seed=seed, update_style=style)
        if scheme not in (RefcountScheme.COUP, RefcountScheme.REFCACHE):
            raise ValueError("delayed deallocation compares COUP against Refcache")
        if min(n_counters, updates_per_epoch, n_epochs) <= 0:
            raise ValueError("workload parameters must be positive")
        self.n_counters = n_counters
        self.updates_per_epoch = updates_per_epoch
        self.n_epochs = n_epochs
        self.scheme = scheme
        self.op = CommutativeOp.ADD_I64

    def _counter_address(self, counter: int) -> int:
        return self.addresses.element("delayed_counters", counter, 8)

    def _bitmap_address(self, counter: int) -> int:
        word = counter // self.BITS_PER_WORD
        return self.addresses.element("delayed_modified_bitmap", word, 8)

    def _build(self, n_cores: int) -> WorkloadTrace:
        per_core: List[Trace] = [[] for _ in range(n_cores)]
        phase_boundaries: List[List[int]] = []
        caches = [
            RefcacheThreadCache(self.addresses, core_id) for core_id in range(n_cores)
        ]
        #: Which counters each core marked as modified this epoch (COUP variant).
        for epoch in range(self.n_epochs):
            modified_per_core: List[set] = [set() for _ in range(n_cores)]
            for core_id in range(n_cores):
                rng = self._rng((epoch + 1) * 10_000 + core_id)
                trace = per_core[core_id]
                for _ in range(self.updates_per_epoch):
                    counter = int(rng.integers(0, self.n_counters))
                    delta = 1 if rng.random() < 0.5 else -1
                    if self.scheme is RefcountScheme.COUP:
                        trace.append(
                            MemoryAccess.commutative(
                                self._counter_address(counter), self.op, delta, think=self.THINK_PER_OP
                            )
                        )
                        trace.append(
                            MemoryAccess.commutative(
                                self._bitmap_address(counter),
                                CommutativeOp.OR_64,
                                1 << (counter % self.BITS_PER_WORD),
                                think=1,
                            )
                        )
                        modified_per_core[core_id].add(counter)
                    else:
                        trace.extend(caches[core_id].update(counter, delta))
            phase_boundaries.append([len(trace) for trace in per_core])

            # End of epoch: check for zero counters (COUP) or flush deltas
            # (Refcache), then a second barrier before the next epoch begins.
            for core_id in range(n_cores):
                trace = per_core[core_id]
                if self.scheme is RefcountScheme.COUP:
                    for counter in sorted(modified_per_core[core_id]):
                        trace.append(MemoryAccess.load(self._bitmap_address(counter), think=3))
                        trace.append(MemoryAccess.load(self._counter_address(counter), think=3))
                else:
                    trace.extend(caches[core_id].flush(self._counter_address))
            phase_boundaries.append([len(trace) for trace in per_core])

        return WorkloadTrace(
            name=f"{self.name}-{self.scheme.value}",
            per_core=per_core,
            params={
                "n_counters": self.n_counters,
                "updates_per_epoch": self.updates_per_epoch,
                "n_epochs": self.n_epochs,
                "scheme": self.scheme.value,
            },
            phase_boundaries=phase_boundaries,
        )

    def _build_columnar(self, n_cores: int) -> ColumnarTrace:
        """Column-direct twin of :meth:`_build` (same RNG replay order)."""
        comm = AccessType.COMMUTATIVE_UPDATE
        add_code = code_for(comm, CommutativeOp.ADD_I64, 8, VK_INT)
        or_code_int = code_for(comm, CommutativeOp.OR_64, 8, VK_INT)
        or_code_uint = code_for(comm, CommutativeOp.OR_64, 8, VK_UINT)
        load_code = self._load_code(8)
        builders = [ColumnBuilder() for _ in range(n_cores)]
        phase_boundaries: List[List[int]] = []
        caches = [
            RefcacheThreadCache(self.addresses, core_id) for core_id in range(n_cores)
        ]
        for epoch in range(self.n_epochs):
            modified_per_core: List[set] = [set() for _ in range(n_cores)]
            for core_id in range(n_cores):
                rng = self._rng((epoch + 1) * 10_000 + core_id)
                builder = builders[core_id]
                for _ in range(self.updates_per_epoch):
                    counter = int(rng.integers(0, self.n_counters))
                    delta = 1 if rng.random() < 0.5 else -1
                    if self.scheme is RefcountScheme.COUP:
                        builder.append(
                            add_code, self._counter_address(counter), delta, self.THINK_PER_OP
                        )
                        bit = counter % self.BITS_PER_WORD
                        builder.append(
                            or_code_uint if bit == 63 else or_code_int,
                            self._bitmap_address(counter),
                            (1 << bit) - (1 << 64 if bit == 63 else 0),
                            1,
                        )
                        modified_per_core[core_id].add(counter)
                    else:
                        builder.extend_objects(caches[core_id].update(counter, delta))
            phase_boundaries.append([len(builder) for builder in builders])

            for core_id in range(n_cores):
                builder = builders[core_id]
                if self.scheme is RefcountScheme.COUP:
                    for counter in sorted(modified_per_core[core_id]):
                        builder.append(load_code, self._bitmap_address(counter), 0, 3)
                        builder.append(load_code, self._counter_address(counter), 0, 3)
                else:
                    builder.extend_objects(caches[core_id].flush(self._counter_address))
            phase_boundaries.append([len(builder) for builder in builders])

        return ColumnarTrace(
            name=f"{self.name}-{self.scheme.value}",
            columns=[builder.build() for builder in builders],
            params={
                "n_counters": self.n_counters,
                "updates_per_epoch": self.updates_per_epoch,
                "n_epochs": self.n_epochs,
                "scheme": self.scheme.value,
            },
            phase_boundaries=phase_boundaries,
        )
