"""Structured-grid particle simulation workload (``fluidanimate``).

The paper uses PARSEC's fluidanimate, modified so that updates to shared grid
cells use atomic operations instead of locks.  The coherence-relevant pattern
is a regular iterative algorithm on a spatial grid: each thread owns a
contiguous block of cells and, per time step, accumulates force/density
contributions into its own cells plus the boundary cells of neighbouring
threads (the ghost-cell pattern of Sec. 4.1).  Only a small fraction of cells
are shared, and each shared cell receives only a few updates from neighbours
per phase, so COUP's benefit is modest (the paper reports 4% at 128 cores).

The reproduction models a 2D grid partitioned into horizontal slabs; interior
cell updates are thread-private, boundary-row updates are shared with the
adjacent thread, and a read phase at the end of each step consumes all cells.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.commutative import CommutativeOp
from repro.sim.access import MemoryAccess, Trace, WorkloadTrace
from repro.sim.columnar import ACCESS_DTYPE, ColumnarTrace, encode_value, make_columns
from repro.workloads.base import UpdateStyle, Workload


class FluidanimateWorkload(Workload):
    """Regular grid computation with shared boundary (ghost) cells."""

    name = "fluidanimate"
    comm_op_label = "32b FP add"

    THINK_PER_CELL = 20
    THINK_PER_NEIGHBOUR = 6

    def __init__(
        self,
        grid_x: int = 64,
        grid_y: int = 64,
        *,
        n_steps: int = 2,
        updates_per_boundary_cell: int = 2,
        seed: int = 42,
        update_style: UpdateStyle = UpdateStyle.COMMUTATIVE,
    ) -> None:
        super().__init__(seed=seed, update_style=update_style)
        if grid_x <= 0 or grid_y <= 0 or n_steps <= 0:
            raise ValueError("grid dimensions and n_steps must be positive")
        self.grid_x = grid_x
        self.grid_y = grid_y
        self.n_steps = n_steps
        self.updates_per_boundary_cell = updates_per_boundary_cell
        self.op = CommutativeOp.ADD_F32

    def _cell_address(self, x: int, y: int) -> int:
        return self.addresses.element("fluid_cells", y * self.grid_x + x, 4)

    def _build(self, n_cores: int) -> WorkloadTrace:
        rows = self.split_work(self.grid_y, n_cores)
        per_core: List[Trace] = [[] for _ in range(n_cores)]
        phase_boundaries: List[List[int]] = []

        for _step in range(self.n_steps):
            # Update phase: accumulate contributions into own and boundary cells.
            for core_id in range(n_cores):
                trace = per_core[core_id]
                own_rows = rows[core_id]
                if len(own_rows) == 0:
                    continue
                for y in own_rows:
                    for x in range(self.grid_x):
                        # Interior contribution to the thread's own cell.
                        trace.append(
                            self.make_update(
                                self._cell_address(x, y), self.op, 1.0, think=self.THINK_PER_CELL
                            )
                        )
                # Contributions to the neighbouring threads' boundary rows.
                for neighbour_row, owner in (
                    (own_rows.start - 1, core_id - 1),
                    (own_rows.stop, core_id + 1),
                ):
                    if not 0 <= owner < n_cores or not 0 <= neighbour_row < self.grid_y:
                        continue
                    for x in range(self.grid_x):
                        for _ in range(self.updates_per_boundary_cell):
                            trace.append(
                                self.make_update(
                                    self._cell_address(x, neighbour_row),
                                    self.op,
                                    0.5,
                                    think=self.THINK_PER_NEIGHBOUR,
                                )
                            )
            phase_boundaries.append([len(trace) for trace in per_core])

            # Read phase: every thread reads its own cells (integrating state).
            for core_id in range(n_cores):
                trace = per_core[core_id]
                for y in rows[core_id]:
                    for x in range(self.grid_x):
                        trace.append(
                            MemoryAccess.load(self._cell_address(x, y), think=4, size=4)
                        )
            phase_boundaries.append([len(trace) for trace in per_core])

        return WorkloadTrace(
            name=self.name,
            per_core=per_core,
            params={
                "grid_x": self.grid_x,
                "grid_y": self.grid_y,
                "n_steps": self.n_steps,
                "variant": self.update_style.value,
            },
            phase_boundaries=phase_boundaries,
        )

    def _build_columnar(self, n_cores: int) -> ColumnarTrace:
        """Vectorized twin of :meth:`_build` (same order, same addresses).

        Interior-cell updates are contiguous address ranges, boundary-row
        updates are ``np.repeat`` of one row's addresses, and the read phase
        re-walks the interior range — all assembled per (step, core) segment
        and concatenated in the object builder's append order.
        """
        rows = self.split_work(self.grid_y, n_cores)
        cell_base = self.addresses.region("fluid_cells")
        update_code = self._update_code(1.0)
        interior_delta = encode_value(1.0)[1]
        boundary_delta = encode_value(0.5)[1]
        load_code = self._load_code(4)
        grid_x = self.grid_x
        segments: List[List[np.ndarray]] = [[] for _ in range(n_cores)]
        lengths = [0] * n_cores
        phase_boundaries: List[List[int]] = []

        def row_addresses(row: int) -> np.ndarray:
            start = cell_base + row * grid_x * 4
            return np.arange(start, start + grid_x * 4, 4, dtype=np.uint64)

        for _step in range(self.n_steps):
            for core_id in range(n_cores):
                own_rows = rows[core_id]
                if len(own_rows) == 0:
                    continue
                interior_start = cell_base + own_rows.start * grid_x * 4
                interior = np.arange(
                    interior_start,
                    interior_start + len(own_rows) * grid_x * 4,
                    4,
                    dtype=np.uint64,
                )
                segments[core_id].append(
                    make_columns(update_code, interior, interior_delta, self.THINK_PER_CELL)
                )
                lengths[core_id] += len(interior)
                for neighbour_row, owner in (
                    (own_rows.start - 1, core_id - 1),
                    (own_rows.stop, core_id + 1),
                ):
                    if not 0 <= owner < n_cores or not 0 <= neighbour_row < self.grid_y:
                        continue
                    addresses = np.repeat(
                        row_addresses(neighbour_row), self.updates_per_boundary_cell
                    )
                    segments[core_id].append(
                        make_columns(
                            update_code, addresses, boundary_delta, self.THINK_PER_NEIGHBOUR
                        )
                    )
                    lengths[core_id] += len(addresses)
            phase_boundaries.append(list(lengths))

            for core_id in range(n_cores):
                own_rows = rows[core_id]
                if len(own_rows) == 0:
                    continue
                interior_start = cell_base + own_rows.start * grid_x * 4
                interior = np.arange(
                    interior_start,
                    interior_start + len(own_rows) * grid_x * 4,
                    4,
                    dtype=np.uint64,
                )
                segments[core_id].append(make_columns(load_code, interior, 0, 4))
                lengths[core_id] += len(interior)
            phase_boundaries.append(list(lengths))

        columns = [
            np.concatenate(core_segments)
            if core_segments
            else np.empty(0, dtype=ACCESS_DTYPE)
            for core_segments in segments
        ]
        return ColumnarTrace(
            name=self.name,
            columns=columns,
            params={
                "grid_x": self.grid_x,
                "grid_y": self.grid_y,
                "n_steps": self.n_steps,
                "variant": self.update_style.value,
            },
            phase_boundaries=phase_boundaries,
        )

    def reference_result(self) -> Optional[Dict[int, object]]:
        """Expected cell values for a single-step, single-core-agnostic run.

        Every cell receives ``n_steps`` interior contributions of 1.0; boundary
        rows additionally receive ``updates_per_boundary_cell`` contributions
        of 0.5 from each adjacent thread.  Because the boundary structure
        depends on the core count, the reference covers only the
        interior-contribution part and is used with ``n_cores=1`` in tests
        (where no cell is shared).
        """
        values: Dict[int, float] = {}
        for y in range(self.grid_y):
            for x in range(self.grid_x):
                values[self._cell_address(x, y)] = float(self.n_steps)
        return values
