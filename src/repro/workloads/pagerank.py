"""PageRank workload (``pgrank``).

The paper's ``pgrank`` benchmark is a shared-memory PageRank over a large
irregular graph (Wikipedia 2007), using 64-bit integer (fixed-point) additions
to accumulate rank contributions.  In the push-style formulation each thread
owns a contiguous range of vertices and, for every owned vertex, adds its
scaled rank to each out-neighbour's accumulator; high in-degree vertices are
therefore updated by many threads, and the accumulator array goes through long
update-only phases separated by a read phase at the end of each iteration —
exactly the pattern Sec. 4.1 identifies as COUP-friendly for irregular
iterative algorithms.

The reproduction uses a synthetic power-law graph (preferential-attachment
style target selection) so the in-degree skew, and therefore the contention
profile, matches real web graphs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.commutative import CommutativeOp
from repro.sim.access import MemoryAccess, Trace, WorkloadTrace
from repro.workloads.base import UpdateStyle, Workload


class PageRankWorkload(Workload):
    """Push-style PageRank with fixed-point (64-bit integer) accumulation."""

    name = "pgrank"
    comm_op_label = "64b int add"

    #: Instructions per edge outside the accumulator update.
    THINK_PER_EDGE = 6
    #: Instructions per vertex in the read/normalise phase.
    THINK_PER_VERTEX = 10

    def __init__(
        self,
        n_vertices: int = 4096,
        avg_degree: int = 8,
        *,
        n_iterations: int = 2,
        power_law_exponent: float = 1.0,
        seed: int = 42,
        update_style: UpdateStyle = UpdateStyle.COMMUTATIVE,
    ) -> None:
        super().__init__(seed=seed, update_style=update_style)
        if n_vertices <= 0 or avg_degree <= 0 or n_iterations <= 0:
            raise ValueError("graph parameters must be positive")
        self.n_vertices = n_vertices
        self.avg_degree = avg_degree
        self.n_iterations = n_iterations
        self.power_law_exponent = power_law_exponent
        self.op = CommutativeOp.ADD_I64

    # -- graph construction ----------------------------------------------------------

    def _edges(self) -> List[np.ndarray]:
        """Out-neighbour lists with power-law-skewed in-degrees."""
        rng = self._rng(0)
        # Target sampling weights: vertex v is chosen with probability
        # proportional to (v + 1) ** -exponent, then targets are shuffled by a
        # fixed permutation so hot vertices are spread across the ID space
        # (and therefore across owning cores).
        weights = (np.arange(self.n_vertices) + 1.0) ** (-self.power_law_exponent)
        weights /= weights.sum()
        permutation = rng.permutation(self.n_vertices)
        adjacency: List[np.ndarray] = []
        for _vertex in range(self.n_vertices):
            degree = max(1, int(rng.poisson(self.avg_degree)))
            targets = rng.choice(self.n_vertices, size=degree, p=weights)
            adjacency.append(permutation[targets])
        return adjacency

    def _rank_address(self, vertex: int, generation: int) -> int:
        name = f"pgrank_rank_{generation % 2}"
        return self.addresses.element(name, int(vertex), 8)

    def _edge_address(self, edge_index: int) -> int:
        return self.addresses.element("pgrank_edges", int(edge_index), 8)

    # -- trace generation --------------------------------------------------------------

    def _build(self, n_cores: int) -> WorkloadTrace:
        adjacency = self._edges()
        partitions = self.split_work(self.n_vertices, n_cores)
        per_core: List[Trace] = [[] for _ in range(n_cores)]
        phase_boundaries: List[List[int]] = []

        edge_counter = 0
        for iteration in range(self.n_iterations):
            read_gen = iteration % 2
            write_gen = (iteration + 1) % 2
            # Scatter phase: push contributions to out-neighbours.
            for core_id in range(n_cores):
                trace = per_core[core_id]
                for vertex in partitions[core_id]:
                    trace.append(
                        MemoryAccess.load(
                            self._rank_address(vertex, read_gen), think=self.THINK_PER_VERTEX
                        )
                    )
                    for target in adjacency[vertex]:
                        trace.append(
                            MemoryAccess.load(
                                self._edge_address(edge_counter), think=self.THINK_PER_EDGE
                            )
                        )
                        edge_counter += 1
                        trace.append(
                            self.make_update(
                                self._rank_address(int(target), write_gen), self.op, 1, think=1
                            )
                        )
            phase_boundaries.append([len(trace) for trace in per_core])
            # Gather phase: each core reads its own vertices' new ranks
            # (applying damping and writing the value it will push next
            # iteration); reads of just-updated accumulators force reductions.
            for core_id in range(n_cores):
                trace = per_core[core_id]
                for vertex in partitions[core_id]:
                    trace.append(
                        MemoryAccess.load(
                            self._rank_address(vertex, write_gen), think=self.THINK_PER_VERTEX
                        )
                    )
                    trace.append(
                        MemoryAccess.store(self._rank_address(vertex, write_gen), None, think=2)
                    )
            phase_boundaries.append([len(trace) for trace in per_core])

        return WorkloadTrace(
            name=self.name,
            per_core=per_core,
            params={
                "n_vertices": self.n_vertices,
                "avg_degree": self.avg_degree,
                "n_iterations": self.n_iterations,
                "variant": self.update_style.value,
            },
            phase_boundaries=phase_boundaries,
        )

    # -- functional reference --------------------------------------------------------------

    def reference_result(self) -> Optional[Dict[int, object]]:
        """Expected accumulator values after the first scatter phase.

        Only the first iteration's scatter target array is easily predictable
        (each edge contributes exactly 1 before the gather phase rewrites the
        values), so the reference covers generation-1 accumulators of a
        single-iteration configuration; tests use ``n_iterations=1``.
        """
        if self.n_iterations != 1:
            return None
        adjacency = self._edges()
        in_counts: Dict[int, int] = {}
        for targets in adjacency:
            for target in targets:
                in_counts[int(target)] = in_counts.get(int(target), 0) + 1
        return {
            self._rank_address(vertex, 1): count for vertex, count in in_counts.items()
        }
