"""PageRank workload (``pgrank``).

The paper's ``pgrank`` benchmark is a shared-memory PageRank over a large
irregular graph (Wikipedia 2007), using 64-bit integer (fixed-point) additions
to accumulate rank contributions.  In the push-style formulation each thread
owns a contiguous range of vertices and, for every owned vertex, adds its
scaled rank to each out-neighbour's accumulator; high in-degree vertices are
therefore updated by many threads, and the accumulator array goes through long
update-only phases separated by a read phase at the end of each iteration —
exactly the pattern Sec. 4.1 identifies as COUP-friendly for irregular
iterative algorithms.

The reproduction uses a synthetic power-law graph (preferential-attachment
style target selection) so the in-degree skew, and therefore the contention
profile, matches real web graphs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.commutative import CommutativeOp
from repro.sim.access import MemoryAccess, Trace, WorkloadTrace
from repro.sim.columnar import ACCESS_DTYPE, VK_NONE, ColumnarTrace, code_for
from repro.sim.access import AccessType
from repro.workloads.base import UpdateStyle, Workload
from repro.workloads.spmv import interleave_blocks


class PageRankWorkload(Workload):
    """Push-style PageRank with fixed-point (64-bit integer) accumulation."""

    name = "pgrank"
    comm_op_label = "64b int add"

    #: Instructions per edge outside the accumulator update.
    THINK_PER_EDGE = 6
    #: Instructions per vertex in the read/normalise phase.
    THINK_PER_VERTEX = 10

    def __init__(
        self,
        n_vertices: int = 4096,
        avg_degree: int = 8,
        *,
        n_iterations: int = 2,
        power_law_exponent: float = 1.0,
        seed: int = 42,
        update_style: UpdateStyle = UpdateStyle.COMMUTATIVE,
    ) -> None:
        super().__init__(seed=seed, update_style=update_style)
        if n_vertices <= 0 or avg_degree <= 0 or n_iterations <= 0:
            raise ValueError("graph parameters must be positive")
        self.n_vertices = n_vertices
        self.avg_degree = avg_degree
        self.n_iterations = n_iterations
        self.power_law_exponent = power_law_exponent
        self.op = CommutativeOp.ADD_I64

    # -- graph construction ----------------------------------------------------------

    def _edges(self) -> List[np.ndarray]:
        """Out-neighbour lists with power-law-skewed in-degrees."""
        rng = self._rng(0)
        # Target sampling weights: vertex v is chosen with probability
        # proportional to (v + 1) ** -exponent, then targets are shuffled by a
        # fixed permutation so hot vertices are spread across the ID space
        # (and therefore across owning cores).
        weights = (np.arange(self.n_vertices) + 1.0) ** (-self.power_law_exponent)
        weights /= weights.sum()
        permutation = rng.permutation(self.n_vertices)
        # Weighted sampling with the cdf hoisted out of the loop.  This is
        # exactly what ``rng.choice(n, size=degree, p=weights)`` does per
        # call — cumsum, normalize, searchsorted over ``degree`` uniform
        # draws — minus recomputing the O(n) cdf for every vertex, so the
        # draw stream (and therefore every generated trace) is unchanged.
        cdf = weights.cumsum()
        cdf /= cdf[-1]
        adjacency: List[np.ndarray] = []
        for _vertex in range(self.n_vertices):
            degree = max(1, int(rng.poisson(self.avg_degree)))
            targets = cdf.searchsorted(rng.random(degree), side="right")
            adjacency.append(permutation[targets])
        return adjacency

    def _rank_address(self, vertex: int, generation: int) -> int:
        name = f"pgrank_rank_{generation % 2}"
        return self.addresses.element(name, int(vertex), 8)

    def _edge_address(self, edge_index: int) -> int:
        return self.addresses.element("pgrank_edges", int(edge_index), 8)

    # -- trace generation --------------------------------------------------------------

    def _build(self, n_cores: int) -> WorkloadTrace:
        adjacency = self._edges()
        partitions = self.split_work(self.n_vertices, n_cores)
        per_core: List[Trace] = [[] for _ in range(n_cores)]
        phase_boundaries: List[List[int]] = []

        edge_counter = 0
        for iteration in range(self.n_iterations):
            read_gen = iteration % 2
            write_gen = (iteration + 1) % 2
            # Scatter phase: push contributions to out-neighbours.
            for core_id in range(n_cores):
                trace = per_core[core_id]
                for vertex in partitions[core_id]:
                    trace.append(
                        MemoryAccess.load(
                            self._rank_address(vertex, read_gen), think=self.THINK_PER_VERTEX
                        )
                    )
                    for target in adjacency[vertex]:
                        trace.append(
                            MemoryAccess.load(
                                self._edge_address(edge_counter), think=self.THINK_PER_EDGE
                            )
                        )
                        edge_counter += 1
                        trace.append(
                            self.make_update(
                                self._rank_address(int(target), write_gen), self.op, 1, think=1
                            )
                        )
            phase_boundaries.append([len(trace) for trace in per_core])
            # Gather phase: each core reads its own vertices' new ranks
            # (applying damping and writing the value it will push next
            # iteration); reads of just-updated accumulators force reductions.
            for core_id in range(n_cores):
                trace = per_core[core_id]
                for vertex in partitions[core_id]:
                    trace.append(
                        MemoryAccess.load(
                            self._rank_address(vertex, write_gen), think=self.THINK_PER_VERTEX
                        )
                    )
                    trace.append(
                        MemoryAccess.store(self._rank_address(vertex, write_gen), None, think=2)
                    )
            phase_boundaries.append([len(trace) for trace in per_core])

        return WorkloadTrace(
            name=self.name,
            per_core=per_core,
            params={
                "n_vertices": self.n_vertices,
                "avg_degree": self.avg_degree,
                "n_iterations": self.n_iterations,
                "variant": self.update_style.value,
            },
            phase_boundaries=phase_boundaries,
        )

    def _build_columnar(self, n_cores: int) -> ColumnarTrace:
        """Vectorized twin of :meth:`_build`.

        The scatter phase reuses the ``[head, (pair) * degree]`` layout of
        :func:`repro.workloads.spmv.interleave_blocks`; the gather phase is
        an even/odd load/store interleave.  The global edge counter becomes
        per-core aranges offset by the partition's cumulative degree and the
        iteration's edge total.
        """
        adjacency = self._edges()
        partitions = self.split_work(self.n_vertices, n_cores)
        degrees = np.fromiter(
            (len(targets) for targets in adjacency), dtype=np.int64, count=self.n_vertices
        )
        edges_before = np.zeros(self.n_vertices + 1, dtype=np.int64)
        np.cumsum(degrees, out=edges_before[1:])
        total_edges = int(edges_before[-1])

        load_code = self._load_code(8)
        store_code = code_for(AccessType.STORE, None, 8, VK_NONE)
        update_code = self._update_code(1)
        rank_bases = [None, None]

        def rank_base(generation: int) -> int:
            # Mirrors _rank_address: regions allocated on first use, in the
            # same order the object builder touches them.
            if rank_bases[generation] is None:
                rank_bases[generation] = self.addresses.region(
                    f"pgrank_rank_{generation}"
                )
            return rank_bases[generation]

        edge_base = None
        segments: List[List[np.ndarray]] = [[] for _ in range(n_cores)]
        lengths = [0] * n_cores
        phase_boundaries: List[List[int]] = []

        for iteration in range(self.n_iterations):
            read_gen = iteration % 2
            write_gen = (iteration + 1) % 2
            read_base = rank_base(read_gen)
            if edge_base is None:
                edge_base = self.addresses.region("pgrank_edges")
            write_base = rank_base(write_gen)
            iteration_edge_base = iteration * total_edges
            for core_id in range(n_cores):
                part = partitions[core_id]
                counts = degrees[part.start : part.stop]
                total, heads, pair_first = interleave_blocks(len(part), counts)
                array = np.empty(total, dtype=ACCESS_DTYPE)
                vertices = np.arange(part.start, part.stop, dtype=np.uint64)
                array["type_code"][heads] = load_code
                array["address"][heads] = read_base + vertices * 8
                array["value_delta"][heads] = 0
                array["compute_gap"][heads] = self.THINK_PER_VERTEX
                core_edges = int(counts.sum())
                edge_index = (
                    iteration_edge_base
                    + edges_before[part.start]
                    + np.arange(core_edges, dtype=np.uint64)
                )
                array["type_code"][pair_first] = load_code
                array["address"][pair_first] = edge_base + edge_index * 8
                array["value_delta"][pair_first] = 0
                array["compute_gap"][pair_first] = self.THINK_PER_EDGE
                if core_edges:
                    targets = np.concatenate(
                        adjacency[part.start : part.stop]
                    ).astype(np.uint64)
                else:
                    targets = np.empty(0, dtype=np.uint64)
                array["type_code"][pair_first + 1] = update_code
                array["address"][pair_first + 1] = write_base + targets * 8
                array["value_delta"][pair_first + 1] = 1
                array["compute_gap"][pair_first + 1] = 1
                array["phase"] = 0
                segments[core_id].append(array)
                lengths[core_id] += total
            phase_boundaries.append(list(lengths))

            for core_id in range(n_cores):
                part = partitions[core_id]
                array = np.empty(2 * len(part), dtype=ACCESS_DTYPE)
                addresses = write_base + np.arange(part.start, part.stop, dtype=np.uint64) * 8
                array["type_code"][0::2] = load_code
                array["type_code"][1::2] = store_code
                array["address"][0::2] = addresses
                array["address"][1::2] = addresses
                array["value_delta"] = 0
                array["compute_gap"][0::2] = self.THINK_PER_VERTEX
                array["compute_gap"][1::2] = 2
                array["phase"] = 0
                segments[core_id].append(array)
                lengths[core_id] += 2 * len(part)
            phase_boundaries.append(list(lengths))

        columns = [np.concatenate(core_segments) for core_segments in segments]
        return ColumnarTrace(
            name=self.name,
            columns=columns,
            params={
                "n_vertices": self.n_vertices,
                "avg_degree": self.avg_degree,
                "n_iterations": self.n_iterations,
                "variant": self.update_style.value,
            },
            phase_boundaries=phase_boundaries,
        )

    # -- functional reference --------------------------------------------------------------

    def reference_result(self) -> Optional[Dict[int, object]]:
        """Expected accumulator values after the first scatter phase.

        Only the first iteration's scatter target array is easily predictable
        (each edge contributes exactly 1 before the gather phase rewrites the
        values), so the reference covers generation-1 accumulators of a
        single-iteration configuration; tests use ``n_iterations=1``.
        """
        if self.n_iterations != 1:
            return None
        adjacency = self._edges()
        in_counts: Dict[int, int] = {}
        for targets in adjacency:
            for target in targets:
                in_counts[int(target)] = in_counts.get(int(target), 0) + 1
        return {
            self._rank_address(vertex, 1): count for vertex, count in in_counts.items()
        }
