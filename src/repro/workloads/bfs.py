"""Breadth-first search workload (``bfs``).

High-performance BFS implementations keep the set of visited vertices in a
bitmap that fits in cache (Sec. 4.2).  During each level, threads scan their
share of the frontier and, for every neighbour, first *read* the neighbour's
bit to decide whether it needs visiting and then *set* it with an atomic OR
(or, in COUP, a commutative OR).  Reads and updates to the same bitmap words
are therefore finely interleaved, so lines constantly move between read-only
and update-only modes — the pattern where software privatization is
impractical but COUP still helps (the paper reports a 20% speedup at 128
cores).

The reproduction generates a synthetic small-world graph and emits the
bitmap access stream of a level-synchronous BFS; frontier queues are
thread-private and modelled as cheap think instructions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from repro.core.commutative import CommutativeOp
from repro.sim.access import MemoryAccess, Trace, WorkloadTrace
from repro.sim.columnar import ACCESS_DTYPE, ColumnarTrace
from repro.workloads.base import UpdateStyle, Workload


class BfsWorkload(Workload):
    """Level-synchronous BFS with a shared visited bitmap."""

    name = "bfs"
    comm_op_label = "64b OR"

    THINK_PER_EDGE = 5
    THINK_PER_VERTEX = 8
    #: Bits per bitmap word (the paper uses 64-bit OR operations).
    BITS_PER_WORD = 64

    def __init__(
        self,
        n_vertices: int = 4096,
        avg_degree: int = 8,
        *,
        max_levels: int = 4,
        seed: int = 42,
        update_style: UpdateStyle = UpdateStyle.COMMUTATIVE,
    ) -> None:
        super().__init__(seed=seed, update_style=update_style)
        if n_vertices <= 0 or avg_degree <= 0 or max_levels <= 0:
            raise ValueError("graph parameters must be positive")
        self.n_vertices = n_vertices
        self.avg_degree = avg_degree
        self.max_levels = max_levels
        self.op = CommutativeOp.OR_64

    # -- graph construction -------------------------------------------------------

    def _adjacency(self) -> List[np.ndarray]:
        rng = self._rng(0)
        adjacency: List[np.ndarray] = []
        for vertex in range(self.n_vertices):
            degree = max(1, int(rng.poisson(self.avg_degree)))
            # Mix of local neighbours (cache-friendly) and random long links.
            local = (vertex + rng.integers(1, 16, size=max(1, degree // 2))) % self.n_vertices
            remote = rng.integers(0, self.n_vertices, size=degree - len(local))
            adjacency.append(np.unique(np.concatenate([local, remote])))
        return adjacency

    def _bitmap_word_address(self, vertex: int) -> int:
        word = vertex // self.BITS_PER_WORD
        return self.addresses.element("bfs_visited", word, 8)

    def _bit_mask(self, vertex: int) -> int:
        return 1 << (vertex % self.BITS_PER_WORD)

    def _edge_address(self, index: int) -> int:
        return self.addresses.element("bfs_edges", index, 8)

    # -- trace generation -----------------------------------------------------------

    def _build(self, n_cores: int) -> WorkloadTrace:
        adjacency = self._adjacency()
        per_core: List[Trace] = [[] for _ in range(n_cores)]
        phase_boundaries: List[List[int]] = []

        visited: Set[int] = {0}
        frontier: List[int] = [0]
        edge_counter = 0

        for _level in range(self.max_levels):
            if not frontier:
                break
            next_frontier: List[int] = []
            # The frontier is partitioned among cores round-robin, mirroring
            # work-stealing BFS implementations.
            for position, vertex in enumerate(frontier):
                core_id = position % n_cores
                trace = per_core[core_id]
                trace.append(
                    MemoryAccess.load(self._edge_address(edge_counter), think=self.THINK_PER_VERTEX)
                )
                edge_counter += 1
                for neighbour in adjacency[vertex]:
                    neighbour = int(neighbour)
                    word_address = self._bitmap_word_address(neighbour)
                    # Check the visited bit first (read of the bitmap word).
                    trace.append(MemoryAccess.load(word_address, think=self.THINK_PER_EDGE))
                    if neighbour not in visited:
                        visited.add(neighbour)
                        next_frontier.append(neighbour)
                        trace.append(
                            self.make_update(
                                word_address, self.op, self._bit_mask(neighbour), think=1
                            )
                        )
            phase_boundaries.append([len(trace) for trace in per_core])
            frontier = next_frontier

        return WorkloadTrace(
            name=self.name,
            per_core=per_core,
            params={
                "n_vertices": self.n_vertices,
                "avg_degree": self.avg_degree,
                "max_levels": self.max_levels,
                "variant": self.update_style.value,
            },
            phase_boundaries=phase_boundaries,
        )

    def _build_columnar(self, n_cores: int) -> ColumnarTrace:
        """Vectorized twin of :meth:`_build`.

        Each level's access stream is assembled as one flat array in global
        (frontier-position) order, with the round-robin owner recorded per
        access; per-core columns are boolean selections from the stream,
        which preserves each core's append order exactly.  The visited-set
        semantics — the *first* in-level occurrence of a not-yet-visited
        neighbour gets the update — vectorize as ``np.unique``'s stable
        first-occurrence index plus a visited bitmap.
        """
        adjacency = self._adjacency()
        degrees = np.fromiter(
            (len(targets) for targets in adjacency), dtype=np.int64, count=self.n_vertices
        )
        edge_base = self.addresses.region("bfs_edges")
        visited_base = self.addresses.region("bfs_visited")
        load_code = self._load_code(8)
        update_code_int = self._update_code(1)
        update_code_uint = self._update_code(1 << 63)

        visited = np.zeros(self.n_vertices, dtype=bool)
        visited[0] = True
        frontier = np.array([0], dtype=np.int64)
        edge_counter = 0
        segments: List[List[np.ndarray]] = [[] for _ in range(n_cores)]
        lengths = [0] * n_cores
        phase_boundaries: List[List[int]] = []

        for _level in range(self.max_levels):
            if not len(frontier):
                break
            n_positions = len(frontier)
            positions = np.arange(n_positions, dtype=np.int64)
            owners = positions % n_cores
            counts = degrees[frontier]  # every vertex has >= 1 neighbour
            neighbours = np.concatenate([adjacency[v] for v in frontier])
            first_nb = np.zeros(n_positions, dtype=np.int64)
            if n_positions > 1:
                np.cumsum(counts[:-1], out=first_nb[1:])

            # First stable occurrence of each neighbour within this level's
            # stream, and not visited in an earlier level -> gets the update.
            first_mask = np.zeros(len(neighbours), dtype=bool)
            first_mask[np.unique(neighbours, return_index=True)[1]] = True
            new_mask = first_mask & ~visited[neighbours]

            nb_len = 1 + new_mask.astype(np.int64)  # load (+ update if new)
            new_per_position = np.add.reduceat(new_mask.astype(np.int64), first_nb)
            block_len = 1 + counts + new_per_position
            heads = np.zeros(n_positions, dtype=np.int64)
            if n_positions > 1:
                np.cumsum(block_len[:-1], out=heads[1:])
            slots_before = np.zeros(len(neighbours), dtype=np.int64)
            if len(neighbours) > 1:
                np.cumsum(nb_len[:-1], out=slots_before[1:])
            load_positions = (
                np.repeat(heads + 1, counts)
                + slots_before
                - np.repeat(slots_before[first_nb], counts)
            )
            update_positions = load_positions[new_mask] + 1

            total = int(block_len.sum())
            stream = np.empty(total, dtype=ACCESS_DTYPE)
            stream["value_delta"] = 0
            stream["phase"] = 0
            stream["type_code"][heads] = load_code
            stream["address"][heads] = (
                edge_base + (edge_counter + positions).astype(np.uint64) * 8
            )
            stream["compute_gap"][heads] = self.THINK_PER_VERTEX
            word_addresses = (
                visited_base
                + (neighbours // self.BITS_PER_WORD).astype(np.uint64) * 8
            )
            stream["type_code"][load_positions] = load_code
            stream["address"][load_positions] = word_addresses
            stream["compute_gap"][load_positions] = self.THINK_PER_EDGE
            bits = (neighbours[new_mask] % self.BITS_PER_WORD).astype(np.uint64)
            stream["type_code"][update_positions] = np.where(
                bits == 63, update_code_uint, update_code_int
            ).astype(np.uint8)
            stream["address"][update_positions] = word_addresses[new_mask]
            stream["value_delta"][update_positions] = np.left_shift(
                np.uint64(1), bits
            ).view(np.int64)
            stream["compute_gap"][update_positions] = 1

            owner_of_access = np.repeat(owners, block_len)
            for core_id in range(n_cores):
                column = stream[owner_of_access == core_id]
                segments[core_id].append(column)
                lengths[core_id] += len(column)
            phase_boundaries.append(list(lengths))

            frontier = neighbours[new_mask]
            visited[frontier] = True
            edge_counter += n_positions

        columns = [
            np.concatenate(core_segments)
            if core_segments
            else np.empty(0, dtype=ACCESS_DTYPE)
            for core_segments in segments
        ]
        return ColumnarTrace(
            name=self.name,
            columns=columns,
            params={
                "n_vertices": self.n_vertices,
                "avg_degree": self.avg_degree,
                "max_levels": self.max_levels,
                "variant": self.update_style.value,
            },
            phase_boundaries=phase_boundaries,
        )

    # -- functional reference -----------------------------------------------------------

    def reference_result(self) -> Optional[Dict[int, object]]:
        """Expected bitmap words after the traversal completes."""
        adjacency = self._adjacency()
        visited: Set[int] = {0}
        frontier = [0]
        for _level in range(self.max_levels):
            if not frontier:
                break
            next_frontier = []
            for vertex in frontier:
                for neighbour in adjacency[vertex]:
                    neighbour = int(neighbour)
                    if neighbour not in visited:
                        visited.add(neighbour)
                        next_frontier.append(neighbour)
            frontier = next_frontier
        words: Dict[int, int] = {}
        for vertex in visited:
            if vertex == 0:
                continue  # The root's bit is set before the traversal starts.
            address = self._bitmap_word_address(vertex)
            words[address] = words.get(address, 0) | self._bit_mask(vertex)
        return words
