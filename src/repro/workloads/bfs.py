"""Breadth-first search workload (``bfs``).

High-performance BFS implementations keep the set of visited vertices in a
bitmap that fits in cache (Sec. 4.2).  During each level, threads scan their
share of the frontier and, for every neighbour, first *read* the neighbour's
bit to decide whether it needs visiting and then *set* it with an atomic OR
(or, in COUP, a commutative OR).  Reads and updates to the same bitmap words
are therefore finely interleaved, so lines constantly move between read-only
and update-only modes — the pattern where software privatization is
impractical but COUP still helps (the paper reports a 20% speedup at 128
cores).

The reproduction generates a synthetic small-world graph and emits the
bitmap access stream of a level-synchronous BFS; frontier queues are
thread-private and modelled as cheap think instructions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from repro.core.commutative import CommutativeOp
from repro.sim.access import MemoryAccess, Trace, WorkloadTrace
from repro.workloads.base import UpdateStyle, Workload


class BfsWorkload(Workload):
    """Level-synchronous BFS with a shared visited bitmap."""

    name = "bfs"
    comm_op_label = "64b OR"

    THINK_PER_EDGE = 5
    THINK_PER_VERTEX = 8
    #: Bits per bitmap word (the paper uses 64-bit OR operations).
    BITS_PER_WORD = 64

    def __init__(
        self,
        n_vertices: int = 4096,
        avg_degree: int = 8,
        *,
        max_levels: int = 4,
        seed: int = 42,
        update_style: UpdateStyle = UpdateStyle.COMMUTATIVE,
    ) -> None:
        super().__init__(seed=seed, update_style=update_style)
        if n_vertices <= 0 or avg_degree <= 0 or max_levels <= 0:
            raise ValueError("graph parameters must be positive")
        self.n_vertices = n_vertices
        self.avg_degree = avg_degree
        self.max_levels = max_levels
        self.op = CommutativeOp.OR_64

    # -- graph construction -------------------------------------------------------

    def _adjacency(self) -> List[np.ndarray]:
        rng = self._rng(0)
        adjacency: List[np.ndarray] = []
        for vertex in range(self.n_vertices):
            degree = max(1, int(rng.poisson(self.avg_degree)))
            # Mix of local neighbours (cache-friendly) and random long links.
            local = (vertex + rng.integers(1, 16, size=max(1, degree // 2))) % self.n_vertices
            remote = rng.integers(0, self.n_vertices, size=degree - len(local))
            adjacency.append(np.unique(np.concatenate([local, remote])))
        return adjacency

    def _bitmap_word_address(self, vertex: int) -> int:
        word = vertex // self.BITS_PER_WORD
        return self.addresses.element("bfs_visited", word, 8)

    def _bit_mask(self, vertex: int) -> int:
        return 1 << (vertex % self.BITS_PER_WORD)

    def _edge_address(self, index: int) -> int:
        return self.addresses.element("bfs_edges", index, 8)

    # -- trace generation -----------------------------------------------------------

    def _build(self, n_cores: int) -> WorkloadTrace:
        adjacency = self._adjacency()
        per_core: List[Trace] = [[] for _ in range(n_cores)]
        phase_boundaries: List[List[int]] = []

        visited: Set[int] = {0}
        frontier: List[int] = [0]
        edge_counter = 0

        for _level in range(self.max_levels):
            if not frontier:
                break
            next_frontier: List[int] = []
            # The frontier is partitioned among cores round-robin, mirroring
            # work-stealing BFS implementations.
            for position, vertex in enumerate(frontier):
                core_id = position % n_cores
                trace = per_core[core_id]
                trace.append(
                    MemoryAccess.load(self._edge_address(edge_counter), think=self.THINK_PER_VERTEX)
                )
                edge_counter += 1
                for neighbour in adjacency[vertex]:
                    neighbour = int(neighbour)
                    word_address = self._bitmap_word_address(neighbour)
                    # Check the visited bit first (read of the bitmap word).
                    trace.append(MemoryAccess.load(word_address, think=self.THINK_PER_EDGE))
                    if neighbour not in visited:
                        visited.add(neighbour)
                        next_frontier.append(neighbour)
                        trace.append(
                            self.make_update(
                                word_address, self.op, self._bit_mask(neighbour), think=1
                            )
                        )
            phase_boundaries.append([len(trace) for trace in per_core])
            frontier = next_frontier

        return WorkloadTrace(
            name=self.name,
            per_core=per_core,
            params={
                "n_vertices": self.n_vertices,
                "avg_degree": self.avg_degree,
                "max_levels": self.max_levels,
                "variant": self.update_style.value,
            },
            phase_boundaries=phase_boundaries,
        )

    # -- functional reference -----------------------------------------------------------

    def reference_result(self) -> Optional[Dict[int, object]]:
        """Expected bitmap words after the traversal completes."""
        adjacency = self._adjacency()
        visited: Set[int] = {0}
        frontier = [0]
        for _level in range(self.max_levels):
            if not frontier:
                break
            next_frontier = []
            for vertex in frontier:
                for neighbour in adjacency[vertex]:
                    neighbour = int(neighbour)
                    if neighbour not in visited:
                        visited.add(neighbour)
                        next_frontier.append(neighbour)
            frontier = next_frontier
        words: Dict[int, int] = {}
        for vertex in visited:
            if vertex == 0:
                continue  # The root's bit is set before the traversal starts.
            address = self._bitmap_word_address(vertex)
            words[address] = words.get(address, 0) | self._bit_mask(vertex)
        return words
