"""Sparse matrix-vector multiplication workload (``spmv``).

The paper's ``spmv`` kernel multiplies a sparse matrix in compressed sparse
column (CSC) format by a dense vector.  In CSC, threads own disjoint column
ranges, and each nonzero ``A[r, c]`` contributes ``A[r, c] * x[c]`` to
``y[r]`` — a *scattered* addition to the shared output vector, because many
columns touch the same rows.  The paper uses 64-bit floating-point additions
(Table 2).

The reproduction generates a synthetic banded + random sparse matrix with a
configurable rows/columns ratio and nonzeros per column; the structural
property that matters to the coherence protocol — many cores performing
scattered FP adds to overlapping output elements, interleaved with streaming
reads of matrix values — is preserved.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.commutative import CommutativeOp
from repro.sim.access import MemoryAccess, Trace, WorkloadTrace
from repro.workloads.base import UpdateStyle, Workload


class SpmvWorkload(Workload):
    """y += A @ x with A in CSC format and scattered adds to y."""

    name = "spmv"
    comm_op_label = "64b FP add"

    #: Instructions per nonzero outside the output update (load value, load
    #: x[c], multiply, loop overhead).
    THINK_PER_NNZ = 8

    def __init__(
        self,
        n_rows: int = 2048,
        n_cols: int = 2048,
        nnz_per_col: int = 8,
        *,
        bandwidth: float = 0.15,
        seed: int = 42,
        update_style: UpdateStyle = UpdateStyle.COMMUTATIVE,
    ) -> None:
        super().__init__(seed=seed, update_style=update_style)
        if min(n_rows, n_cols, nnz_per_col) <= 0:
            raise ValueError("matrix dimensions and nnz_per_col must be positive")
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.nnz_per_col = nnz_per_col
        self.bandwidth = bandwidth
        self.op = CommutativeOp.ADD_F64

    # -- matrix structure ----------------------------------------------------------

    def _column_rows(self) -> List[np.ndarray]:
        """Row indices of the nonzeros in each column.

        A fraction of the nonzeros cluster in a band around the diagonal
        (typical of the paper's structural FEM matrix, rma10) and the rest are
        uniformly random, producing overlap between columns owned by different
        cores.
        """
        rng = self._rng(0)
        columns: List[np.ndarray] = []
        half_band = max(1, int(self.bandwidth * self.n_rows / 2))
        for col in range(self.n_cols):
            center = int(col * self.n_rows / self.n_cols)
            n_banded = max(1, int(self.nnz_per_col * 0.7))
            banded = rng.integers(
                max(0, center - half_band),
                min(self.n_rows, center + half_band + 1),
                size=n_banded,
            )
            n_random = self.nnz_per_col - n_banded
            scattered = rng.integers(0, self.n_rows, size=max(0, n_random))
            rows = np.unique(np.concatenate([banded, scattered]))
            columns.append(rows)
        return columns

    def _y_address(self, row: int) -> int:
        return self.addresses.element("spmv_y", int(row), 8)

    def _value_address(self, nnz_index: int) -> int:
        return self.addresses.element("spmv_vals", int(nnz_index), 8)

    def _x_address(self, col: int) -> int:
        return self.addresses.element("spmv_x", int(col), 8)

    # -- trace generation ------------------------------------------------------------

    def _build(self, n_cores: int) -> WorkloadTrace:
        columns = self._column_rows()
        partitions = self.split_work(self.n_cols, n_cores)
        per_core: List[Trace] = []
        nnz_counter = 0
        for core_id in range(n_cores):
            trace: Trace = []
            for col in partitions[core_id]:
                # x[col] is read once per column and stays in registers.
                trace.append(MemoryAccess.load(self._x_address(col), think=4))
                for row in columns[col]:
                    trace.append(
                        MemoryAccess.load(
                            self._value_address(nnz_counter), think=self.THINK_PER_NNZ
                        )
                    )
                    nnz_counter += 1
                    trace.append(
                        self.make_update(self._y_address(row), self.op, 1.0, think=1)
                    )
            per_core.append(trace)
        return WorkloadTrace(
            name=self.name,
            per_core=per_core,
            params={
                "n_rows": self.n_rows,
                "n_cols": self.n_cols,
                "nnz_per_col": self.nnz_per_col,
                "variant": self.update_style.value,
            },
        )

    # -- functional reference -----------------------------------------------------------

    def reference_result(self) -> Optional[Dict[int, object]]:
        """Expected y values when every nonzero contributes 1.0."""
        columns = self._column_rows()
        contributions = np.zeros(self.n_rows)
        for rows in columns:
            contributions[rows] += 1.0
        return {
            self._y_address(row): float(contributions[row])
            for row in range(self.n_rows)
            if contributions[row] > 0
        }
