"""Sparse matrix-vector multiplication workload (``spmv``).

The paper's ``spmv`` kernel multiplies a sparse matrix in compressed sparse
column (CSC) format by a dense vector.  In CSC, threads own disjoint column
ranges, and each nonzero ``A[r, c]`` contributes ``A[r, c] * x[c]`` to
``y[r]`` — a *scattered* addition to the shared output vector, because many
columns touch the same rows.  The paper uses 64-bit floating-point additions
(Table 2).

The reproduction generates a synthetic banded + random sparse matrix with a
configurable rows/columns ratio and nonzeros per column; the structural
property that matters to the coherence protocol — many cores performing
scattered FP adds to overlapping output elements, interleaved with streaming
reads of matrix values — is preserved.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.commutative import CommutativeOp
from repro.sim.access import MemoryAccess, Trace, WorkloadTrace
from repro.sim.columnar import ACCESS_DTYPE, ColumnarTrace, encode_value
from repro.workloads.base import UpdateStyle, Workload


def interleave_blocks(n_blocks: int, inner_counts: np.ndarray):
    """Index arrays for the ``[head, (a, b) * count]`` per-block layout.

    Several generators emit, per logical block (matrix column, graph
    vertex), one *head* access followed by ``count`` pairs of accesses.
    Returns ``(total_length, head_positions, pair_first_positions)`` such
    that block ``i`` occupies ``[head[i], head[i] + 1 + 2 * count[i])`` and
    its ``j``-th pair sits at ``pair_first[c + j]``/``pair_first[c + j] + 1``
    (``c`` = pairs before block ``i``).
    """
    inner_counts = np.asarray(inner_counts, dtype=np.int64)
    blocks = 1 + 2 * inner_counts
    heads = np.zeros(n_blocks, dtype=np.int64)
    if n_blocks > 1:
        np.cumsum(blocks[:-1], out=heads[1:])
    total_pairs = int(inner_counts.sum())
    pairs_before = np.zeros(n_blocks, dtype=np.int64)
    if n_blocks > 1:
        np.cumsum(inner_counts[:-1], out=pairs_before[1:])
    within = np.arange(total_pairs, dtype=np.int64) - np.repeat(
        pairs_before, inner_counts
    )
    pair_first = np.repeat(heads + 1, inner_counts) + 2 * within
    total = int(blocks.sum()) if n_blocks else 0
    return total, heads, pair_first


class SpmvWorkload(Workload):
    """y += A @ x with A in CSC format and scattered adds to y."""

    name = "spmv"
    comm_op_label = "64b FP add"

    #: Instructions per nonzero outside the output update (load value, load
    #: x[c], multiply, loop overhead).
    THINK_PER_NNZ = 8

    def __init__(
        self,
        n_rows: int = 2048,
        n_cols: int = 2048,
        nnz_per_col: int = 8,
        *,
        bandwidth: float = 0.15,
        seed: int = 42,
        update_style: UpdateStyle = UpdateStyle.COMMUTATIVE,
    ) -> None:
        super().__init__(seed=seed, update_style=update_style)
        if min(n_rows, n_cols, nnz_per_col) <= 0:
            raise ValueError("matrix dimensions and nnz_per_col must be positive")
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.nnz_per_col = nnz_per_col
        self.bandwidth = bandwidth
        self.op = CommutativeOp.ADD_F64

    # -- matrix structure ----------------------------------------------------------

    def _column_rows(self) -> List[np.ndarray]:
        """Row indices of the nonzeros in each column.

        A fraction of the nonzeros cluster in a band around the diagonal
        (typical of the paper's structural FEM matrix, rma10) and the rest are
        uniformly random, producing overlap between columns owned by different
        cores.
        """
        rng = self._rng(0)
        columns: List[np.ndarray] = []
        half_band = max(1, int(self.bandwidth * self.n_rows / 2))
        for col in range(self.n_cols):
            center = int(col * self.n_rows / self.n_cols)
            n_banded = max(1, int(self.nnz_per_col * 0.7))
            banded = rng.integers(
                max(0, center - half_band),
                min(self.n_rows, center + half_band + 1),
                size=n_banded,
            )
            n_random = self.nnz_per_col - n_banded
            scattered = rng.integers(0, self.n_rows, size=max(0, n_random))
            rows = np.unique(np.concatenate([banded, scattered]))
            columns.append(rows)
        return columns

    def _y_address(self, row: int) -> int:
        return self.addresses.element("spmv_y", int(row), 8)

    def _value_address(self, nnz_index: int) -> int:
        return self.addresses.element("spmv_vals", int(nnz_index), 8)

    def _x_address(self, col: int) -> int:
        return self.addresses.element("spmv_x", int(col), 8)

    # -- trace generation ------------------------------------------------------------

    def _build(self, n_cores: int) -> WorkloadTrace:
        columns = self._column_rows()
        partitions = self.split_work(self.n_cols, n_cores)
        per_core: List[Trace] = []
        nnz_counter = 0
        for core_id in range(n_cores):
            trace: Trace = []
            for col in partitions[core_id]:
                # x[col] is read once per column and stays in registers.
                trace.append(MemoryAccess.load(self._x_address(col), think=4))
                for row in columns[col]:
                    trace.append(
                        MemoryAccess.load(
                            self._value_address(nnz_counter), think=self.THINK_PER_NNZ
                        )
                    )
                    nnz_counter += 1
                    trace.append(
                        self.make_update(self._y_address(row), self.op, 1.0, think=1)
                    )
            per_core.append(trace)
        return WorkloadTrace(
            name=self.name,
            per_core=per_core,
            params={
                "n_rows": self.n_rows,
                "n_cols": self.n_cols,
                "nnz_per_col": self.nnz_per_col,
                "variant": self.update_style.value,
            },
        )

    def _build_columnar(self, n_cores: int) -> ColumnarTrace:
        """Vectorized twin of :meth:`_build`.

        Each column's ``[x-load, (value-load, y-update) * nnz]`` block is
        laid out with :func:`interleave_blocks`; the global nonzero counter
        becomes an arange offset by the partition's cumulative nnz.
        """
        column_rows = self._column_rows()
        partitions = self.split_work(self.n_cols, n_cores)
        x_base = self.addresses.region("spmv_x")
        value_base = self.addresses.region("spmv_vals")
        y_base = self.addresses.region("spmv_y")
        load_code = self._load_code(8)
        update_code = self._update_code(1.0)
        update_delta = encode_value(1.0)[1]
        counts_all = np.fromiter(
            (len(rows) for rows in column_rows), dtype=np.int64, count=self.n_cols
        )
        nnz_before = np.zeros(self.n_cols + 1, dtype=np.int64)
        np.cumsum(counts_all, out=nnz_before[1:])
        columns: List[np.ndarray] = []
        for core_id in range(n_cores):
            part = partitions[core_id]
            counts = counts_all[part.start : part.stop]
            total, heads, pair_first = interleave_blocks(len(part), counts)
            array = np.empty(total, dtype=ACCESS_DTYPE)
            cols = np.arange(part.start, part.stop, dtype=np.uint64)
            array["type_code"][heads] = load_code
            array["address"][heads] = x_base + cols * 8
            array["value_delta"][heads] = 0
            array["compute_gap"][heads] = 4
            total_nnz = int(counts.sum())
            nnz_index = nnz_before[part.start] + np.arange(total_nnz, dtype=np.uint64)
            array["type_code"][pair_first] = load_code
            array["address"][pair_first] = value_base + nnz_index * 8
            array["value_delta"][pair_first] = 0
            array["compute_gap"][pair_first] = self.THINK_PER_NNZ
            if total_nnz:
                rows = np.concatenate(column_rows[part.start : part.stop]).astype(
                    np.uint64
                )
            else:
                rows = np.empty(0, dtype=np.uint64)
            array["type_code"][pair_first + 1] = update_code
            array["address"][pair_first + 1] = y_base + rows * 8
            array["value_delta"][pair_first + 1] = update_delta
            array["compute_gap"][pair_first + 1] = 1
            array["phase"] = 0
            columns.append(array)
        return ColumnarTrace(
            name=self.name,
            columns=columns,
            params={
                "n_rows": self.n_rows,
                "n_cols": self.n_cols,
                "nnz_per_col": self.nnz_per_col,
                "variant": self.update_style.value,
            },
        )

    # -- functional reference -----------------------------------------------------------

    def reference_result(self) -> Optional[Dict[int, object]]:
        """Expected y values when every nonzero contributes 1.0."""
        columns = self._column_rows()
        contributions = np.zeros(self.n_rows)
        for rows in columns:
            contributions[rows] += 1.0
        return {
            self._y_address(row): float(contributions[row])
            for row in range(self.n_rows)
            if contributions[row] > 0
        }
