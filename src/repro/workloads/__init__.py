"""Workload generators reproducing the paper's benchmarks and microbenchmarks."""

from repro.workloads.base import AddressMap, UpdateStyle, Workload, WorkloadStats
from repro.workloads.bfs import BfsWorkload
from repro.workloads.fluidanimate import FluidanimateWorkload
from repro.workloads.histogram import HistogramWorkload
from repro.workloads.pagerank import PageRankWorkload
from repro.workloads.refcount import (
    CountMode,
    DelayedRefcountWorkload,
    ImmediateRefcountWorkload,
    RefcountScheme,
)
from repro.workloads.spmv import SpmvWorkload
from repro.workloads.synthetic import (
    FalseSharingWorkload,
    InterleavedReadUpdateWorkload,
    MixedOpWorkload,
    MultiCounterWorkload,
    ReadOnlyWorkload,
    ScalarReductionWorkload,
    SharedCounterWorkload,
)

#: The five paper benchmarks (Table 2), keyed by their paper names.
PAPER_BENCHMARKS = {
    "hist": HistogramWorkload,
    "spmv": SpmvWorkload,
    "pgrank": PageRankWorkload,
    "bfs": BfsWorkload,
    "fluidanimate": FluidanimateWorkload,
}

__all__ = [
    "AddressMap",
    "BfsWorkload",
    "CountMode",
    "DelayedRefcountWorkload",
    "FalseSharingWorkload",
    "FluidanimateWorkload",
    "HistogramWorkload",
    "ImmediateRefcountWorkload",
    "InterleavedReadUpdateWorkload",
    "MixedOpWorkload",
    "MultiCounterWorkload",
    "PAPER_BENCHMARKS",
    "PageRankWorkload",
    "ReadOnlyWorkload",
    "RefcountScheme",
    "ScalarReductionWorkload",
    "SharedCounterWorkload",
    "SpmvWorkload",
    "UpdateStyle",
    "Workload",
    "WorkloadStats",
]
