"""Synthetic microbenchmark workloads.

These tiny workloads exercise individual protocol behaviours in isolation and
are used heavily by unit and integration tests, the quickstart example, and as
building blocks for ablation benchmarks:

* :class:`SharedCounterWorkload` — every core hammers one counter (the Fig. 1
  motivating example).
* :class:`MultiCounterWorkload` — updates spread over many counters with a
  configurable skew.
* :class:`FalseSharingWorkload` — cores update distinct words of one line.
* :class:`ScalarReductionWorkload` — a scalar reduction variable with a final
  read (the case Sec. 4.1 notes COUP barely helps).
* :class:`ReadOnlyWorkload` — no updates at all (sanity baseline: COUP must
  not change anything).
* :class:`InterleavedReadUpdateWorkload` — configurable numbers of updates
  between reads, used to study the update-run-length crossover.
* :class:`MixedOpWorkload` — alternating commutative types on one line,
  exercising the type-switch (NN) reductions.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.commutative import CommutativeOp
from repro.sim.access import AccessType, MemoryAccess, Trace, WorkloadTrace
from repro.sim.columnar import (
    ACCESS_DTYPE,
    VK_INT,
    VK_UINT,
    ColumnBuilder,
    ColumnarTrace,
    code_for,
    make_columns,
)
from repro.workloads.base import UpdateStyle, Workload


class SharedCounterWorkload(Workload):
    """All cores repeatedly update a single shared counter; core 0 reads it last."""

    name = "shared-counter"
    comm_op_label = "64b int add"

    def __init__(
        self,
        updates_per_core: int = 500,
        *,
        think: int = 5,
        read_at_end: bool = True,
        seed: int = 42,
        update_style: UpdateStyle = UpdateStyle.COMMUTATIVE,
    ) -> None:
        super().__init__(seed=seed, update_style=update_style)
        self.updates_per_core = updates_per_core
        self.think = think
        self.read_at_end = read_at_end
        self.op = CommutativeOp.ADD_I64

    @property
    def counter_address(self) -> int:
        return self.addresses.element("counter", 0, 8)

    def _build(self, n_cores: int) -> WorkloadTrace:
        per_core: List[Trace] = []
        for _core in range(n_cores):
            trace = [
                self.make_update(self.counter_address, self.op, 1, think=self.think)
                for _ in range(self.updates_per_core)
            ]
            per_core.append(trace)
        boundaries = None
        if self.read_at_end:
            boundaries = [[len(trace) for trace in per_core]]
            per_core[0].append(MemoryAccess.load(self.counter_address, think=2))
            # The read happens in a second phase so it observes all updates.
            boundaries[0][0] -= 0
        workload = WorkloadTrace(
            name=self.name,
            per_core=per_core,
            params={"updates_per_core": self.updates_per_core},
            phase_boundaries=boundaries,
        )
        return workload

    def _build_columnar(self, n_cores: int) -> ColumnarTrace:
        address = self.counter_address
        update_code = self._update_code(1)
        columns: List[np.ndarray] = []
        for core_id in range(n_cores):
            extra = 1 if self.read_at_end and core_id == 0 else 0
            array = np.empty(self.updates_per_core + extra, dtype=ACCESS_DTYPE)
            array["type_code"] = update_code
            array["address"] = address
            array["value_delta"] = 1
            array["compute_gap"] = self.think
            array["phase"] = 0
            if extra:
                array["type_code"][-1] = self._load_code(8)
                array["value_delta"][-1] = 0
                array["compute_gap"][-1] = 2
            columns.append(array)
        boundaries = (
            [[self.updates_per_core] * n_cores] if self.read_at_end else None
        )
        return ColumnarTrace(
            name=self.name,
            columns=columns,
            params={"updates_per_core": self.updates_per_core},
            phase_boundaries=boundaries,
        )

    def reference_result(self) -> Optional[Dict[int, object]]:
        return None  # Depends on the core count; tests compute it inline.

    def expected_total(self, n_cores: int) -> int:
        """Final counter value after all updates complete."""
        return self.updates_per_core * n_cores


class MultiCounterWorkload(Workload):
    """Updates spread over ``n_counters`` with optional hot-spot skew."""

    name = "multi-counter"
    comm_op_label = "64b int add"

    def __init__(
        self,
        n_counters: int = 64,
        updates_per_core: int = 500,
        *,
        hot_fraction: float = 0.0,
        think: int = 5,
        seed: int = 42,
        update_style: UpdateStyle = UpdateStyle.COMMUTATIVE,
    ) -> None:
        super().__init__(seed=seed, update_style=update_style)
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        self.n_counters = n_counters
        self.updates_per_core = updates_per_core
        self.hot_fraction = hot_fraction
        self.think = think
        self.op = CommutativeOp.ADD_I64

    def counter_address(self, index: int) -> int:
        return self.addresses.element("counters", index, 8)

    def _build(self, n_cores: int) -> WorkloadTrace:
        per_core: List[Trace] = []
        for core_id in range(n_cores):
            rng = self._rng(core_id)
            trace: Trace = []
            for _ in range(self.updates_per_core):
                if self.hot_fraction and rng.random() < self.hot_fraction:
                    index = 0
                else:
                    index = int(rng.integers(0, self.n_counters))
                trace.append(
                    self.make_update(self.counter_address(index), self.op, 1, think=self.think)
                )
            per_core.append(trace)
        return WorkloadTrace(
            name=self.name,
            per_core=per_core,
            params={
                "n_counters": self.n_counters,
                "updates_per_core": self.updates_per_core,
                "hot_fraction": self.hot_fraction,
            },
        )

    def _build_columnar(self, n_cores: int) -> ColumnarTrace:
        base = self.addresses.region("counters")
        update_code = self._update_code(1)
        columns: List[np.ndarray] = []
        for core_id in range(n_cores):
            rng = self._rng(core_id)
            if not self.hot_fraction:
                # Draw order matches the object builder: one bounded-integer
                # draw per update, which numpy generates identically whether
                # requested one at a time or as a batch.
                indices = rng.integers(
                    0, self.n_counters, size=self.updates_per_core
                ).astype(np.uint64)
            else:
                # The hot-spot draw is conditional (an extra uniform per
                # update, and no integer draw for hot updates), so the draw
                # sequence is replayed element-wise.
                drawn = []
                for _ in range(self.updates_per_core):
                    if rng.random() < self.hot_fraction:
                        drawn.append(0)
                    else:
                        drawn.append(int(rng.integers(0, self.n_counters)))
                indices = np.asarray(drawn, dtype=np.uint64)
            columns.append(
                make_columns(update_code, base + indices * 8, 1, self.think)
            )
        return ColumnarTrace(
            name=self.name,
            columns=columns,
            params={
                "n_counters": self.n_counters,
                "updates_per_core": self.updates_per_core,
                "hot_fraction": self.hot_fraction,
            },
        )

    def expected_total(self, n_cores: int) -> int:
        return self.updates_per_core * n_cores


class FalseSharingWorkload(Workload):
    """Each core updates its own word, but all words share one cache line."""

    name = "false-sharing"
    comm_op_label = "64b int add"

    def __init__(
        self,
        updates_per_core: int = 300,
        *,
        think: int = 5,
        seed: int = 42,
        update_style: UpdateStyle = UpdateStyle.COMMUTATIVE,
    ) -> None:
        super().__init__(seed=seed, update_style=update_style)
        self.updates_per_core = updates_per_core
        self.think = think
        self.op = CommutativeOp.ADD_I64

    def word_address(self, core_id: int) -> int:
        # Eight 8-byte words share each 64-byte line.
        return self.addresses.element("false_sharing", core_id, 8)

    def _build(self, n_cores: int) -> WorkloadTrace:
        per_core: List[Trace] = []
        for core_id in range(n_cores):
            trace = [
                self.make_update(self.word_address(core_id), self.op, 1, think=self.think)
                for _ in range(self.updates_per_core)
            ]
            per_core.append(trace)
        return WorkloadTrace(
            name=self.name,
            per_core=per_core,
            params={"updates_per_core": self.updates_per_core},
        )

    def _build_columnar(self, n_cores: int) -> ColumnarTrace:
        base = self.addresses.region("false_sharing")
        update_code = self._update_code(1)
        columns = [
            make_columns(
                update_code,
                np.full(self.updates_per_core, base + core_id * 8, dtype=np.uint64),
                1,
                self.think,
            )
            for core_id in range(n_cores)
        ]
        return ColumnarTrace(
            name=self.name,
            columns=columns,
            params={"updates_per_core": self.updates_per_core},
        )


class ScalarReductionWorkload(Workload):
    """A single scalar reduction variable: the case where COUP barely helps.

    Each core accumulates a local partial sum in registers (modelled as think
    time) and performs only one update to the shared scalar at the end, so the
    shared-data traffic is negligible under any scheme.
    """

    name = "scalar-reduction"
    comm_op_label = "64b int add"

    def __init__(
        self,
        items_per_core: int = 2000,
        *,
        seed: int = 42,
        update_style: UpdateStyle = UpdateStyle.COMMUTATIVE,
    ) -> None:
        super().__init__(seed=seed, update_style=update_style)
        self.items_per_core = items_per_core
        self.op = CommutativeOp.ADD_I64

    @property
    def scalar_address(self) -> int:
        return self.addresses.element("scalar", 0, 8)

    def _input_address(self, core_id: int, index: int) -> int:
        return self.addresses.element(f"scalar_input_{core_id}", index, 8)

    def _build(self, n_cores: int) -> WorkloadTrace:
        per_core: List[Trace] = []
        for core_id in range(n_cores):
            trace: Trace = [
                MemoryAccess.load(self._input_address(core_id, i), think=4)
                for i in range(self.items_per_core)
            ]
            trace.append(self.make_update(self.scalar_address, self.op, self.items_per_core, think=2))
            per_core.append(trace)
        return WorkloadTrace(
            name=self.name,
            per_core=per_core,
            params={"items_per_core": self.items_per_core},
        )

    def _build_columnar(self, n_cores: int) -> ColumnarTrace:
        load_code = self._load_code(8)
        columns: List[np.ndarray] = []
        for core_id in range(n_cores):
            # Region-allocation order matches the object builder: the core's
            # input region first, then (on core 0) the shared scalar.
            input_base = self.addresses.region(f"scalar_input_{core_id}")
            scalar_address = self.scalar_address
            array = np.empty(self.items_per_core + 1, dtype=ACCESS_DTYPE)
            array["type_code"][:-1] = load_code
            array["address"][:-1] = input_base + np.arange(
                self.items_per_core, dtype=np.uint64
            ) * 8
            array["value_delta"][:-1] = 0
            array["compute_gap"][:-1] = 4
            array["type_code"][-1] = self._update_code(self.items_per_core)
            array["address"][-1] = scalar_address
            array["value_delta"][-1] = self.items_per_core
            array["compute_gap"][-1] = 2
            array["phase"] = 0
            columns.append(array)
        return ColumnarTrace(
            name=self.name,
            columns=columns,
            params={"items_per_core": self.items_per_core},
        )


class ReadOnlyWorkload(Workload):
    """All cores read a shared array; COUP must behave identically to MESI."""

    name = "read-only"
    comm_op_label = "none"

    def __init__(
        self,
        n_elements: int = 256,
        reads_per_core: int = 1000,
        *,
        seed: int = 42,
    ) -> None:
        super().__init__(seed=seed, update_style=UpdateStyle.COMMUTATIVE)
        self.n_elements = n_elements
        self.reads_per_core = reads_per_core

    def element_address(self, index: int) -> int:
        return self.addresses.element("readonly_array", index, 8)

    def _build(self, n_cores: int) -> WorkloadTrace:
        per_core: List[Trace] = []
        for core_id in range(n_cores):
            rng = self._rng(core_id)
            trace = [
                MemoryAccess.load(
                    self.element_address(int(rng.integers(0, self.n_elements))), think=3
                )
                for _ in range(self.reads_per_core)
            ]
            per_core.append(trace)
        return WorkloadTrace(
            name=self.name,
            per_core=per_core,
            params={"n_elements": self.n_elements, "reads_per_core": self.reads_per_core},
        )

    def _build_columnar(self, n_cores: int) -> ColumnarTrace:
        base = self.addresses.region("readonly_array")
        load_code = self._load_code(8)
        columns = []
        for core_id in range(n_cores):
            rng = self._rng(core_id)
            indices = rng.integers(0, self.n_elements, size=self.reads_per_core)
            columns.append(
                make_columns(load_code, base + indices.astype(np.uint64) * 8, 0, 3)
            )
        return ColumnarTrace(
            name=self.name,
            columns=columns,
            params={"n_elements": self.n_elements, "reads_per_core": self.reads_per_core},
        )


class InterleavedReadUpdateWorkload(Workload):
    """Alternating runs of updates and reads to the same shared array.

    ``updates_per_read`` controls how many commutative updates each core
    performs between reads; sweeping it exposes the crossover the paper
    discusses: COUP pays one mode switch per run, so even two updates per
    update-only epoch are enough to win, while software privatization needs
    many more to amortise its reduction phase.
    """

    name = "interleaved"
    comm_op_label = "64b int add"

    def __init__(
        self,
        n_elements: int = 16,
        updates_per_read: int = 4,
        rounds: int = 50,
        *,
        think: int = 5,
        seed: int = 42,
        update_style: UpdateStyle = UpdateStyle.COMMUTATIVE,
    ) -> None:
        super().__init__(seed=seed, update_style=update_style)
        if updates_per_read < 0:
            raise ValueError("updates_per_read must be non-negative")
        self.n_elements = n_elements
        self.updates_per_read = updates_per_read
        self.rounds = rounds
        self.think = think
        self.op = CommutativeOp.ADD_I64

    def element_address(self, index: int) -> int:
        return self.addresses.element("interleaved_array", index, 8)

    def _build(self, n_cores: int) -> WorkloadTrace:
        per_core: List[Trace] = []
        for core_id in range(n_cores):
            rng = self._rng(core_id)
            trace: Trace = []
            for _round in range(self.rounds):
                index = int(rng.integers(0, self.n_elements))
                address = self.element_address(index)
                for _ in range(self.updates_per_read):
                    trace.append(self.make_update(address, self.op, 1, think=self.think))
                trace.append(MemoryAccess.load(address, think=self.think))
            per_core.append(trace)
        return WorkloadTrace(
            name=self.name,
            per_core=per_core,
            params={
                "n_elements": self.n_elements,
                "updates_per_read": self.updates_per_read,
                "rounds": self.rounds,
            },
        )

    def _build_columnar(self, n_cores: int) -> ColumnarTrace:
        base = self.addresses.region("interleaved_array")
        update_code = self._update_code(1)
        load_code = self._load_code(8)
        run = self.updates_per_read + 1
        code_pattern = np.tile(
            np.array([update_code] * self.updates_per_read + [load_code], dtype=np.uint8),
            self.rounds,
        )
        delta_pattern = np.tile(
            np.array([1] * self.updates_per_read + [0], dtype=np.int64), self.rounds
        )
        columns = []
        for core_id in range(n_cores):
            rng = self._rng(core_id)
            indices = rng.integers(0, self.n_elements, size=self.rounds)
            addresses = np.repeat(base + indices.astype(np.uint64) * 8, run)
            columns.append(make_columns(code_pattern, addresses, delta_pattern, self.think))
        return ColumnarTrace(
            name=self.name,
            columns=columns,
            params={
                "n_elements": self.n_elements,
                "updates_per_read": self.updates_per_read,
                "rounds": self.rounds,
            },
        )


class MixedOpWorkload(Workload):
    """Commutative updates of different types to the same line.

    COUP must serialise updates of different types (they do not commute with
    each other), performing a full reduction on every type switch; this
    workload exercises that path and the associated correctness invariants.
    """

    name = "mixed-ops"
    comm_op_label = "64b int add + 64b OR"

    def __init__(
        self,
        updates_per_core: int = 200,
        switch_every: int = 10,
        *,
        seed: int = 42,
    ) -> None:
        super().__init__(seed=seed, update_style=UpdateStyle.COMMUTATIVE)
        if switch_every <= 0:
            raise ValueError("switch_every must be positive")
        self.updates_per_core = updates_per_core
        self.switch_every = switch_every

    @property
    def add_address(self) -> int:
        return self.addresses.element("mixed", 0, 8)

    @property
    def or_address(self) -> int:
        return self.addresses.element("mixed", 1, 8)

    def _build(self, n_cores: int) -> WorkloadTrace:
        per_core: List[Trace] = []
        for _core in range(n_cores):
            trace: Trace = []
            for i in range(self.updates_per_core):
                use_add = (i // self.switch_every) % 2 == 0
                if use_add:
                    trace.append(
                        MemoryAccess.commutative(self.add_address, CommutativeOp.ADD_I64, 1, think=4)
                    )
                else:
                    trace.append(
                        MemoryAccess.commutative(
                            self.or_address, CommutativeOp.OR_64, 1 << (i % 64), think=4
                        )
                    )
            per_core.append(trace)
        return WorkloadTrace(
            name=self.name,
            per_core=per_core,
            params={
                "updates_per_core": self.updates_per_core,
                "switch_every": self.switch_every,
            },
        )

    def _build_columnar(self, n_cores: int) -> ColumnarTrace:
        add_address = self.add_address
        or_address = self.or_address
        comm = AccessType.COMMUTATIVE_UPDATE
        add_code = code_for(comm, CommutativeOp.ADD_I64, 8, VK_INT)
        or_code_int = code_for(comm, CommutativeOp.OR_64, 8, VK_INT)
        or_code_uint = code_for(comm, CommutativeOp.OR_64, 8, VK_UINT)
        i = np.arange(self.updates_per_core, dtype=np.int64)
        use_add = (i // self.switch_every) % 2 == 0
        bits = (i % 64).astype(np.uint64)
        or_codes = np.where(bits == 63, or_code_uint, or_code_int)
        codes = np.where(use_add, add_code, or_codes).astype(np.uint8)
        addresses = np.where(use_add, np.uint64(add_address), np.uint64(or_address))
        or_deltas = np.left_shift(np.uint64(1), bits).view(np.int64)
        deltas = np.where(use_add, np.int64(1), or_deltas)
        column = make_columns(codes, addresses, deltas, 4)
        # Every core issues the identical update stream; the array is never
        # mutated, so one buffer backs all cores.
        return ColumnarTrace(
            name=self.name,
            columns=[column] * n_cores,
            params={
                "updates_per_core": self.updates_per_core,
                "switch_every": self.switch_every,
            },
        )
