"""Histogram construction workload (``hist``).

The paper's ``hist`` benchmark is OpenCV's TBB-based histogramming program: a
set of input values (image pixels) is processed in parallel and a histogram
with a configurable number of bins is produced.  Every input element causes a
read of the input (streaming, thread-private) plus one update to a shared bin
counter; with few bins the bin array is heavily contended, with many bins the
per-bin contention drops but privatized implementations pay an ever larger
reduction phase (Fig. 2, Fig. 12).

Variants:

* ``UpdateStyle.ATOMIC`` — the baseline: atomic fetch-and-add on shared bins.
* ``UpdateStyle.COMMUTATIVE`` — COUP commutative additions on shared bins.
* :meth:`HistogramWorkload.generate_privatized` — core- or socket-level
  software privatization with an explicit reduction phase.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.commutative import CommutativeOp
from repro.sim.access import AccessType, MemoryAccess, Trace, WorkloadTrace
from repro.sim.columnar import ACCESS_DTYPE, ColumnarTrace
from repro.software.privatization import (
    PrivatizationLevel,
    PrivatizedReductionBuilder,
    PrivatizedReductionPlan,
    socket_of_core,
)
from repro.workloads.base import UpdateStyle, Workload


class HistogramWorkload(Workload):
    """Parallel histogram of ``n_items`` input values into ``n_bins`` bins."""

    name = "hist"
    comm_op_label = "32b int add"

    #: Instructions spent per input element outside the bin update
    #: (load pixel, compute bin index, loop overhead).
    THINK_PER_ITEM = 12

    def __init__(
        self,
        n_bins: int = 512,
        n_items: int = 50_000,
        *,
        skew: float = 0.0,
        seed: int = 42,
        update_style: UpdateStyle = UpdateStyle.COMMUTATIVE,
        bin_bytes: int = 4,
    ) -> None:
        super().__init__(seed=seed, update_style=update_style)
        if n_bins <= 0 or n_items <= 0:
            raise ValueError("n_bins and n_items must be positive")
        self.n_bins = n_bins
        self.n_items = n_items
        self.skew = skew
        self.bin_bytes = bin_bytes
        self.op = CommutativeOp.ADD_I32

    # -- input generation --------------------------------------------------------

    def _input_bins(self) -> np.ndarray:
        """Bin index of every input element (shared across variants)."""
        rng = self._rng(0)
        if self.skew > 0.0:
            # Zipf-like skew over bins, clipped to the bin range.
            raw = rng.zipf(1.0 + self.skew, size=self.n_items)
            return (raw - 1) % self.n_bins
        return rng.integers(0, self.n_bins, size=self.n_items)

    def _bin_address(self, bin_index: int) -> int:
        return self.addresses.element("hist_bins", int(bin_index), self.bin_bytes)

    def _input_address(self, item_index: int) -> int:
        return self.addresses.element("hist_input", int(item_index), 4)

    # -- shared-histogram variants (atomics / COUP / RMO) -------------------------

    def _build(self, n_cores: int) -> WorkloadTrace:
        bins = self._input_bins()
        partitions = self.split_work(self.n_items, n_cores)
        # Hoisted out of the per-item loop: region bases (touched in the same
        # first-use order as the loop would) and the update-access shape that
        # ``make_update`` would resolve per item.
        input_base = self.addresses.region("hist_input")
        bin_base = self.addresses.region("hist_bins")
        load_t = AccessType.LOAD
        update_t, update_op, update_size = self._update_shape()
        think_per_item = self.THINK_PER_ITEM
        bin_bytes = self.bin_bytes
        per_core: List[Trace] = []
        for core_id in range(n_cores):
            trace: Trace = []
            append = trace.append
            for item in partitions[core_id]:
                append(
                    MemoryAccess(
                        load_t,
                        input_base + item * 4,
                        think_instructions=think_per_item,
                        size_bytes=4,
                    )
                )
                append(
                    MemoryAccess(
                        update_t,
                        bin_base + int(bins[item]) * bin_bytes,
                        op=update_op,
                        value=1,
                        think_instructions=2,
                        size_bytes=update_size,
                    )
                )
            per_core.append(trace)
        return WorkloadTrace(
            name=self.name,
            per_core=per_core,
            params={
                "n_bins": self.n_bins,
                "n_items": self.n_items,
                "variant": self.update_style.value,
            },
        )

    def _build_columnar(self, n_cores: int) -> ColumnarTrace:
        """Vectorized twin of :meth:`_build`: columns via array ops.

        Same RNG draws, same region-allocation order, same interleaving —
        the loads land on even slots and the bin updates on odd slots of
        each core's column.
        """
        bins = self._input_bins()
        partitions = self.split_work(self.n_items, n_cores)
        input_base = self.addresses.region("hist_input")
        bin_base = self.addresses.region("hist_bins")
        load_code = self._load_code(4)
        update_code = self._update_code(1)
        bin_bytes = self.bin_bytes
        columns: List[np.ndarray] = []
        for core_id in range(n_cores):
            part = partitions[core_id]
            array = np.empty(2 * len(part), dtype=ACCESS_DTYPE)
            items = np.arange(part.start, part.stop, dtype=np.uint64)
            array["type_code"][0::2] = load_code
            array["type_code"][1::2] = update_code
            array["address"][0::2] = input_base + items * 4
            array["address"][1::2] = (
                bin_base + bins[part.start : part.stop].astype(np.uint64) * bin_bytes
            )
            array["value_delta"][0::2] = 0
            array["value_delta"][1::2] = 1
            array["compute_gap"][0::2] = self.THINK_PER_ITEM
            array["compute_gap"][1::2] = 2
            array["phase"] = 0
            columns.append(array)
        return ColumnarTrace(
            name=self.name,
            columns=columns,
            params={
                "n_bins": self.n_bins,
                "n_items": self.n_items,
                "variant": self.update_style.value,
            },
        )

    # -- privatized variants -------------------------------------------------------

    def generate_privatized(
        self,
        n_cores: int,
        *,
        level: PrivatizationLevel = PrivatizationLevel.CORE,
        cores_per_socket: int = 16,
    ) -> WorkloadTrace:
        """Software-privatized histogram with an explicit reduction phase.

        Core-level privatization gives each thread its own bin array updated
        with plain loads and stores; socket-level privatization shares one
        replica per socket, updated with atomics.  After a barrier, bins are
        partitioned among cores and each core folds every replica into the
        shared histogram (Fig. 12's two software schemes).
        """
        if n_cores <= 0:
            raise ValueError("n_cores must be positive")
        bins = self._input_bins()
        partitions = self.split_work(self.n_items, n_cores)

        if level is PrivatizationLevel.CORE:
            n_replicas = n_cores
            replica_of_core = lambda core: core  # noqa: E731 - tiny adapter
        else:
            n_replicas = max(1, (n_cores + cores_per_socket - 1) // cores_per_socket)
            replica_of_core = socket_of_core(cores_per_socket)

        plan = PrivatizedReductionPlan(
            n_elements=self.n_bins,
            element_bytes=self.bin_bytes,
            op=self.op,
            level=level,
            n_replicas=n_replicas,
        )
        builder = PrivatizedReductionBuilder(
            plan, self.addresses, array_name="hist_priv", replica_of_core=replica_of_core
        )

        input_base = self.addresses.region("hist_input")
        load_t = AccessType.LOAD
        think_per_item = self.THINK_PER_ITEM
        per_core: List[Trace] = []
        update_counts: List[int] = []
        for core_id in range(n_cores):
            updates = []
            trace: Trace = []
            for item in partitions[core_id]:
                trace.append(
                    MemoryAccess(
                        load_t,
                        input_base + item * 4,
                        think_instructions=think_per_item,
                        size_bytes=4,
                    )
                )
                updates.append((int(bins[item]), 1, 2))
            trace.extend(builder.update_phase(core_id, updates))
            update_counts.append(len(trace))
            trace.extend(builder.reduction_phase(core_id, n_cores))
            per_core.append(trace)

        return WorkloadTrace(
            name=f"{self.name}-priv-{level.value}",
            per_core=per_core,
            params={
                "n_bins": self.n_bins,
                "n_items": self.n_items,
                "variant": f"privatization-{level.value}",
                "n_replicas": n_replicas,
                "footprint_bytes": plan.footprint_bytes,
            },
            phase_boundaries=[update_counts],
        )

    # -- functional reference -------------------------------------------------------

    def reference_result(self) -> Optional[Dict[int, object]]:
        """Expected final bin counts (address -> count) for shared variants."""
        bins = self._input_bins()
        counts = np.bincount(bins, minlength=self.n_bins)
        return {
            self._bin_address(b): int(counts[b])
            for b in range(self.n_bins)
            if counts[b] > 0
        }
