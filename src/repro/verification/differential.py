"""Differential cross-check: live protocol engines vs the abstract model.

The exhaustive and swarm lanes verify the *abstract* protocol model; this
lane closes the loop with the *live* engines in :mod:`repro.sim`.  One
generated transaction stream — loads, stores, commutative updates, and
evictions over a handful of addresses — drives both sides:

* **Live side**: the stream becomes a :class:`WorkloadTrace` (updates map to
  ``atomic`` under MESI, ``commutative`` under COUP/MEUSI, ``remote_update``
  under RMO; evictions have no live counterpart and are dropped).  The run
  is executed twice, once with the scalar kernel and once with the batched
  kernel forced (exercising the ``SUPPORTS_SLOW_BATCH`` group-retirement
  merge path), and the two :meth:`SimulationResult.to_jsonable` documents
  must be byte-identical.  Afterwards the engine's object directory and a
  freshly synced :class:`~repro.core.directory.DirectoryArray` mirror must
  both pass their invariant checks, and every update-only address must hold
  exactly the number of updates applied to it.
* **Model side**: the same stream drives one single-line
  :class:`CoherenceModel` instance per address with deterministic
  micro-stepping — drain internal transitions (message deliveries,
  directory processing) to quiescence, then apply the rule the transaction
  calls for.  The Sec. 3.3 invariants are checked after *every* micro-step,
  and at the end each address's ghost value must equal its operation count
  modulo ``value_base``.

A divergence on either side is a :class:`DifferentialFailure`.  Because the
model side is a pure function of ``(config, stream)``, a failing stream is
delta-debugged (:func:`repro.verification.shrink.ddmin`) down to a minimal
transaction sequence and written as a ``kind="stream"`` repro file that
``python -m repro.verification replay`` re-executes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.verification.invariants import InvariantViolation, check_invariants
from repro.verification.model import (
    CacheState,
    CoherenceModel,
    GlobalState,
    ModelConfig,
)

#: Transaction kinds a stream may contain.  ``evict`` exercises the model's
#: writeback/reduction paths (PutM/PutU absorption); the live engines evict
#: by capacity, so it has no live counterpart.
STREAM_KINDS: Tuple[str, ...] = ("load", "store", "update", "evict")

#: Micro-step budget per drain; a drain that exceeds it is a livelock bug.
_DRAIN_CAP = 10_000

#: Live protocol -> abstract model protocol.  RMO pushes updates to the
#: shared level instead of buffering in private U lines, but its
#: architectural contract (updates conserved, single writer) is the MEUSI
#: model's.
MODEL_PROTOCOL = {"MESI": "MESI", "COUP": "MEUSI", "MEUSI": "MEUSI", "RMO": "MEUSI"}


@dataclass(frozen=True)
class StreamConfig:
    """Parameters of one differential point; fully determines the stream."""

    protocol: str = "MEUSI"
    n_cores: int = 2
    n_addresses: int = 2
    length: int = 48
    seed: int = 0
    value_base: int = 16

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "protocol": self.protocol,
            "n_cores": self.n_cores,
            "n_addresses": self.n_addresses,
            "length": self.length,
            "seed": self.seed,
            "value_base": self.value_base,
        }

    @classmethod
    def from_jsonable(cls, data: Any) -> "StreamConfig":
        return cls(
            protocol=str(data["protocol"]),
            n_cores=int(data["n_cores"]),
            n_addresses=int(data["n_addresses"]),
            length=int(data["length"]),
            seed=int(data["seed"]),
            value_base=int(data["value_base"]),
        )

    def model_config(self) -> ModelConfig:
        return ModelConfig(
            n_cores=self.n_cores,
            n_ops=1,
            protocol=MODEL_PROTOCOL[self.protocol.upper()],
            value_base=self.value_base,
        )


#: One transaction: ``[core, address index, kind]`` (JSON-ready as is).
Transaction = List[Any]


def generate_stream(config: StreamConfig) -> List[Transaction]:
    """The deterministic transaction stream of a :class:`StreamConfig`."""
    rng = random.Random(config.seed * 9_176_141 + 17)
    stream: List[Transaction] = []
    for _ in range(config.length):
        core = rng.randrange(config.n_cores)
        address = rng.randrange(config.n_addresses)
        kind = STREAM_KINDS[rng.randrange(len(STREAM_KINDS))]
        stream.append([core, address, kind])
    return stream


@dataclass
class DifferentialFailure:
    """One divergence between the two sides (or an outright violation)."""

    #: ``model-invariant`` | ``model-ghost`` | ``model-livelock`` |
    #: ``kernel-divergence`` | ``live-directory`` | ``live-values``
    reason: str
    detail: str
    #: Stream index at which the model side failed (None for live failures).
    index: Optional[int] = None
    violation: Optional[InvariantViolation] = None

    def to_jsonable(self) -> Dict[str, Any]:
        from repro.verification import encode

        return {
            "invariant": self.reason,
            "detail": self.detail,
            "index": self.index,
            "violation": (
                encode.violation_to_jsonable(self.violation)
                if self.violation is not None
                else None
            ),
        }


@dataclass
class DifferentialResult:
    """Outcome of one differential point."""

    config: StreamConfig
    stream: List[Transaction]
    failure: Optional[DifferentialFailure] = None
    checks: List[str] = field(default_factory=list)
    mutation: Optional[str] = None

    @property
    def verified(self) -> bool:
        return self.failure is None

    def summary(self) -> Dict[str, Any]:
        return {
            "protocol": self.config.protocol,
            "n_cores": self.config.n_cores,
            "seed": self.config.seed,
            "length": len(self.stream),
            "checks": list(self.checks),
            "verified": self.verified,
            "failure": None if self.failure is None else self.failure.reason,
        }


# -- model side ----------------------------------------------------------------


def _is_internal(rule: str) -> bool:
    """Internal transitions: directory processing and message deliveries."""
    return rule.startswith("dir.") or ".recv_" in rule


class _AddressModel:
    """One address's single-line model state, driven transaction by transaction."""

    def __init__(self, model: CoherenceModel, config: ModelConfig) -> None:
        self.model = model
        self.config = config
        self.state: GlobalState = model.initial_state()
        self.ops_applied = 0

    def _step_named(self, rule: str) -> bool:
        """Apply ``rule`` if enabled (first canonical match); True if applied."""
        for name, successor in self.model.ordered_successors(self.state):
            if name == rule:
                self.state = successor
                return True
        return False

    def drain(self) -> Optional[DifferentialFailure]:
        """Apply internal transitions to quiescence, checking every step."""
        for _ in range(_DRAIN_CAP):
            violations = check_invariants(self.state, self.config)
            if violations:
                return DifferentialFailure(
                    reason="model-invariant",
                    detail=violations[0].detail,
                    violation=violations[0],
                )
            internal = [
                item
                for item in self.model.ordered_successors(self.state)
                if _is_internal(item[0])
            ]
            if not internal:
                return None
            self.state = internal[0][1]
        return DifferentialFailure(
            reason="model-livelock",
            detail=f"drain did not reach quiescence within {_DRAIN_CAP} steps",
        )

    def _apply_write(self, core: int) -> Optional[DifferentialFailure]:
        """Apply one write by ``core`` (miss-path grants perform the write).

        The model folds the operation that initiated a miss into the grant
        delivery — ``IM_D``/``IU_W`` + Data (and ``IU_W`` + GrantU) bump the
        ghost value as they install the line — so issuing the miss *is*
        applying the op; only an owned hit needs an explicit local rule.
        """
        line = self.state.caches[core]
        if line.state is CacheState.U:
            self._step_named(f"core{core}.evict_u")
            failure = self.drain()
            if failure is not None:
                return failure
            line = self.state.caches[core]
        applied = False
        if line.state is CacheState.I:
            applied = self._step_named(f"core{core}.write_miss")
        elif line.state is CacheState.S:
            applied = self._step_named(f"core{core}.upgrade")
        elif line.state in (CacheState.M, CacheState.E):
            applied = self._step_named(f"core{core}.local_write")
        if applied:
            self.ops_applied += 1
        return self.drain()

    def apply(self, core: int, kind: str) -> Optional[DifferentialFailure]:
        """Apply one transaction; deterministic state-dependent rule choice."""
        failure = self.drain()
        if failure is not None:
            return failure
        line = self.state.caches[core]
        if kind == "load":
            if line.state is CacheState.I:
                self._step_named(f"core{core}.read_miss")
            # S/M/E read locally; U defers reads until the reduction — no rule.
        elif kind == "store":
            return self._apply_write(core)
        elif kind == "update":
            if not self.config.supports_update_state:
                # MESI models an atomic RMW as an owned write.
                return self._apply_write(core)
            applied = False
            if line.state is CacheState.I:
                applied = self._step_named(f"core{core}.update_miss_op0")
            elif line.state is CacheState.S:
                applied = self._step_named(f"core{core}.update_from_s_op0")
            elif line.state is CacheState.U:
                applied = self._step_named(f"core{core}.local_update_in_u")
            elif line.state in (CacheState.M, CacheState.E):
                applied = self._step_named(f"core{core}.local_write")
            if applied:
                self.ops_applied += 1
        elif kind == "evict":
            for rule in (
                f"core{core}.evict_m",
                f"core{core}.evict_u",
                f"core{core}.evict_s",
            ):
                if self._step_named(rule):
                    break
        else:
            raise ValueError(f"unknown stream transaction kind {kind!r}")
        return self.drain()

    def check_final(self) -> Optional[DifferentialFailure]:
        """At quiescence the ghost value must equal the applied-op count."""
        expected = self.ops_applied % self.config.value_base
        if self.state.ghost_value != expected:
            return DifferentialFailure(
                reason="model-ghost",
                detail=(
                    f"ghost value {self.state.ghost_value} != "
                    f"{expected} ({self.ops_applied} ops mod "
                    f"{self.config.value_base})"
                ),
            )
        return None


def replay_stream_model(
    config: StreamConfig,
    stream: Sequence[Transaction],
    *,
    mutation: Optional[str] = None,
) -> Optional[DifferentialFailure]:
    """Drive the abstract model with ``stream``; the first failure, if any.

    Pure function of its arguments — this is both the model half of a
    differential point and the ``ddmin`` predicate for stream shrinking.
    """
    model_config = config.model_config()
    model = CoherenceModel(model_config, mutation=mutation)
    addresses: Dict[int, _AddressModel] = {}
    for index, (core, address, kind) in enumerate(stream):
        tracker = addresses.get(address)
        if tracker is None:
            tracker = _AddressModel(model, model_config)
            addresses[address] = tracker
        failure = tracker.apply(int(core), str(kind))
        if failure is not None:
            failure.index = index
            return failure
    for address in sorted(addresses):
        tracker = addresses[address]
        failure = tracker.drain()
        if failure is None:
            failure = tracker.check_final()
        if failure is not None:
            return failure
    return None


def shrink_stream(
    config: StreamConfig,
    stream: Sequence[Transaction],
    *,
    mutation: Optional[str] = None,
) -> Tuple[List[Transaction], DifferentialFailure]:
    """Minimize a model-side failing stream; (minimal stream, its failure)."""
    from repro.verification.shrink import ddmin

    def fails(candidate: Sequence[Transaction]) -> bool:
        return replay_stream_model(config, candidate, mutation=mutation) is not None

    minimal = ddmin(list(stream), fails)
    failure = replay_stream_model(config, minimal, mutation=mutation)
    assert failure is not None  # ddmin only returns failing candidates
    return minimal, failure


# -- live side -----------------------------------------------------------------


def stream_workload(config: StreamConfig, stream: Sequence[Transaction]) -> Any:
    """The live-engine workload of a stream (evictions dropped)."""
    from repro.core.commutative import CommutativeOp
    from repro.sim.access import MemoryAccess, WorkloadTrace

    protocol = config.protocol.upper()
    per_core: List[List[Any]] = [[] for _ in range(config.n_cores)]
    for core, address, kind in stream:
        byte_address = int(address) * 64
        if kind == "load":
            per_core[int(core)].append(MemoryAccess.load(byte_address))
        elif kind == "store":
            per_core[int(core)].append(MemoryAccess.store(byte_address, value=0))
        elif kind == "update":
            if protocol == "MESI":
                access = MemoryAccess.atomic(byte_address, CommutativeOp.ADD_I64, 1)
            elif protocol == "RMO":
                access = MemoryAccess.remote_update(
                    byte_address, CommutativeOp.ADD_I64, 1
                )
            else:
                access = MemoryAccess.commutative(
                    byte_address, CommutativeOp.ADD_I64, 1
                )
            per_core[int(core)].append(access)
        # evictions are a model-side concern; live caches evict by capacity.
    return WorkloadTrace(
        name="differential-stream",
        per_core=per_core,
        params={"seed": config.seed, "length": config.length},
    )


def _run_live(
    config: StreamConfig, stream: Sequence[Transaction], kernel: str
) -> Tuple[Dict[str, Any], Any]:
    """One live run under a forced kernel; (result jsonable, engine)."""
    import os

    from repro.sim.columnar import ColumnarTrace
    from repro.sim.config import small_test_config
    from repro.sim.simulator import MulticoreSimulator, make_protocol

    workload = ColumnarTrace.from_workload(stream_workload(config, stream))
    sim_config = small_test_config(config.n_cores)
    engine = make_protocol(config.protocol, sim_config, track_values=True)
    simulator = MulticoreSimulator(sim_config, engine, track_values=True)
    previous = os.environ.get("REPRO_SIM_KERNEL")
    os.environ["REPRO_SIM_KERNEL"] = kernel
    try:
        result = simulator.run(workload)
    finally:
        if previous is None:
            del os.environ["REPRO_SIM_KERNEL"]
        else:
            os.environ["REPRO_SIM_KERNEL"] = previous
    return result.to_jsonable(), engine


def check_live(
    config: StreamConfig, stream: Sequence[Transaction]
) -> Tuple[Optional[DifferentialFailure], List[str]]:
    """The live half of a differential point; (failure, checks performed)."""
    from repro.core.directory import DirectoryArray
    from repro.verification.encode import canonical_dumps

    checks: List[str] = []
    scalar, _scalar_engine = _run_live(config, stream, "scalar")
    batch, engine = _run_live(config, stream, "batch")
    checks.append("kernel-equivalence")
    if canonical_dumps(scalar) != canonical_dumps(batch):
        differing = sorted(
            key
            for key in set(scalar) | set(batch)
            if scalar.get(key) != batch.get(key)
        )
        return (
            DifferentialFailure(
                reason="kernel-divergence",
                detail=(
                    "scalar and batched kernels disagree on "
                    f"field(s) {differing}"
                ),
            ),
            checks,
        )

    checks.append("directory-invariants")
    try:
        engine.directory.check_invariants()
        line_addrs = sorted(engine.directory._entries)
        mirror = DirectoryArray(config.n_cores, capacity=max(16, len(line_addrs)))
        mirror.rows_for(line_addrs, engine.directory)
        mirror.check_invariants(engine.directory)
    except AssertionError as exc:
        return (
            DifferentialFailure(reason="live-directory", detail=str(exc)),
            checks,
        )

    checks.append("value-correspondence")
    expected: Dict[int, int] = {}
    pure_updates: Dict[int, bool] = {}
    for _core, address, kind in stream:
        byte_address = int(address) * 64
        if kind == "update":
            expected[byte_address] = expected.get(byte_address, 0) + 1
            pure_updates.setdefault(byte_address, True)
        elif kind in ("load", "store"):
            pure_updates[byte_address] = False
    final_values = dict(batch.get("final_values") or [])
    for byte_address in sorted(expected):
        if not pure_updates.get(byte_address):
            continue  # stores make the final value interleaving-dependent
        actual = final_values.get(byte_address)
        if actual != expected[byte_address]:
            return (
                DifferentialFailure(
                    reason="live-values",
                    detail=(
                        f"address {byte_address:#x}: final value {actual!r} "
                        f"!= {expected[byte_address]} updates applied"
                    ),
                ),
                checks,
            )
    return None, checks


def run_differential(
    config: StreamConfig,
    *,
    mutation: Optional[str] = None,
    live: bool = True,
) -> DifferentialResult:
    """Run one differential point: model side always, live side optionally."""
    stream = generate_stream(config)
    result = DifferentialResult(config=config, stream=stream, mutation=mutation)
    failure = replay_stream_model(config, stream, mutation=mutation)
    result.checks.append("model-correspondence")
    if failure is not None:
        result.failure = failure
        return result
    if live:
        failure, live_checks = check_live(config, stream)
        result.checks.extend(live_checks)
        result.failure = failure
    return result
