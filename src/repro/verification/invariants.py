"""Coherence invariants checked on every reachable state of the protocol model.

Sec. 3.3 argues COUP maintains coherence even though it abandons the
single-writer/multiple-reader (SWMR) invariant: in update-only mode any serial
order of the buffered commutative updates yields the same result, and every
transition out of update-only mode propagates all partial updates before data
becomes readable.  The checkable consequences on our model are:

* **Exclusive-owner invariant** — at most one cache in M or E, and if one
  exists no cache is in S or U.
* **Single-mode invariant** — read-only (S) and update-only (U) copies never
  coexist, and all U copies use the same operation type (the directory's type
  field matches).
* **Read-value invariant** — any cache that may satisfy reads (S, E, M) holds
  exactly the ghost (architecturally correct) value.
* **Update-conservation invariant** — the ghost value always equals the
  directory's value plus every buffered delta in U caches plus every delta in
  flight in PutU/Partial messages plus any dirty value still travelling in
  writebacks.  This is the "no update is ever lost or duplicated" property
  that makes reductions produce the correct value.
* **Directory-consistency invariant** — the directory's sharer/owner records
  agree with the caches' states (modulo in-flight transactions, which are
  accounted through the message terms above).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.verification.model import (
    CacheState,
    DirState,
    GlobalState,
    ModelConfig,
    MsgType,
)


@dataclass
class InvariantViolation:
    """One invariant failure found during state-space exploration."""

    invariant: str
    detail: str
    state: GlobalState

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.invariant}: {self.detail}"


def _value_carrying_terms(state: GlobalState, config: ModelConfig) -> Optional[int]:
    """Reconstruct the logical value from directory + caches + network.

    Returns ``None`` when a value-carrying response (Data) is in flight in a
    direction that makes the accounting ambiguous; those states are skipped by
    the conservation check (the value is still checked once it lands).
    """
    base = config.value_base
    total = state.directory.value

    owner_value: Optional[int] = None
    for cache in state.caches:
        if cache.state in (CacheState.M, CacheState.E):
            owner_value = cache.value
        elif cache.state is CacheState.U:
            total = (total + cache.value) % base
        elif cache.state is CacheState.IU_W and cache.op is not None:
            # Type-switch in progress: the cache still buffers its old delta.
            total = (total + cache.value) % base

    for msg_type, _src, _dst, payload in state.network:
        if msg_type is MsgType.PUT_U:
            total = (total + payload[1]) % base
        elif msg_type is MsgType.PARTIAL and payload[0] is not None:
            total = (total + payload[1]) % base
        elif msg_type is MsgType.PUT_M or msg_type is MsgType.DATA_WB:
            # A dirty value is in flight; it will overwrite the directory copy.
            owner_value = payload[0]
        elif msg_type is MsgType.DATA:
            # The authoritative value is being handed to a requester; the
            # directory already recorded it, nothing to add.
            continue

    if owner_value is not None:
        return owner_value % base
    return total % base


def check_invariants(state: GlobalState, config: ModelConfig) -> List[InvariantViolation]:
    """Return every invariant violated by ``state`` (empty list if none)."""
    violations: List[InvariantViolation] = []

    exclusive = [i for i, c in enumerate(state.caches) if c.state in (CacheState.M, CacheState.E)]
    shared = [i for i, c in enumerate(state.caches) if c.state is CacheState.S]
    updating = [i for i, c in enumerate(state.caches) if c.state is CacheState.U]

    if len(exclusive) > 1:
        violations.append(
            InvariantViolation("exclusive-owner", f"multiple owners {exclusive}", state)
        )
    if exclusive and (shared or updating):
        violations.append(
            InvariantViolation(
                "exclusive-owner",
                f"owner {exclusive} coexists with S={shared} U={updating}",
                state,
            )
        )
    if shared and updating:
        violations.append(
            InvariantViolation(
                "single-mode", f"S={shared} and U={updating} coexist", state
            )
        )

    ops = {state.caches[i].op for i in updating}
    if len(ops) > 1:
        violations.append(
            InvariantViolation("single-mode", f"mixed update types {ops}", state)
        )
    if updating and state.directory.state is DirState.UPDATE and ops and state.directory.op not in ops:
        violations.append(
            InvariantViolation(
                "single-mode",
                f"directory op {state.directory.op} != cache ops {ops}",
                state,
            )
        )

    # Read-value invariant: readable copies hold the ghost value, except while
    # the directory is mid-transaction moving the line away from them.
    if not state.directory.state.is_busy:
        for index in exclusive + shared:
            cache = state.caches[index]
            if cache.value != state.ghost_value:
                violations.append(
                    InvariantViolation(
                        "read-value",
                        f"core {index} in {cache.state.value} holds {cache.value}, "
                        f"ghost is {state.ghost_value}",
                        state,
                    )
                )
                break

    reconstructed = _value_carrying_terms(state, config)
    if reconstructed is not None and reconstructed != state.ghost_value % config.value_base:
        violations.append(
            InvariantViolation(
                "update-conservation",
                f"reconstructed {reconstructed} != ghost {state.ghost_value}",
                state,
            )
        )

    # Directory consistency (checked only in quiescent directory states).
    directory = state.directory
    if directory.state is DirState.EXCLUSIVE and not directory.state.is_busy:
        pass  # The owner may be mid-eviction; detailed agreement is covered above.
    if directory.state is DirState.UPDATE and not updating:
        # The registered updaters may be mid-eviction (PutU in flight), not yet
        # granted (GrantU in flight), or mid-type-switch (IU_W still holding
        # the old type's delta); only a state with none of those is anomalous.
        in_flight_putu = any(m[0] is MsgType.PUT_U for m in state.network)
        pending_grant = any(m[0] is MsgType.GRANT_U for m in state.network)
        evicting_or_switching = any(
            cache.state in (CacheState.UI_A,)
            or (cache.state is CacheState.IU_W and cache.op is not None)
            for cache in state.caches
        )
        if not in_flight_putu and not pending_grant and not evicting_or_switching:
            violations.append(
                InvariantViolation(
                    "directory-consistency",
                    "directory in UPDATE mode with no updaters and no in-flight PutU",
                    state,
                )
            )

    return violations
