"""Protocol verification substrate: transient-state models and a model checker.

Beyond the serial checker, the package hosts the verification-at-scale
lanes (all reachable through ``python -m repro.verification``):

* :mod:`repro.verification.parallel` — sharded exhaustive BFS on the
  campaign supervisor fabric, with journalled crash-safe checkpoints;
* :mod:`repro.verification.walker` — seeded randomized interleaving swarms;
* :mod:`repro.verification.differential` — differential cross-checks that
  drive the live protocol engines and the abstract model with one stream;
* :mod:`repro.verification.shrink` — delta-debugging trace minimization;
* :mod:`repro.verification.encode` — canonical repro-file codec.
"""

from repro.verification.checker import ExplorationResult, ModelChecker, verify_protocol
from repro.verification.differential import (
    DifferentialFailure,
    DifferentialResult,
    StreamConfig,
    generate_stream,
    run_differential,
)
from repro.verification.encode import ReproFileError, load_repro, make_repro, write_repro
from repro.verification.parallel import ShardedExploration, check_sharded
from repro.verification.shrink import ddmin, shrink_model_trace
from repro.verification.walker import SwarmResult, WalkResult, run_swarm
from repro.verification.inventory import (
    INVENTORIES,
    THREE_LEVEL_MESI,
    THREE_LEVEL_MEUSI,
    TWO_LEVEL_MESI,
    TWO_LEVEL_MEUSI,
    ControllerInventory,
    ProtocolInventory,
    directory_type_field_bits,
    extra_states_over_mesi,
)
from repro.verification.invariants import InvariantViolation, check_invariants
from repro.verification.model import (
    CacheState,
    CoherenceModel,
    DirState,
    GlobalState,
    ModelConfig,
    MsgType,
)

__all__ = [
    "CacheState",
    "CoherenceModel",
    "ControllerInventory",
    "DifferentialFailure",
    "DifferentialResult",
    "DirState",
    "ExplorationResult",
    "GlobalState",
    "INVENTORIES",
    "InvariantViolation",
    "ModelChecker",
    "ModelConfig",
    "MsgType",
    "ProtocolInventory",
    "ReproFileError",
    "ShardedExploration",
    "StreamConfig",
    "SwarmResult",
    "THREE_LEVEL_MESI",
    "THREE_LEVEL_MEUSI",
    "TWO_LEVEL_MESI",
    "TWO_LEVEL_MEUSI",
    "WalkResult",
    "check_invariants",
    "check_sharded",
    "ddmin",
    "directory_type_field_bits",
    "extra_states_over_mesi",
    "generate_stream",
    "load_repro",
    "make_repro",
    "run_differential",
    "run_swarm",
    "shrink_model_trace",
    "verify_protocol",
    "write_repro",
]
