"""Protocol verification substrate: transient-state models and a model checker."""

from repro.verification.checker import ExplorationResult, ModelChecker, verify_protocol
from repro.verification.inventory import (
    INVENTORIES,
    THREE_LEVEL_MESI,
    THREE_LEVEL_MEUSI,
    TWO_LEVEL_MESI,
    TWO_LEVEL_MEUSI,
    ControllerInventory,
    ProtocolInventory,
    directory_type_field_bits,
    extra_states_over_mesi,
)
from repro.verification.invariants import InvariantViolation, check_invariants
from repro.verification.model import (
    CacheState,
    CoherenceModel,
    DirState,
    GlobalState,
    ModelConfig,
    MsgType,
)

__all__ = [
    "CacheState",
    "CoherenceModel",
    "ControllerInventory",
    "DirState",
    "ExplorationResult",
    "GlobalState",
    "INVENTORIES",
    "InvariantViolation",
    "ModelChecker",
    "ModelConfig",
    "MsgType",
    "ProtocolInventory",
    "THREE_LEVEL_MESI",
    "THREE_LEVEL_MEUSI",
    "TWO_LEVEL_MESI",
    "TWO_LEVEL_MEUSI",
    "check_invariants",
    "directory_type_field_bits",
    "extra_states_over_mesi",
    "verify_protocol",
]
