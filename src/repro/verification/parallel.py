"""Sharded exhaustive model checking on the campaign fabric.

The serial :class:`~repro.verification.checker.ModelChecker` explores one
frontier state at a time; this module distributes the same breadth-first
search across supervised worker processes.  The search is **level
synchronous**: all states at BFS depth ``k`` are expanded before any state at
depth ``k + 1``, and within a level the frontier is partitioned by
``state_digest(state) % jobs`` — a content digest of the canonical encoding
(:func:`repro.verification.encode.state_digest`), never built-in ``hash``,
so the partition is identical in every process and on every run.

Everything rides on the PR-8 fabric rather than reinventing it:

* Shard expansion runs under :func:`repro.experiments.supervisor.supervise`
  — per-shard deadlines, worker-death detection, deterministic retry.  A
  SIGKILLed shard worker is retried transparently; a shard that exhausts its
  attempts raises :class:`ShardFailedError` (a wrong state count must never
  look like a verified protocol).
* After every level the newly discovered frontier is appended to a
  crash-safe WAL journal (:mod:`repro.experiments.journal`), so a checker
  killed at any instant — including mid-write, via the ``torn`` fault — can
  resume from the journal and finish with bit-identical counts.

Determinism contract: folding shard results sorts successors by the global
index of their parent state, and each worker emits a parent's successors in
canonical (:meth:`CoherenceModel.ordered_successors`) order.  The discovery
order of every level — and therefore the journalled frontier records — is a
pure function of the model configuration, independent of ``jobs``,
scheduling, retries, and resumes.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments import faults as _faults
from repro.experiments import journal as _journal
from repro.experiments.supervisor import TaskSpec, supervise
from repro.verification import encode
from repro.verification.checker import ExplorationResult, ModelChecker
from repro.verification.invariants import InvariantViolation, check_invariants
from repro.verification.model import CoherenceModel, ModelConfig

#: One frontier entry: ``[state jsonable, parent index in previous level or
#: None, rule that produced it or None]``.  The initial state is the sole
#: level-0 entry with no parent.  This is both the in-memory and the
#: journalled representation, so resume reconstructs parent chains exactly.
LevelEntry = Tuple[Any, Optional[int], Optional[str]]

#: Wall-clock budget for one shard expansion attempt.  Level shards at the
#: model sizes this lane targets finish in milliseconds; the deadline only
#: exists so a wedged worker is reaped instead of hanging the run.
DEFAULT_SHARD_TIMEOUT_S = 120.0


class ShardFailedError(RuntimeError):
    """A frontier shard was lost (quarantined or errored) — counts are void."""


@dataclass
class ShardedExploration:
    """Everything a sharded run produces beyond the bare counts."""

    result: ExplorationResult
    jobs: int
    n_levels: int
    #: One BFS rule trace per entry of ``result.violations`` (same order):
    #: the discovery path from the initial state to the violating state.
    violation_traces: List[List[str]] = field(default_factory=list)
    #: True when this run finished by folding a journal that was already
    #: complete (nothing was re-explored).
    resumed_complete: bool = False


def shard_of(state_jsonable: Mapping[str, Any], n_shards: int) -> int:
    """The shard owning a state: content digest modulo the shard count."""
    import zlib

    digest = zlib.crc32(encode.canonical_dumps(state_jsonable).encode("utf-8"))
    return digest % n_shards


def experiment_id(config: ModelConfig, mutation: Optional[str]) -> str:
    """The journal/fault experiment id of one sharded verification run."""
    base = f"verify-{config.protocol}-{config.n_cores}c-{config.n_ops}o"
    if mutation is not None:
        base += f"-mut.{mutation}"
    return base


# -- worker side ---------------------------------------------------------------


def _expand_payload(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Expand one shard of frontier states; pure function of the payload."""
    config = encode.config_from_jsonable(payload["config"])
    mutation = payload["mutation"]
    model = CoherenceModel(config, mutation=mutation)
    violations: List[Any] = []
    successors: List[Any] = []
    transitions = 0
    deadlocks = 0
    for index, state_data in payload["states"]:
        state = encode.state_from_jsonable(state_data)
        for violation in check_invariants(state, config):
            violations.append([index, encode.violation_to_jsonable(violation)])
        successor_count = 0
        for rule, successor in model.ordered_successors(state):
            transitions += 1
            successor_count += 1
            successors.append([index, rule, encode.state_to_jsonable(successor)])
        if successor_count == 0 and not ModelChecker._is_quiescent(state):
            deadlocks += 1
    return {
        "violations": violations,
        "successors": successors,
        "transitions": transitions,
        "deadlocks": deadlocks,
    }


def _shard_worker(payload: Any, attempt: int) -> Dict[str, Any]:
    """Supervised worker body: apply injected worker faults, then expand."""
    plan = _faults.active_plan()
    if plan:
        exp = payload["experiment_id"]
        point = payload["point"]
        if plan.should("kill", exp, point, attempt) is not None:
            _faults.fire_kill()
        hang = plan.should("hang", exp, point, attempt)
        if hang is not None:
            _faults.fire_hang(hang.secs)
    return _expand_payload(payload)


# -- parent side ---------------------------------------------------------------


def _fold_level(
    entries: Sequence[LevelEntry],
    shard_results: Sequence[Optional[Mapping[str, Any]]],
    visited: Dict[str, None],
) -> Tuple[List[LevelEntry], List[Tuple[int, Dict[str, Any]]], int, int]:
    """Fold one level's shard results into the next level.

    Returns ``(next level entries, violations as (parent index, jsonable),
    transitions, deadlocks)``.  Successors are folded in ``(parent index,
    canonical successor order)`` — each worker emits one parent's successors
    contiguously and in canonical order, so a stable sort of the
    concatenated shard lists by parent index restores a ``jobs``-independent
    discovery order.
    """
    merged: List[Any] = []
    violations: List[Tuple[int, Dict[str, Any]]] = []
    transitions = 0
    deadlocks = 0
    for result in shard_results:
        if result is None:
            continue
        merged.extend(result["successors"])
        violations.extend((entry[0], entry[1]) for entry in result["violations"])
        transitions += result["transitions"]
        deadlocks += result["deadlocks"]
    merged.sort(key=lambda entry: entry[0])
    violations.sort(key=lambda entry: entry[0])
    next_level: List[LevelEntry] = []
    for parent_index, rule, state_data in merged:
        key = encode.canonical_dumps(state_data)
        if key not in visited:
            visited[key] = None
            next_level.append((state_data, parent_index, rule))
    return next_level, violations, transitions, deadlocks


def counterexample_trace(
    levels: Sequence[Sequence[LevelEntry]], level: int, index: int
) -> List[str]:
    """The BFS rule path from the initial state to ``levels[level][index]``."""
    rules: List[str] = []
    at: Optional[int] = index
    for depth in range(level, 0, -1):
        assert at is not None
        _, parent, rule = levels[depth][at]
        assert rule is not None
        rules.append(rule)
        at = parent
    return list(reversed(rules))


def _level_record(
    exp_id: str,
    config_jsonable: Mapping[str, Any],
    mutation: Optional[str],
    level: int,
    entries: Sequence[LevelEntry],
    violations: Sequence[Tuple[int, Mapping[str, Any]]],
    states_total: int,
    transitions_total: int,
    deadlocks_total: int,
    done: bool,
    completed: bool,
) -> Dict[str, Any]:
    return {
        "kind": "point",
        "experiment_id": exp_id,
        "point": f"level-{level:04d}",
        "status": "ok",
        "schema": encode.REPRO_SCHEMA,
        "config": dict(config_jsonable),
        "mutation": mutation,
        "level": level,
        "frontier": [[data, parent, rule] for data, parent, rule in entries],
        "violations": [
            {"index": index, "violation": dict(violation)}
            for index, violation in violations
        ],
        "states_total": states_total,
        "transitions_total": transitions_total,
        "deadlocks_total": deadlocks_total,
        "done": done,
        "completed": completed,
    }


@dataclass
class _ResumeState:
    """Search state reconstructed from a journal's intact prefix."""

    levels: List[List[LevelEntry]]
    visited: Dict[str, None]
    violations: List[Tuple[int, int, Dict[str, Any]]]  # (level, index, jsonable)
    transitions: int
    deadlocks: int
    done: bool
    completed: bool


def _fold_journal(
    journal_dir: str, exp_id: str, config_jsonable: Mapping[str, Any]
) -> Optional[_ResumeState]:
    """Rebuild the search state from a journal directory, if any."""
    replay = _journal.replay_dir(journal_dir)
    by_level: Dict[int, Mapping[str, Any]] = {}
    for record in replay.records:
        if record.get("kind") != "point" or record.get("experiment_id") != exp_id:
            continue
        level = record.get("level")
        if isinstance(level, int):
            by_level[level] = record
    if not by_level:
        return None
    max_level = max(by_level)
    levels: List[List[LevelEntry]] = []
    visited: Dict[str, None] = {}
    violations: List[Tuple[int, int, Dict[str, Any]]] = []
    for level in range(max_level + 1):
        record = by_level.get(level)
        if record is None:
            raise _journal.JournalCorruptError(
                f"{journal_dir}: journal for {exp_id} is missing level {level} "
                f"(levels up to {max_level} are present)"
            )
        if record.get("config") != dict(config_jsonable):
            raise ValueError(
                f"{journal_dir}: journalled config {record.get('config')!r} does "
                f"not match the requested configuration {dict(config_jsonable)!r}"
            )
        entries: List[LevelEntry] = []
        for data, parent, rule in record["frontier"]:  # type: ignore[union-attr]
            entries.append((data, parent, rule))
            visited[encode.canonical_dumps(data)] = None
        levels.append(entries)
        for item in record["violations"]:  # type: ignore[union-attr]
            violations.append((level - 1, item["index"], item["violation"]))
    last = by_level[max_level]
    return _ResumeState(
        levels=levels,
        visited=visited,
        violations=violations,
        transitions=int(last["transitions_total"]),  # type: ignore[arg-type]
        deadlocks=int(last["deadlocks_total"]),  # type: ignore[arg-type]
        done=bool(last.get("done")),
        completed=bool(last.get("completed")),
    )


def check_sharded(
    config: ModelConfig,
    *,
    jobs: int = 1,
    mutation: Optional[str] = None,
    max_states: int = 2_000_000,
    stop_on_violation: bool = True,
    journal_dir: Optional[str] = None,
    resume: bool = False,
    torn_hook: Optional[_faults.TornHook] = None,
    max_attempts: int = 3,
    shard_timeout_s: float = DEFAULT_SHARD_TIMEOUT_S,
    on_event: Optional[Any] = None,
) -> ShardedExploration:
    """Explore ``config`` exhaustively across ``jobs`` supervised shards.

    With ``journal_dir`` set, every completed level is checkpointed; pass
    ``resume=True`` to fold an existing journal and continue from its last
    intact level (the acceptance path for a run killed mid-level or
    mid-write).  Without ``resume``, a journal directory that already holds
    segments is refused — appending a second run's levels over a first
    run's would make the fold ambiguous.

    Counts (states, transitions, deadlocks) are bit-identical to the serial
    :class:`ModelChecker` for any ``jobs`` on violation-free models, and
    identical across ``jobs`` values always.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    start = time.perf_counter()
    exp_id = experiment_id(config, mutation)
    config_jsonable = encode.config_to_jsonable(config)

    writer: Optional[_journal.JournalWriter] = None
    state: Optional[_ResumeState] = None
    if journal_dir is not None:
        if resume:
            state = _fold_journal(journal_dir, exp_id, config_jsonable)
        elif os.path.isdir(journal_dir) and any(
            name.endswith(".wal") for name in sorted(os.listdir(journal_dir))
        ):
            raise ValueError(
                f"{journal_dir}: journal already holds segments; pass "
                "resume=True to continue that run or point at a fresh directory"
            )
        writer = _journal.JournalWriter(
            _journal.fresh_segment_path(journal_dir, os.getpid()),
            torn_hook=torn_hook,
        )

    resumed_complete = state is not None and state.done
    try:
        if state is None:
            model = CoherenceModel(config, mutation=mutation)
            initial = encode.state_to_jsonable(model.initial_state())
            level0: List[LevelEntry] = [(initial, None, None)]
            state = _ResumeState(
                levels=[level0],
                visited={encode.canonical_dumps(initial): None},
                violations=[],
                transitions=0,
                deadlocks=0,
                done=False,
                completed=True,
            )
            if writer is not None:
                writer.append(
                    _level_record(
                        exp_id, config_jsonable, mutation, 0, level0, [],
                        1, 0, 0, False, True,
                    )
                )

        while not state.done:
            level = len(state.levels) - 1
            entries = state.levels[level]
            if not entries:
                state.done = True
                break
            shard_states: List[List[Any]] = [[] for _ in range(jobs)]
            for index, (data, _parent, _rule) in enumerate(entries):
                shard_states[shard_of(data, jobs)].append([index, data])
            shard_results: List[Optional[Mapping[str, Any]]] = [None] * jobs
            if jobs == 1:
                shard_results[0] = _expand_payload(
                    {
                        "config": config_jsonable,
                        "mutation": mutation,
                        "states": shard_states[0],
                    }
                )
            else:
                tasks = []
                for shard in range(jobs):
                    if not shard_states[shard]:
                        continue
                    tasks.append(
                        TaskSpec(
                            task_id=f"L{level:04d}.S{shard}",
                            payload={
                                "config": config_jsonable,
                                "mutation": mutation,
                                "states": shard_states[shard],
                                "experiment_id": exp_id,
                                "point": f"level-{level:04d}/shard-{shard}",
                            },
                            timeout_s=shard_timeout_s,
                        )
                    )
                for outcome in supervise(
                    tasks,
                    _shard_worker,
                    jobs=jobs,
                    max_attempts=max_attempts,
                    on_event=on_event,
                ):
                    if outcome.status != "ok":
                        raise ShardFailedError(
                            f"{exp_id}: shard task {outcome.task_id} ended "
                            f"{outcome.status!r} after {outcome.attempts} "
                            f"attempt(s); state counts would be wrong. "
                            f"Failures: {list(outcome.failures)!r}; "
                            f"value: {outcome.value!r}"
                        )
                    shard = int(outcome.task_id.rsplit(".S", 1)[1])
                    shard_results[shard] = outcome.value

            next_level, level_violations, transitions, deadlocks = _fold_level(
                entries, shard_results, state.visited
            )
            state.levels.append(next_level)
            state.transitions += transitions
            state.deadlocks += deadlocks
            state.violations.extend(
                (level, index, violation) for index, violation in level_violations
            )
            if level_violations and stop_on_violation:
                state.done = True
                state.completed = False
            if len(state.visited) > max_states:
                state.done = True
                state.completed = False
            if not next_level:
                state.done = True
            if writer is not None:
                writer.append(
                    _level_record(
                        exp_id, config_jsonable, mutation, level + 1,
                        next_level, level_violations, len(state.visited),
                        state.transitions, state.deadlocks, state.done,
                        state.completed,
                    )
                )
    finally:
        if writer is not None:
            writer.close()

    violations = [
        encode.violation_from_jsonable(violation)
        for _level, _index, violation in state.violations
    ]
    traces = [
        counterexample_trace(state.levels, level, index)
        for level, index, _violation in state.violations
    ]
    result = ExplorationResult(
        config=config,
        n_states=len(state.visited),
        n_transitions=state.transitions,
        elapsed_seconds=time.perf_counter() - start,
        violations=violations,
        deadlocks=state.deadlocks,
        completed=state.completed,
        max_frontier=max(len(level) for level in state.levels),
    )
    return ShardedExploration(
        result=result,
        jobs=jobs,
        n_levels=len(state.levels),
        violation_traces=traces,
        resumed_complete=resumed_complete,
    )
