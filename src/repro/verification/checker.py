"""Explicit-state model checker (breadth-first reachability + invariants).

This plays the role Murphi plays in the paper's Sec. 3.4: starting from the
initial state of a :class:`~repro.verification.model.CoherenceModel`, it
enumerates every reachable global state, checks the coherence invariants on
each, verifies absence of deadlock (every non-quiescent state has a successor),
and reports the state-space size and wall-clock time.  Fig. 8's experiment
sweeps core count and number of commutative-update types and plots exactly
these quantities.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.verification.invariants import InvariantViolation, check_invariants
from repro.verification.model import CoherenceModel, GlobalState, ModelConfig


@dataclass
class ExplorationResult:
    """Outcome of one exhaustive exploration."""

    config: ModelConfig
    n_states: int
    n_transitions: int
    elapsed_seconds: float
    violations: List[InvariantViolation] = field(default_factory=list)
    deadlocks: int = 0
    completed: bool = True
    max_frontier: int = 0

    @property
    def verified(self) -> bool:
        """True if the exploration finished with no violations or deadlocks."""
        return self.completed and not self.violations and self.deadlocks == 0

    def summary(self) -> dict:
        return {
            "protocol": self.config.protocol,
            "n_cores": self.config.n_cores,
            "n_ops": self.config.n_ops,
            "states": self.n_states,
            "transitions": self.n_transitions,
            "time_s": self.elapsed_seconds,
            "verified": self.verified,
            "completed": self.completed,
        }

    def to_jsonable(self) -> dict:
        """Canonical-JSON-safe form, the unit shard results merge in.

        Serialize with ``sort_keys=True`` (every writer in this package uses
        :func:`repro.verification.encode.canonical_dumps`); the inverse is
        :meth:`from_jsonable`.
        """
        from repro.verification import encode

        return {
            "config": encode.config_to_jsonable(self.config),
            "n_states": self.n_states,
            "n_transitions": self.n_transitions,
            "elapsed_seconds": self.elapsed_seconds,
            "violations": [
                encode.violation_to_jsonable(violation)
                for violation in self.violations
            ],
            "deadlocks": self.deadlocks,
            "completed": self.completed,
            "max_frontier": self.max_frontier,
        }

    @classmethod
    def from_jsonable(cls, data: Mapping[str, object]) -> "ExplorationResult":
        """Rebuild a result from :meth:`to_jsonable` output."""
        from typing import Any, cast

        from repro.verification import encode

        raw = cast(Dict[str, Any], dict(data))
        return cls(
            config=encode.config_from_jsonable(raw["config"]),
            n_states=int(raw["n_states"]),
            n_transitions=int(raw["n_transitions"]),
            elapsed_seconds=float(raw["elapsed_seconds"]),
            violations=[
                encode.violation_from_jsonable(violation)
                for violation in raw["violations"]
            ],
            deadlocks=int(raw["deadlocks"]),
            completed=bool(raw["completed"]),
            max_frontier=int(raw["max_frontier"]),
        )


class ModelChecker:
    """Breadth-first explicit-state enumeration with invariant checking."""

    def __init__(
        self,
        config: ModelConfig,
        *,
        max_states: int = 2_000_000,
        check_deadlock: bool = True,
        stop_on_violation: bool = True,
        mutation: Optional[str] = None,
    ) -> None:
        self.config = config
        self.model = CoherenceModel(config, mutation=mutation)
        self.max_states = max_states
        self.check_deadlock = check_deadlock
        self.stop_on_violation = stop_on_violation

    def run(self) -> ExplorationResult:
        """Explore the reachable state space and return statistics."""
        start = time.perf_counter()
        initial = self.model.initial_state()
        visited: Dict[tuple, None] = {initial.key(): None}
        frontier = deque([initial])
        violations: List[InvariantViolation] = []
        transitions = 0
        deadlocks = 0
        completed = True
        max_frontier = 1

        while frontier:
            state = frontier.popleft()
            violations.extend(check_invariants(state, self.config))
            if violations and self.stop_on_violation:
                completed = False
                break

            successor_count = 0
            for _rule, successor in self.model.successors(state):
                transitions += 1
                successor_count += 1
                key = successor.key()
                if key not in visited:
                    visited[key] = None
                    frontier.append(successor)
            max_frontier = max(max_frontier, len(frontier))

            if self.check_deadlock and successor_count == 0 and not self._is_quiescent(state):
                deadlocks += 1

            if len(visited) > self.max_states:
                completed = False
                break

        elapsed = time.perf_counter() - start
        return ExplorationResult(
            config=self.config,
            n_states=len(visited),
            n_transitions=transitions,
            elapsed_seconds=elapsed,
            violations=violations,
            deadlocks=deadlocks,
            completed=completed,
            max_frontier=max_frontier,
        )

    @staticmethod
    def _is_quiescent(state: GlobalState) -> bool:
        """A state with no pending work: empty network and no transient states."""
        if state.network:
            return False
        if state.directory.state.is_busy:
            return False
        return all(cache.state.is_stable for cache in state.caches)


def verify_protocol(
    protocol: str,
    n_cores: int,
    n_ops: int = 1,
    *,
    max_states: int = 2_000_000,
    value_base: int = 2,
    mutation: Optional[str] = None,
) -> ExplorationResult:
    """Convenience wrapper used by experiments, examples, and tests."""
    config = ModelConfig(
        n_cores=n_cores, n_ops=n_ops, protocol=protocol, value_base=value_base
    )
    checker = ModelChecker(config, max_states=max_states, mutation=mutation)
    return checker.run()
