"""Protocol state inventories (Sec. 3.4 / Fig. 7).

The paper reports the number of stable and transient states of its full
MESI and MEUSI implementations for two- and three-level hierarchies, and
observes that the generalized non-exclusive state N lets MEUSI add only a
single transient state (NN) at the L1 over MESI.  This module records those
inventories as data so experiments and tests can reproduce the "implementation
and verification costs" discussion, and provides helpers that compute the
derived quantities the paper quotes (extra states per controller, directory
bits per line).

The inventories describe the paper's protocol implementations; the executable
model in :mod:`repro.verification.model` uses a reduced transient-state set
(a blocking directory) which is sufficient for the Fig. 8 style state-space
study but is not a state-for-state replica of the Fig. 7 controllers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class ControllerInventory:
    """State inventory of one cache/directory controller."""

    controller: str
    stable_states: Tuple[str, ...]
    transient_states: Tuple[str, ...]

    @property
    def n_stable(self) -> int:
        return len(self.stable_states)

    @property
    def n_transient(self) -> int:
        return len(self.transient_states)

    @property
    def n_total(self) -> int:
        return self.n_stable + self.n_transient


@dataclass(frozen=True)
class ProtocolInventory:
    """State inventories of every controller in one protocol implementation."""

    name: str
    levels: int
    controllers: Tuple[ControllerInventory, ...]

    def controller(self, name: str) -> ControllerInventory:
        for controller in self.controllers:
            if controller.controller == name:
                return controller
        raise KeyError(name)

    def total_states(self) -> int:
        return sum(controller.n_total for controller in self.controllers)


# Two-level MESI (Fig. 7a): 4 stable + 8 transient L1 states, 6 L2 states.
TWO_LEVEL_MESI = ProtocolInventory(
    name="MESI",
    levels=2,
    controllers=(
        ControllerInventory(
            controller="L1",
            stable_states=("I", "S", "E", "M"),
            transient_states=("IS", "ISI", "IM", "SM", "WB", "WBI", "xMI", "xMS"),
        ),
        ControllerInventory(
            controller="L2",
            stable_states=("I", "S", "M"),
            transient_states=("IS", "IM", "MI"),
        ),
    ),
)

# Two-level MEUSI with the generalized non-exclusive state N (Fig. 7b):
# 13 L1 states (one extra transient, NN) and 6 L2 states.
TWO_LEVEL_MEUSI = ProtocolInventory(
    name="MEUSI",
    levels=2,
    controllers=(
        ControllerInventory(
            controller="L1",
            stable_states=("I", "N", "E", "M"),
            transient_states=("IN", "xNI", "IM", "NM", "NN", "WB", "WBI", "xMI", "xMN"),
        ),
        ControllerInventory(
            controller="L2",
            stable_states=("I", "N", "M"),
            transient_states=("IN", "IM", "MI"),
        ),
    ),
)

# Three-level protocols (Sec. 3.4 text): MESI L1 has 14 states (4 stable,
# 10 transient), L2 has 38 (9 stable, 29 transient), L3 has 6 (3 stable,
# 3 transient); MEUSI adds one transient to the L1 (15) and five to the L2
# (43), and leaves the L3 unchanged.
THREE_LEVEL_MESI = ProtocolInventory(
    name="MESI",
    levels=3,
    controllers=(
        ControllerInventory(
            controller="L1",
            stable_states=("I", "S", "E", "M"),
            transient_states=tuple(f"T{i}" for i in range(10)),
        ),
        ControllerInventory(
            controller="L2",
            stable_states=tuple(f"S{i}" for i in range(9)),
            transient_states=tuple(f"T{i}" for i in range(29)),
        ),
        ControllerInventory(
            controller="L3",
            stable_states=("I", "S", "M"),
            transient_states=("IS", "IM", "MI"),
        ),
    ),
)

THREE_LEVEL_MEUSI = ProtocolInventory(
    name="MEUSI",
    levels=3,
    controllers=(
        ControllerInventory(
            controller="L1",
            stable_states=("I", "N", "E", "M"),
            transient_states=tuple(f"T{i}" for i in range(10)) + ("NN",),
        ),
        ControllerInventory(
            controller="L2",
            stable_states=tuple(f"S{i}" for i in range(9)),
            transient_states=tuple(f"T{i}" for i in range(29))
            + tuple(f"NN{i}" for i in range(5)),
        ),
        ControllerInventory(
            controller="L3",
            stable_states=("I", "N", "M"),
            transient_states=("IN", "IM", "MI"),
        ),
    ),
)


INVENTORIES: Dict[Tuple[str, int], ProtocolInventory] = {
    ("MESI", 2): TWO_LEVEL_MESI,
    ("MEUSI", 2): TWO_LEVEL_MEUSI,
    ("MESI", 3): THREE_LEVEL_MESI,
    ("MEUSI", 3): THREE_LEVEL_MEUSI,
}


def extra_states_over_mesi(levels: int) -> Dict[str, int]:
    """Number of extra states MEUSI adds over MESI, per controller."""
    mesi = INVENTORIES[("MESI", levels)]
    meusi = INVENTORIES[("MEUSI", levels)]
    extra: Dict[str, int] = {}
    for controller in meusi.controllers:
        extra[controller.controller] = (
            controller.n_total - mesi.controller(controller.controller).n_total
        )
    return extra


def directory_type_field_bits(n_ops: int) -> int:
    """Bits needed to encode read-only plus ``n_ops`` commutative-update types.

    The paper's implementation supports eight operation types and therefore
    adds four bits per line (Sec. 5.1).
    """
    if n_ops < 0:
        raise ValueError("n_ops must be non-negative")
    n_codes = n_ops + 1
    bits = 0
    while (1 << bits) < n_codes:
        bits += 1
    return max(1, bits)
