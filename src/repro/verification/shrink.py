"""Delta-debugging minimization of violation traces.

Every lane of the verification harness reports counterexamples through this
module: a raw violating trace (hundreds of random-walk steps, a BFS path, a
generated transaction stream) is shrunk to a 1-minimal reproduction before it
is written to a repro file.  The algorithm is Zeller's ``ddmin``: test ever
finer chunkings of the trace and their complements, keeping any candidate
that still reproduces the failure, until no single element can be removed.

Two properties matter more than speed and are pinned by tests:

* **Determinism** — given a deterministic predicate, the sequence of
  candidates tested (and therefore the result) is a pure function of the
  input trace.  No randomness, no wall-clock, no hash iteration.
* **Idempotence** — shrinking an already-minimal trace returns it unchanged:
  the final granularity pass tests exactly the single-element removals that
  1-minimality guarantees are non-failing.

For model traces the predicate is *replayability*: a candidate subsequence
fails iff replaying its rule names from the initial state — skipping any rule
that is not currently enabled — reaches an invariant violation.  Skip
semantics is what makes ``ddmin`` effective here (under strict replay nearly
every subsequence of a protocol trace is infeasible), and 1-minimality
guarantees every rule of a *minimal* trace actually fires.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.verification.invariants import InvariantViolation, check_invariants
from repro.verification.model import CoherenceModel, GlobalState

T = TypeVar("T")

#: Predicate over a candidate trace: True when the candidate still fails
#: (reproduces the violation).  Must be deterministic.
FailsFn = Callable[[Sequence[T]], bool]


def _chunks(items: List[T], n: int) -> List[List[T]]:
    """Split ``items`` into ``n`` contiguous chunks of near-equal length."""
    chunks: List[List[T]] = []
    length = len(items)
    start = 0
    for index in range(n):
        end = start + (length - start + (n - index) - 1) // (n - index)
        if end > start:
            chunks.append(items[start:end])
        start = end
    return chunks


def ddmin(trace: Sequence[T], fails: FailsFn[T]) -> List[T]:
    """Minimize ``trace`` to a 1-minimal failing subsequence.

    Raises ``ValueError`` when the input trace does not fail — a shrinker
    that silently "minimizes" a passing trace would mask a broken predicate.
    """
    current = list(trace)
    if not fails(current):
        raise ValueError("cannot shrink: the input trace does not reproduce the failure")
    granularity = 2
    while len(current) >= 2:
        chunks = _chunks(current, granularity)
        reduced = False
        for chunk in chunks:
            if fails(chunk):
                current = chunk
                granularity = 2
                reduced = True
                break
        if not reduced:
            for index in range(len(chunks)):
                complement = [
                    item
                    for chunk_index, chunk in enumerate(chunks)
                    if chunk_index != index
                    for item in chunk
                ]
                if complement and fails(complement):
                    current = complement
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current


def replay_model_trace(
    model: CoherenceModel, trace: Sequence[str]
) -> Optional[InvariantViolation]:
    """Replay rule names from the initial state; the violation reached, if any.

    A rule that is not enabled in the state the prefix reaches is *skipped*
    (not an error).  Skip semantics is what makes delta debugging effective
    on protocol traces: under strict replay, removing almost any early step
    derails every later rule name and the candidate becomes trivially
    infeasible, so nothing can be removed.  Under skip semantics a candidate
    stays meaningful, and 1-minimality guarantees the final trace contains no
    skipped (i.e. removable) step — every rule of a minimized trace fires.

    A violation reached mid-trace is returned immediately — a failing prefix
    still fails, which is what lets ``ddmin`` drop trailing steps.  When a
    rule name matches several enabled transitions, the first match in
    canonical successor order is taken, so replay is deterministic across
    processes.
    """
    state = model.initial_state()
    found = check_invariants(state, model.config)
    if found:
        return found[0]
    for rule in trace:
        next_state: Optional[GlobalState] = None
        for name, successor in model.ordered_successors(state):
            if name == rule:
                next_state = successor
                break
        if next_state is None:
            continue
        state = next_state
        found = check_invariants(state, model.config)
        if found:
            return found[0]
    return None


def shrink_model_trace(
    model: CoherenceModel, trace: Sequence[str]
) -> Tuple[List[str], InvariantViolation]:
    """Minimize a violating model trace; returns (minimal trace, violation)."""

    def fails(candidate: Sequence[str]) -> bool:
        return replay_model_trace(model, candidate) is not None

    minimal = ddmin(list(trace), fails)
    violation = replay_model_trace(model, minimal)
    assert violation is not None  # ddmin only returns failing candidates
    return minimal, violation
