"""Message-level coherence protocol model used for exhaustive verification.

The paper verifies MESI and MEUSI with Murphi, adopting the usual reductions:
a single 1-bit cache line, a handful of cores, self-eviction rules to model
limited capacity (Sec. 3.4).  This module defines an equivalent explicit-state
model in Python: a parametric transition system whose global states are

* one line state per private cache (stable or transient, plus the buffered
  delta when in update-only mode),
* the directory/LLC state (sharer set, owner, update-only operation type,
  authoritative value, a blocking-transaction record while the directory is
  collecting acks, writebacks, or partial updates, and an unblock counter
  while a grant is still travelling to its requester),
* the multiset of messages in flight on an unordered network, and
* a ghost variable holding the architecturally correct value of the line,
  updated whenever a core legitimately performs a write or commutative update.

Values are integers modulo a small base so the state space stays finite while
still detecting lost or duplicated updates.  The number of distinct
commutative-update operation types is a parameter, mirroring Fig. 8's sweep.

The directory blocks while a transaction is in flight and additionally waits
for an ``Unblock`` acknowledgment from the requester before serving the next
demand request for the line (the SGI-Origin-style busy/unblock discipline).
This keeps the per-cache transient-state set small — the model needs only
``IS_D``, ``IM_D``, and ``IU_W`` — while remaining a legal, race-free
implementation; the paper's Fig. 7 controllers instead resolve the same races
with additional L1 transient states (ISI, WBI, xMI, ...), whose inventory is
recorded in :mod:`repro.verification.inventory`.

The :mod:`repro.verification.checker` enumerates all reachable states of this
model and checks the coherence invariants from Sec. 3.3 on every one of them.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Mapping, Optional, Tuple


class CacheState(enum.Enum):
    """Private cache (L1) states: MESI stable states, U, and transients."""

    I = "I"  # noqa: E741 - the canonical protocol state name
    S = "S"
    E = "E"
    M = "M"
    U = "U"
    # Transient states: waiting for a response from the directory.
    IS_D = "IS_D"   # read miss, waiting for data
    IM_D = "IM_D"   # write miss/upgrade, waiting for data/ack
    IU_W = "IU_W"   # update-permission miss, waiting for grant
    # Eviction transients: waiting for the directory to acknowledge a Put.
    SI_A = "SI_A"
    MI_A = "MI_A"
    UI_A = "UI_A"

    @property
    def is_transient(self) -> bool:
        return self in (
            CacheState.IS_D,
            CacheState.IM_D,
            CacheState.IU_W,
            CacheState.SI_A,
            CacheState.MI_A,
            CacheState.UI_A,
        )

    @property
    def is_evicting(self) -> bool:
        return self in (CacheState.SI_A, CacheState.MI_A, CacheState.UI_A)

    @property
    def is_stable(self) -> bool:
        return not self.is_transient


class DirState(enum.Enum):
    """Directory (LLC) states, including blocking transient states."""

    UNCACHED = "Un"
    SHARED = "Sh"
    EXCLUSIVE = "Ex"
    UPDATE = "Up"
    # Blocking states: the directory has sent invalidations / reduce requests
    # and is waiting for all acks before completing the pending request.
    BUSY_INV = "BusyInv"
    BUSY_REDUCE = "BusyRed"
    BUSY_WB = "BusyWb"

    @property
    def is_busy(self) -> bool:
        return self in (DirState.BUSY_INV, DirState.BUSY_REDUCE, DirState.BUSY_WB)


class MsgType(enum.Enum):
    """Network message types."""

    # Core -> directory requests.
    GETS = "GetS"
    GETX = "GetX"
    GETU = "GetU"
    PUT_M = "PutM"
    PUT_S = "PutS"
    PUT_U = "PutU"
    # Directory -> core.
    DATA = "Data"          # payload: (value, grant_exclusive)
    GRANT_M = "GrantM"
    GRANT_U = "GrantU"
    INV = "Inv"
    REDUCE = "Reduce"
    PUT_ACK = "PutAck"     # directory acknowledges an eviction
    # Core -> directory responses.
    INV_ACK = "InvAck"
    DATA_WB = "DataWb"     # payload: value
    PARTIAL = "Partial"    # payload: (op, delta)
    UNBLOCK = "Unblock"    # requester confirms receipt of a grant


# A message is (type, src, dst, payload); cores are 0..n-1, the directory is -1.
Message = Tuple[MsgType, int, int, Tuple]
DIR = -1


@dataclass(frozen=True)
class CacheLine:
    """One private cache's view of the line."""

    state: CacheState = CacheState.I
    value: int = 0          # data value when in S/E/M; delta when in U
    op: Optional[int] = None  # commutative op id when in U / IU_W
    pending_op: Optional[int] = None  # op requested while in a transient state

    def as_tuple(self) -> Tuple:
        return (self.state.value, self.value, self.op, self.pending_op)


@dataclass(frozen=True)
class DirectoryLine:
    """The directory/LLC view of the line."""

    state: DirState = DirState.UNCACHED
    value: int = 0
    sharers: FrozenSet[int] = frozenset()
    owner: Optional[int] = None
    op: Optional[int] = None            # update-only op type
    pending: Optional[Tuple] = None     # (requestor, MsgType, op) while busy
    acks_needed: int = 0
    #: Grants sent whose Unblock has not yet arrived; demand requests stall.
    unblocks_pending: int = 0

    def as_tuple(self) -> Tuple:
        return (
            self.state.value,
            self.value,
            tuple(sorted(self.sharers)),
            self.owner,
            self.op,
            self.pending,
            self.acks_needed,
            self.unblocks_pending,
        )

    def replace(self, **kwargs) -> "DirectoryLine":
        """Return a copy with the given fields replaced."""
        fields = {
            "state": self.state,
            "value": self.value,
            "sharers": self.sharers,
            "owner": self.owner,
            "op": self.op,
            "pending": self.pending,
            "acks_needed": self.acks_needed,
            "unblocks_pending": self.unblocks_pending,
        }
        fields.update(kwargs)
        return DirectoryLine(**fields)


@dataclass(frozen=True)
class GlobalState:
    """A complete, hashable snapshot of the protocol model."""

    caches: Tuple[CacheLine, ...]
    directory: DirectoryLine
    network: Tuple[Message, ...]   # sorted tuple acting as a multiset
    ghost_value: int

    def key(self) -> Tuple:
        return (
            tuple(cache.as_tuple() for cache in self.caches),
            self.directory.as_tuple(),
            self.network,
            self.ghost_value,
        )


@dataclass(frozen=True)
class ModelConfig:
    """Parameters of the verification model."""

    n_cores: int = 2
    n_ops: int = 1
    protocol: str = "MEUSI"     # "MESI" disables U-state transitions
    value_base: int = 2         # values are integers modulo this base

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ValueError("n_cores must be >= 1")
        if self.n_ops < 1:
            raise ValueError("n_ops must be >= 1")
        if self.protocol.upper() not in ("MESI", "MEUSI", "MSI", "MUSI"):
            raise ValueError(f"unsupported protocol {self.protocol!r}")
        if self.value_base < 2:
            raise ValueError("value_base must be >= 2")

    @property
    def supports_update_state(self) -> bool:
        return self.protocol.upper() in ("MEUSI", "MUSI")


#: Deliberate single-transition model breakages, keyed by rule id.  These are
#: the verification harness's self-test (the analogue of ``REPRO_FAULT`` for
#: the campaign fabric): ``REPRO_VERIFY_MUTATE=<rule-id>`` switches exactly one
#: directory/cache transition to a subtly wrong variant, and the lane tests
#: prove every lane (exhaustive, swarm, differential) catches it and shrinks
#: it to a minimal counterexample.
MUTATIONS: Mapping[str, str] = {
    "dir.GetX.keep_sharers": (
        "GetX against a SHARED line grants exclusive data immediately without "
        "invalidating the remaining sharers (breaks single-writer)."
    ),
    "dir.PutU.drop_delta": (
        "PutU absorption discards the evicting cache's buffered delta instead "
        "of folding it into the directory value (loses commutative updates)."
    ),
    "core.local_update_in_u.drop_ghost": (
        "a local update in U advances the buffered delta but not the ghost "
        "value (the reduction will later apply an update that architecturally "
        "never happened)."
    ),
}


def mutation_from_env() -> Optional[str]:
    """The mutation requested via ``REPRO_VERIFY_MUTATE``, if any.

    Raises ``ValueError`` for an unknown rule id so a typo in a CI lane fails
    the run loudly instead of silently verifying an unmutated model.
    """
    value = os.environ.get("REPRO_VERIFY_MUTATE", "").strip()
    if not value:
        return None
    if value not in MUTATIONS:
        known = ", ".join(sorted(MUTATIONS))
        raise ValueError(
            f"REPRO_VERIFY_MUTATE={value!r} names no known mutation; "
            f"expected one of: {known}"
        )
    return value


class CoherenceModel:
    """Parametric MESI/MEUSI transition system over a single cache line.

    ``mutation`` (a :data:`MUTATIONS` rule id) deliberately breaks one
    transition; ``None`` is the faithful model.  Callers that want the
    environment knob pass ``mutation_from_env()`` explicitly.
    """

    def __init__(self, config: ModelConfig, *, mutation: Optional[str] = None) -> None:
        if mutation is not None and mutation not in MUTATIONS:
            known = ", ".join(sorted(MUTATIONS))
            raise ValueError(f"unknown mutation {mutation!r}; expected one of: {known}")
        self.config = config
        self.mutation = mutation

    # -- construction helpers --------------------------------------------------

    def initial_state(self) -> GlobalState:
        caches = tuple(CacheLine() for _ in range(self.config.n_cores))
        return GlobalState(
            caches=caches,
            directory=DirectoryLine(),
            network=(),
            ghost_value=0,
        )

    @staticmethod
    def _with_cache(state: GlobalState, core: int, line: CacheLine) -> GlobalState:
        caches = list(state.caches)
        caches[core] = line
        return GlobalState(tuple(caches), state.directory, state.network, state.ghost_value)

    @staticmethod
    def _with_dir(state: GlobalState, directory: DirectoryLine) -> GlobalState:
        return GlobalState(state.caches, directory, state.network, state.ghost_value)

    @staticmethod
    def _with_ghost(state: GlobalState, ghost: int) -> GlobalState:
        return GlobalState(state.caches, state.directory, state.network, ghost)

    @staticmethod
    def _send(state: GlobalState, *messages: Message) -> GlobalState:
        network = tuple(sorted(state.network + messages, key=repr))
        return GlobalState(state.caches, state.directory, network, state.ghost_value)

    @staticmethod
    def _consume(state: GlobalState, message: Message) -> GlobalState:
        network = list(state.network)
        network.remove(message)
        return GlobalState(state.caches, state.directory, tuple(network), state.ghost_value)

    def _mod(self, value: int) -> int:
        return value % self.config.value_base

    # -- successor generation ---------------------------------------------------

    def successors(self, state: GlobalState) -> Iterator[Tuple[str, GlobalState]]:
        """Yield (rule_name, next_state) for every enabled transition."""
        yield from self._core_request_rules(state)
        yield from self._core_local_op_rules(state)
        yield from self._eviction_rules(state)
        yield from self._message_delivery_rules(state)

    def ordered_successors(self, state: GlobalState) -> List[Tuple[str, GlobalState]]:
        """Successors in a canonical order, stable across processes and runs.

        Built-in ``hash`` is salted per process and enum hashing is id-based,
        so anything that must agree across shard workers — random walks,
        trace replay, frontier partitioning — draws successors through this
        sorted view instead of the raw generator.
        """
        return sorted(
            self.successors(state), key=lambda item: (item[0], repr(item[1].key()))
        )

    # Core-initiated requests ---------------------------------------------------

    def _core_request_rules(self, state: GlobalState) -> Iterator[Tuple[str, GlobalState]]:
        for core, line in enumerate(state.caches):
            if line.state is CacheState.I:
                next_state = self._with_cache(state, core, CacheLine(CacheState.IS_D))
                yield f"core{core}.read_miss", self._send(
                    next_state, (MsgType.GETS, core, DIR, ())
                )
                next_state = self._with_cache(state, core, CacheLine(CacheState.IM_D))
                yield f"core{core}.write_miss", self._send(
                    next_state, (MsgType.GETX, core, DIR, ())
                )
                if self.config.supports_update_state:
                    for op in range(self.config.n_ops):
                        next_state = self._with_cache(
                            state, core, CacheLine(CacheState.IU_W, 0, None, op)
                        )
                        yield f"core{core}.update_miss_op{op}", self._send(
                            next_state, (MsgType.GETU, core, DIR, (op,))
                        )
            elif line.state is CacheState.S:
                # Upgrade for write; reads hit locally (no state change).
                next_state = self._with_cache(state, core, CacheLine(CacheState.IM_D))
                yield f"core{core}.upgrade", self._send(
                    next_state, (MsgType.GETX, core, DIR, ())
                )
                if self.config.supports_update_state:
                    for op in range(self.config.n_ops):
                        next_state = self._with_cache(
                            state, core, CacheLine(CacheState.IU_W, 0, None, op)
                        )
                        yield f"core{core}.update_from_s_op{op}", self._send(
                            next_state, (MsgType.GETU, core, DIR, (op,))
                        )
            elif line.state is CacheState.U and self.config.supports_update_state:
                # An update of a *different* type requires a new request; the
                # buffered delta of the old type is surrendered when the
                # directory's Reduce message arrives (the cache keeps it in
                # the transient state until then).
                for op in range(self.config.n_ops):
                    if op == line.op:
                        continue
                    next_state = self._with_cache(
                        state,
                        core,
                        CacheLine(CacheState.IU_W, line.value, line.op, op),
                    )
                    yield f"core{core}.type_switch_op{op}", self._send(
                        next_state, (MsgType.GETU, core, DIR, (op,))
                    )

    # Local operations that need no protocol action -------------------------------

    def _core_local_op_rules(self, state: GlobalState) -> Iterator[Tuple[str, GlobalState]]:
        for core, line in enumerate(state.caches):
            if line.state in (CacheState.M, CacheState.E):
                # Write: bump the value (E silently upgrades to M).  The same
                # rule covers a commutative update performed on the owned copy.
                new_value = self._mod(state.ghost_value + 1)
                next_state = self._with_cache(state, core, CacheLine(CacheState.M, new_value))
                next_state = self._with_ghost(next_state, new_value)
                yield f"core{core}.local_write", next_state
            elif line.state is CacheState.U:
                # Commutative update of the line's current type: buffer +1.
                new_delta = self._mod(line.value + 1)
                next_state = self._with_cache(
                    state, core, CacheLine(CacheState.U, new_delta, line.op)
                )
                if self.mutation != "core.local_update_in_u.drop_ghost":
                    next_state = self._with_ghost(
                        next_state, self._mod(state.ghost_value + 1)
                    )
                yield f"core{core}.local_update_in_u", next_state

    # Self-evictions ----------------------------------------------------------------

    def _eviction_rules(self, state: GlobalState) -> Iterator[Tuple[str, GlobalState]]:
        for core, line in enumerate(state.caches):
            if line.state is CacheState.S:
                next_state = self._with_cache(state, core, CacheLine(CacheState.SI_A))
                yield f"core{core}.evict_s", self._send(
                    next_state, (MsgType.PUT_S, core, DIR, ())
                )
            elif line.state in (CacheState.M, CacheState.E):
                next_state = self._with_cache(state, core, CacheLine(CacheState.MI_A))
                yield f"core{core}.evict_m", self._send(
                    next_state, (MsgType.PUT_M, core, DIR, (line.value,))
                )
            elif line.state is CacheState.U:
                next_state = self._with_cache(state, core, CacheLine(CacheState.UI_A))
                yield f"core{core}.evict_u", self._send(
                    next_state, (MsgType.PUT_U, core, DIR, (line.op, line.value)),
                )

    # Message deliveries ---------------------------------------------------------------

    def _message_delivery_rules(self, state: GlobalState) -> Iterator[Tuple[str, GlobalState]]:
        # The network tuple is kept sorted by `_send`; dict.fromkeys dedups the
        # multiset while preserving that canonical order (a set would iterate
        # in salted hash order).
        for message in dict.fromkeys(state.network):
            if message[2] == DIR:
                yield from self._deliver_to_directory(state, message)
            else:
                yield from self._deliver_to_cache(state, message)

    # -- directory side ------------------------------------------------------------------

    def _deliver_to_directory(
        self, state: GlobalState, message: Message
    ) -> Iterator[Tuple[str, GlobalState]]:
        msg_type, src, _dst, payload = message
        directory = state.directory
        base = self._consume(state, message)
        rule = f"dir.{msg_type.value}.from{src}"

        # Acks, writebacks, partial updates, and unblocks are accepted always.
        if msg_type is MsgType.UNBLOCK:
            new_dir = directory.replace(
                unblocks_pending=max(0, directory.unblocks_pending - 1)
            )
            yield rule, self._with_dir(base, new_dir)
            return
        if msg_type is MsgType.INV_ACK:
            yield rule, self._dir_collect_ack(base, delta=None)
            return
        if msg_type is MsgType.DATA_WB:
            updated = self._with_dir(base, base.directory.replace(value=payload[0]))
            yield rule, self._dir_collect_ack(updated, delta=None)
            return
        if msg_type is MsgType.PARTIAL:
            delta = payload[1] if payload[0] is not None else 0
            yield rule, self._dir_collect_ack(base, delta=delta)
            return
        if msg_type is MsgType.PUT_S:
            yield rule, self._send(
                self._dir_handle_put_s(base, directory, src),
                (MsgType.PUT_ACK, DIR, src, ()),
            )
            return
        if msg_type is MsgType.PUT_M:
            yield rule, self._send(
                self._dir_handle_put_m(base, directory, src, payload[0]),
                (MsgType.PUT_ACK, DIR, src, ()),
            )
            return
        if msg_type is MsgType.PUT_U:
            yield rule, self._send(
                self._dir_handle_put_u(base, directory, src, payload[1]),
                (MsgType.PUT_ACK, DIR, src, ()),
            )
            return

        # Demand requests stall while the directory is busy or while a previous
        # grant has not been unblocked by its requester.  (Evictions cannot
        # race with a core's own requests: the eviction-ack transient states
        # keep a cache from issuing a new request until its Put is absorbed.)
        if directory.state.is_busy or directory.unblocks_pending > 0:
            return
        if msg_type is MsgType.GETS:
            yield rule, self._dir_handle_gets(base, directory, src)
        elif msg_type is MsgType.GETX:
            yield rule, self._dir_handle_getx(base, directory, src)
        elif msg_type is MsgType.GETU:
            yield rule, self._dir_handle_getu(base, directory, src, payload[0])

    def _dir_handle_put_s(
        self, state: GlobalState, directory: DirectoryLine, src: int
    ) -> GlobalState:
        if directory.state is DirState.SHARED:
            sharers = directory.sharers - {src}
            new_dir = directory.replace(
                state=DirState.SHARED if sharers else DirState.UNCACHED,
                sharers=sharers,
            )
            return self._with_dir(state, new_dir)
        # Late PutS racing with an invalidation: drop the sharer record; the
        # pending transaction's ack arrives separately from the Inv handler.
        return self._with_dir(state, directory.replace(sharers=directory.sharers - {src}))

    def _dir_handle_put_m(
        self, state: GlobalState, directory: DirectoryLine, src: int, value: int
    ) -> GlobalState:
        if directory.state is DirState.EXCLUSIVE and directory.owner == src:
            return self._with_dir(
                state,
                directory.replace(
                    state=DirState.UNCACHED, value=value, owner=None, sharers=frozenset()
                ),
            )
        # Late PutM racing with a fetch the directory already initiated: absorb
        # the dirty value; the Inv reaching the now-empty cache supplies the ack.
        return self._with_dir(state, directory.replace(value=value))

    def _dir_handle_put_u(
        self, state: GlobalState, directory: DirectoryLine, src: int, delta: int
    ) -> GlobalState:
        if self.mutation == "dir.PutU.drop_delta":
            value = directory.value
        else:
            value = self._mod(directory.value + delta)
        if directory.state is DirState.UPDATE:
            sharers = directory.sharers - {src}
            new_dir = DirectoryLine(
                state=DirState.UPDATE if sharers else DirState.UNCACHED,
                value=value,
                sharers=sharers,
                op=directory.op if sharers else None,
                unblocks_pending=directory.unblocks_pending,
            )
            return self._with_dir(state, new_dir)
        # Late PutU racing with a reduction the directory already started: fold
        # the delta.  The ack accounting is untouched — the Reduce message will
        # be answered once the evicting cache has drained to I.
        return self._with_dir(state, directory.replace(value=value))

    def _dir_handle_gets(
        self, state: GlobalState, directory: DirectoryLine, src: int
    ) -> GlobalState:
        if directory.state is DirState.UNCACHED:
            new_dir = DirectoryLine(
                state=DirState.EXCLUSIVE, value=directory.value, owner=src, unblocks_pending=1
            )
            next_state = self._with_dir(state, new_dir)
            return self._send(next_state, (MsgType.DATA, DIR, src, (directory.value, True)))
        if directory.state is DirState.SHARED:
            new_dir = directory.replace(
                sharers=directory.sharers | {src}, unblocks_pending=1
            )
            next_state = self._with_dir(state, new_dir)
            return self._send(next_state, (MsgType.DATA, DIR, src, (directory.value, False)))
        if directory.state is DirState.EXCLUSIVE:
            new_dir = directory.replace(
                state=DirState.BUSY_WB,
                pending=(src, MsgType.GETS.value, None),
                acks_needed=1,
            )
            next_state = self._with_dir(state, new_dir)
            return self._send(next_state, (MsgType.INV, DIR, directory.owner, ()))
        # UPDATE mode: full reduction before data can be returned.
        new_dir = directory.replace(
            state=DirState.BUSY_REDUCE,
            pending=(src, MsgType.GETS.value, None),
            acks_needed=len(directory.sharers),
            sharers=frozenset(),
        )
        next_state = self._with_dir(state, new_dir)
        messages = tuple(
            (MsgType.REDUCE, DIR, core, ()) for core in sorted(directory.sharers)
        )
        return self._send(next_state, *messages)

    def _dir_handle_getx(
        self, state: GlobalState, directory: DirectoryLine, src: int
    ) -> GlobalState:
        if directory.state is DirState.UNCACHED:
            new_dir = DirectoryLine(
                state=DirState.EXCLUSIVE, value=directory.value, owner=src, unblocks_pending=1
            )
            next_state = self._with_dir(state, new_dir)
            return self._send(next_state, (MsgType.DATA, DIR, src, (directory.value, True)))
        if directory.state is DirState.SHARED:
            others = directory.sharers - {src}
            if not others:
                new_dir = DirectoryLine(
                    state=DirState.EXCLUSIVE, value=directory.value, owner=src, unblocks_pending=1
                )
                next_state = self._with_dir(state, new_dir)
                return self._send(next_state, (MsgType.DATA, DIR, src, (directory.value, True)))
            if self.mutation == "dir.GetX.keep_sharers":
                # Broken on purpose: grant exclusive data while readers still
                # hold the line (the SWMR violation the lanes must catch).
                new_dir = DirectoryLine(
                    state=DirState.EXCLUSIVE,
                    value=directory.value,
                    sharers=others,
                    owner=src,
                    unblocks_pending=1,
                )
                next_state = self._with_dir(state, new_dir)
                return self._send(next_state, (MsgType.DATA, DIR, src, (directory.value, True)))
            new_dir = directory.replace(
                state=DirState.BUSY_INV,
                pending=(src, MsgType.GETX.value, None),
                acks_needed=len(others),
                sharers=frozenset(),
            )
            next_state = self._with_dir(state, new_dir)
            messages = tuple((MsgType.INV, DIR, core, ()) for core in sorted(others))
            return self._send(next_state, *messages)
        if directory.state is DirState.EXCLUSIVE:
            new_dir = directory.replace(
                state=DirState.BUSY_WB,
                pending=(src, MsgType.GETX.value, None),
                acks_needed=1,
            )
            next_state = self._with_dir(state, new_dir)
            return self._send(next_state, (MsgType.INV, DIR, directory.owner, ()))
        # UPDATE mode: reduce everything, then grant M.
        new_dir = directory.replace(
            state=DirState.BUSY_REDUCE,
            pending=(src, MsgType.GETX.value, None),
            acks_needed=len(directory.sharers),
            sharers=frozenset(),
        )
        next_state = self._with_dir(state, new_dir)
        messages = tuple(
            (MsgType.REDUCE, DIR, core, ()) for core in sorted(directory.sharers)
        )
        return self._send(next_state, *messages)

    def _dir_handle_getu(
        self, state: GlobalState, directory: DirectoryLine, src: int, op: int
    ) -> GlobalState:
        if directory.state is DirState.UNCACHED:
            # Unshared: grant exclusive directly (MEUSI's E-like optimisation).
            new_dir = DirectoryLine(
                state=DirState.EXCLUSIVE, value=directory.value, owner=src, unblocks_pending=1
            )
            next_state = self._with_dir(state, new_dir)
            return self._send(next_state, (MsgType.DATA, DIR, src, (directory.value, True)))
        if directory.state is DirState.SHARED:
            others = directory.sharers - {src}
            if not others:
                new_dir = DirectoryLine(
                    state=DirState.EXCLUSIVE, value=directory.value, owner=src, unblocks_pending=1
                )
                next_state = self._with_dir(state, new_dir)
                return self._send(next_state, (MsgType.DATA, DIR, src, (directory.value, True)))
            new_dir = directory.replace(
                state=DirState.BUSY_INV,
                pending=(src, MsgType.GETU.value, op),
                acks_needed=len(others),
                sharers=frozenset(),
            )
            next_state = self._with_dir(state, new_dir)
            messages = tuple((MsgType.INV, DIR, core, ()) for core in sorted(others))
            return self._send(next_state, *messages)
        if directory.state is DirState.EXCLUSIVE:
            # Fetch the owner's dirty copy; it drops to I and the requester is
            # granted update-only permission over the written-back value.
            new_dir = directory.replace(
                state=DirState.BUSY_WB,
                pending=(src, MsgType.GETU.value, op),
                acks_needed=1,
            )
            next_state = self._with_dir(state, new_dir)
            return self._send(next_state, (MsgType.INV, DIR, directory.owner, ()))
        # UPDATE mode.
        if directory.op == op:
            new_dir = directory.replace(
                sharers=directory.sharers | {src}, unblocks_pending=1
            )
            next_state = self._with_dir(state, new_dir)
            return self._send(next_state, (MsgType.GRANT_U, DIR, src, (op,)))
        # Different op type: reduce all current updaters first.
        new_dir = directory.replace(
            state=DirState.BUSY_REDUCE,
            pending=(src, MsgType.GETU.value, op),
            acks_needed=len(directory.sharers),
            sharers=frozenset(),
        )
        next_state = self._with_dir(state, new_dir)
        messages = tuple(
            (MsgType.REDUCE, DIR, core, ()) for core in sorted(directory.sharers)
        )
        return self._send(next_state, *messages)

    def _dir_collect_ack(self, state: GlobalState, *, delta: Optional[int]) -> GlobalState:
        """Fold one ack / partial update into a busy directory transaction."""
        directory = state.directory
        value = directory.value
        if delta:
            value = self._mod(value + delta)
        if not directory.state.is_busy:
            # A stale ack (e.g. a Reduce that found the cache already empty
            # after its PutU was absorbed): just fold the delta.
            return self._with_dir(state, directory.replace(value=value))
        acks = max(0, directory.acks_needed - 1)
        if acks > 0 or directory.pending is None:
            return self._with_dir(
                state, directory.replace(value=value, acks_needed=acks)
            )
        # Last ack: complete the pending request.
        requestor, request, req_op = directory.pending
        if request == MsgType.GETS.value:
            new_dir = DirectoryLine(
                state=DirState.SHARED,
                value=value,
                sharers=frozenset({requestor}),
                unblocks_pending=1,
            )
            next_state = self._with_dir(state, new_dir)
            return self._send(next_state, (MsgType.DATA, DIR, requestor, (value, False)))
        if request == MsgType.GETX.value:
            new_dir = DirectoryLine(
                state=DirState.EXCLUSIVE, value=value, owner=requestor, unblocks_pending=1
            )
            next_state = self._with_dir(state, new_dir)
            return self._send(next_state, (MsgType.DATA, DIR, requestor, (value, True)))
        # GETU completion: grant update-only with the requested op type.
        new_dir = DirectoryLine(
            state=DirState.UPDATE,
            value=value,
            sharers=frozenset({requestor}),
            op=req_op,
            unblocks_pending=1,
        )
        next_state = self._with_dir(state, new_dir)
        return self._send(next_state, (MsgType.GRANT_U, DIR, requestor, (req_op,)))

    # -- cache side ---------------------------------------------------------------------------

    def _deliver_to_cache(
        self, state: GlobalState, message: Message
    ) -> Iterator[Tuple[str, GlobalState]]:
        msg_type, _src, core, payload = message
        line = state.caches[core]
        base = self._consume(state, message)
        rule = f"core{core}.recv_{msg_type.value}"

        if msg_type is MsgType.DATA:
            value, exclusive = payload
            if line.state is CacheState.IS_D:
                new_state = CacheState.E if exclusive else CacheState.S
                next_state = self._with_cache(base, core, CacheLine(new_state, value))
                yield rule, self._send(next_state, (MsgType.UNBLOCK, core, DIR, ()))
            elif line.state is CacheState.IM_D:
                # Perform the pending write immediately upon receiving data.
                new_value = self._mod(base.ghost_value + 1)
                next_state = self._with_cache(base, core, CacheLine(CacheState.M, new_value))
                next_state = self._with_ghost(next_state, new_value)
                yield rule, self._send(next_state, (MsgType.UNBLOCK, core, DIR, ()))
            elif line.state is CacheState.IU_W:
                # GetU answered with exclusive data (line was unshared):
                # perform the update in place, in M.
                new_value = self._mod(base.ghost_value + 1)
                next_state = self._with_cache(base, core, CacheLine(CacheState.M, new_value))
                next_state = self._with_ghost(next_state, new_value)
                yield rule, self._send(next_state, (MsgType.UNBLOCK, core, DIR, ()))
            return
        if msg_type is MsgType.GRANT_M:
            if line.state is CacheState.IM_D:
                new_value = self._mod(base.ghost_value + 1)
                next_state = self._with_cache(base, core, CacheLine(CacheState.M, new_value))
                next_state = self._with_ghost(next_state, new_value)
                yield rule, self._send(next_state, (MsgType.UNBLOCK, core, DIR, ()))
            return
        if msg_type is MsgType.GRANT_U:
            if line.state is CacheState.IU_W:
                op = payload[0]
                # The line enters U initialised to the identity element and the
                # pending commutative update is applied to the delta buffer.
                next_state = self._with_cache(
                    base, core, CacheLine(CacheState.U, self._mod(1), op)
                )
                next_state = self._with_ghost(next_state, self._mod(base.ghost_value + 1))
                yield rule, self._send(next_state, (MsgType.UNBLOCK, core, DIR, ()))
            return
        if msg_type is MsgType.PUT_ACK:
            if line.state.is_evicting:
                yield rule, self._with_cache(base, core, CacheLine())
            else:
                yield rule, base
            return
        if msg_type is MsgType.INV:
            if line.state.is_evicting:
                # The cache's Put (carrying its dirty value or delta) has not
                # been absorbed by the directory yet; the invalidation waits so
                # that its ack cannot complete the transaction with stale data.
                return
            if line.state in (CacheState.M, CacheState.E):
                next_state = self._with_cache(base, core, CacheLine())
                yield rule, self._send(next_state, (MsgType.DATA_WB, core, DIR, (line.value,)))
            elif line.state is CacheState.S:
                next_state = self._with_cache(base, core, CacheLine())
                yield rule, self._send(next_state, (MsgType.INV_ACK, core, DIR, ()))
            elif line.state is CacheState.U:
                next_state = self._with_cache(base, core, CacheLine())
                yield rule, self._send(
                    next_state, (MsgType.PARTIAL, core, DIR, (line.op, line.value))
                )
            else:
                # The copy was already surrendered (its Put has been absorbed,
                # since evicting states defer the Inv): plain ack.
                yield rule, self._send(base, (MsgType.INV_ACK, core, DIR, ()))
            return
        if msg_type is MsgType.REDUCE:
            if line.state.is_evicting:
                # As for Inv: wait until the PutU has been absorbed so the
                # buffered delta cannot be lost.
                return
            if line.state is CacheState.U:
                next_state = self._with_cache(base, core, CacheLine())
                yield rule, self._send(
                    next_state, (MsgType.PARTIAL, core, DIR, (line.op, line.value))
                )
            elif line.state is CacheState.IU_W and line.op is not None:
                # Type-switch race: surrender the buffered delta of the old
                # type; the new request remains outstanding.
                next_state = self._with_cache(
                    base, core, CacheLine(CacheState.IU_W, 0, None, line.pending_op)
                )
                yield rule, self._send(
                    next_state, (MsgType.PARTIAL, core, DIR, (line.op, line.value))
                )
            else:
                yield rule, self._send(base, (MsgType.PARTIAL, core, DIR, (None, 0)))
            return
