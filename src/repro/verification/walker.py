"""Randomized interleaving swarm over the protocol model.

Exhaustive BFS proves small configurations; the swarm lane trades proof for
reach.  Each walker performs a seeded random walk through the model's
transition system — picking uniformly among enabled transitions — and checks
the Sec. 3.3 invariants (single-writer, U-state commutativity via update
conservation, reduction linearizability via the read-value check, ghost-value
agreement) after *every* step.  A walk is deterministic per
``(config, seed, walker index)``: the only randomness is the walker's own
``random.Random`` stream, so any violation it finds is re-walkable and the
shrinker can minimize its trace offline.

Swarm diversity comes from per-walker enabled-rule subsets: walker 0 explores
the full rule alphabet, every other walker deterministically disables a
subset of the *optional* rule classes (evictions, upgrades, type switches).
Disabling, say, evictions concentrates a walker's steps on request/reduction
races that an unbiased walk reaches rarely; disabling writes pushes walks
deep into U-mode interleavings.  Message deliveries and at least one request
class are never all suppressed: when the filter would leave a state with no
enabled transition, the walker falls back to the full successor list so the
only terminal condition is a genuine model deadlock.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field
from typing import Callable, FrozenSet, List, Optional, Tuple

from repro.verification.invariants import InvariantViolation, check_invariants
from repro.verification.model import CoherenceModel, ModelConfig

#: Rule classes a walker may disable for diversity.  Deliveries (``recv``,
#: ``dir.*``) and the plain read/write/update misses stay always-on so a
#: filtered walk cannot wedge itself short of a genuine deadlock.
DISABLEABLE_CLASSES: Tuple[str, ...] = (
    "evict_s",
    "evict_m",
    "evict_u",
    "local_write",
    "local_update_in_u",
    "type_switch",
    "update_from_s",
    "upgrade",
)

_OP_SUFFIX = re.compile(r"_op\d+$")


def rule_class(rule_name: str) -> str:
    """The diversity class of a rule: core-id and op-id stripped.

    ``core3.update_miss_op1`` -> ``update_miss``; ``dir.GetS.from2`` ->
    ``dir.GetS``; ``core0.recv_Data`` -> ``recv``.
    """
    if rule_name.startswith("dir."):
        return "dir." + rule_name.split(".")[1]
    _, _, action = rule_name.partition(".")
    if action.startswith("recv_"):
        return "recv"
    return _OP_SUFFIX.sub("", action)


def walker_disabled_classes(seed: int, walker_index: int) -> FrozenSet[str]:
    """The rule classes walker ``walker_index`` of swarm ``seed`` disables.

    Walker 0 always explores the full alphabet; the rest flip an independent
    deterministic coin per disableable class.  Pure function of its inputs —
    the swarm composition is part of the reproducibility contract.
    """
    if walker_index == 0:
        return frozenset()
    rng = random.Random(seed * 1_000_003 + walker_index)
    return frozenset(
        name for name in DISABLEABLE_CLASSES if rng.random() < 0.5
    )


@dataclass
class WalkResult:
    """Outcome of one random walk."""

    config: ModelConfig
    seed: int
    walker_index: int
    steps: int
    trace: List[str] = field(default_factory=list)
    violation: Optional[InvariantViolation] = None
    deadlock: bool = False
    disabled_classes: Tuple[str, ...] = ()

    @property
    def failed(self) -> bool:
        return self.violation is not None or self.deadlock


@dataclass
class SwarmResult:
    """Outcome of a swarm of walks over one configuration."""

    config: ModelConfig
    seed: int
    walks: List[WalkResult] = field(default_factory=list)

    @property
    def total_steps(self) -> int:
        return sum(walk.steps for walk in self.walks)

    @property
    def first_failure(self) -> Optional[WalkResult]:
        for walk in self.walks:
            if walk.failed:
                return walk
        return None

    @property
    def verified(self) -> bool:
        """No walk failed.  (A pass is evidence, not proof — see module doc.)"""
        return self.first_failure is None

    def summary(self) -> dict:
        failure = self.first_failure
        return {
            "protocol": self.config.protocol,
            "n_cores": self.config.n_cores,
            "n_ops": self.config.n_ops,
            "seed": self.seed,
            "walkers": len(self.walks),
            "total_steps": self.total_steps,
            "verified": self.verified,
            "failed_walker": failure.walker_index if failure is not None else None,
        }


def random_walk(
    config: ModelConfig,
    seed: int,
    *,
    max_steps: int = 2_000,
    walker_index: int = 0,
    disabled_classes: Optional[FrozenSet[str]] = None,
    mutation: Optional[str] = None,
) -> WalkResult:
    """One seeded random walk; deterministic per ``(config, seed, index)``."""
    if disabled_classes is None:
        disabled_classes = walker_disabled_classes(seed, walker_index)
    model = CoherenceModel(config, mutation=mutation)
    rng = random.Random(seed * 1_000_003 + walker_index)
    state = model.initial_state()
    result = WalkResult(
        config=config,
        seed=seed,
        walker_index=walker_index,
        steps=0,
        disabled_classes=tuple(sorted(disabled_classes)),
    )
    violations = check_invariants(state, config)
    if violations:
        result.violation = violations[0]
        return result
    for step in range(max_steps):
        successors = model.ordered_successors(state)
        if not successors:
            result.deadlock = True
            return result
        eligible = [
            item for item in successors if rule_class(item[0]) not in disabled_classes
        ]
        if not eligible:
            eligible = successors
        rule, state = eligible[rng.randrange(len(eligible))]
        result.trace.append(rule)
        result.steps = step + 1
        violations = check_invariants(state, config)
        if violations:
            result.violation = violations[0]
            return result
    return result


def run_swarm(
    config: ModelConfig,
    *,
    n_walkers: int = 8,
    max_steps: int = 2_000,
    seed: int = 0,
    mutation: Optional[str] = None,
    stop_on_failure: bool = True,
    should_continue: Optional[Callable[[], bool]] = None,
) -> SwarmResult:
    """Run ``n_walkers`` diverse walks over ``config``.

    ``should_continue`` — an optional zero-argument callable polled before
    each walk — lets the CLI enforce a wall-clock budget without making the
    per-walk outcomes time-dependent: the budget only decides *how many*
    walks run, never what any individual walk does.
    """
    result = SwarmResult(config=config, seed=seed)
    for walker_index in range(n_walkers):
        if should_continue is not None and not should_continue():
            break
        walk = random_walk(
            config,
            seed,
            max_steps=max_steps,
            walker_index=walker_index,
            mutation=mutation,
        )
        result.walks.append(walk)
        if walk.failed and stop_on_failure:
            break
    return result
