"""Canonical serialization for verification states, violations, and repro files.

Everything the parallel harness ships across process boundaries — frontier
chunks to shard workers, journal checkpoints, counterexample repro files —
goes through this module, for one reason: the in-memory representations are
*not* canonical across processes.  Built-in ``hash`` is salted per process,
enum hashing is id-based, and dataclass reprs are an implementation detail.
The JSON forms here are pure lists/ints/strings serialized with
``sort_keys=True`` and compact separators, so two processes (or two runs)
encoding the same state produce byte-identical text, and a content digest of
that text is a legal cross-process partition key.

The repro-file format (``repro.verification/1``) carries one minimized
counterexample: the lane that found it, the model or stream configuration,
the mutation in force (if any), the minimized trace, and the violation it
reproduces.  A self-checksum makes tampering and truncation loud:
:func:`load_repro` raises :class:`ReproFileError` with a precise message
instead of replaying garbage.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.verification.invariants import InvariantViolation
from repro.verification.model import (
    CacheLine,
    CacheState,
    DirectoryLine,
    DirState,
    GlobalState,
    Message,
    ModelConfig,
    MsgType,
)

#: Schema tag written into every repro file; bump on wire-format changes.
REPRO_SCHEMA = "repro.verification/1"

#: Fields every repro file must carry (beyond the checksum added on write).
_REPRO_REQUIRED = ("schema", "lane", "kind", "config", "mutation", "trace", "violation")

#: Trace kinds a repro file may carry: a model rule-name trace replayed
#: against :class:`~repro.verification.model.CoherenceModel`, or a
#: differential transaction stream replayed against the live engines.
REPRO_KINDS = ("model-trace", "stream")


class ReproFileError(ValueError):
    """A repro file that cannot be trusted: truncated, corrupt, or alien."""


def canonical_dumps(obj: Any) -> str:
    """Canonical compact JSON: the only serialization this package uses."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


# -- model configuration ------------------------------------------------------


def config_to_jsonable(config: ModelConfig) -> Dict[str, Any]:
    return {
        "n_cores": config.n_cores,
        "n_ops": config.n_ops,
        "protocol": config.protocol,
        "value_base": config.value_base,
    }


def config_from_jsonable(data: Mapping[str, Any]) -> ModelConfig:
    return ModelConfig(
        n_cores=int(data["n_cores"]),
        n_ops=int(data["n_ops"]),
        protocol=str(data["protocol"]),
        value_base=int(data["value_base"]),
    )


# -- global states ------------------------------------------------------------


def state_to_jsonable(state: GlobalState) -> Dict[str, Any]:
    """A pure-JSON snapshot of one global model state (see roundtrip below)."""
    directory = state.directory
    return {
        "caches": [
            [line.state.value, line.value, line.op, line.pending_op]
            for line in state.caches
        ],
        "directory": [
            directory.state.value,
            directory.value,
            sorted(directory.sharers),
            directory.owner,
            directory.op,
            list(directory.pending) if directory.pending is not None else None,
            directory.acks_needed,
            directory.unblocks_pending,
        ],
        "ghost": state.ghost_value,
        "network": [
            [msg_type.value, src, dst, list(payload)]
            for msg_type, src, dst, payload in state.network
        ],
    }


def state_from_jsonable(data: Mapping[str, Any]) -> GlobalState:
    """Rebuild a :class:`GlobalState` from :func:`state_to_jsonable` output."""
    caches = tuple(
        CacheLine(
            state=CacheState(entry[0]),
            value=entry[1],
            op=entry[2],
            pending_op=entry[3],
        )
        for entry in data["caches"]
    )
    raw_dir = data["directory"]
    directory = DirectoryLine(
        state=DirState(raw_dir[0]),
        value=raw_dir[1],
        sharers=frozenset(raw_dir[2]),
        owner=raw_dir[3],
        op=raw_dir[4],
        pending=tuple(raw_dir[5]) if raw_dir[5] is not None else None,
        acks_needed=raw_dir[6],
        unblocks_pending=raw_dir[7],
    )
    messages: List[Message] = [
        (MsgType(entry[0]), entry[1], entry[2], tuple(entry[3]))
        for entry in data["network"]
    ]
    # `_send` keeps the network tuple sorted by repr; restore that invariant
    # so a roundtripped state compares equal to the original.
    network = tuple(sorted(messages, key=repr))
    return GlobalState(
        caches=caches,
        directory=directory,
        network=network,
        ghost_value=data["ghost"],
    )


def state_digest(state: GlobalState) -> int:
    """32-bit content digest of a state's canonical encoding.

    This — never built-in ``hash`` — is the frontier partition key: every
    process computes the same digest for the same state, so ``digest % jobs``
    is a stable shard assignment.
    """
    return zlib.crc32(canonical_dumps(state_to_jsonable(state)).encode("utf-8"))


# -- invariant violations -----------------------------------------------------


def violation_to_jsonable(violation: InvariantViolation) -> Dict[str, Any]:
    return {
        "invariant": violation.invariant,
        "detail": violation.detail,
        "state": state_to_jsonable(violation.state),
    }


def violation_from_jsonable(data: Mapping[str, Any]) -> InvariantViolation:
    return InvariantViolation(
        invariant=str(data["invariant"]),
        detail=str(data["detail"]),
        state=state_from_jsonable(data["state"]),
    )


# -- repro files --------------------------------------------------------------


def make_repro(
    *,
    lane: str,
    kind: str,
    config: Mapping[str, Any],
    trace: Sequence[Any],
    violation: Mapping[str, Any],
    mutation: Optional[str],
) -> Dict[str, Any]:
    """Assemble a repro document (checksum is added by :func:`write_repro`)."""
    if kind not in REPRO_KINDS:
        raise ValueError(f"unknown repro kind {kind!r}; expected one of {REPRO_KINDS}")
    return {
        "schema": REPRO_SCHEMA,
        "lane": lane,
        "kind": kind,
        "config": dict(config),
        "mutation": mutation,
        "trace": list(trace),
        "violation": dict(violation),
    }


def _body_checksum(body: Mapping[str, Any]) -> str:
    payload = canonical_dumps({k: v for k, v in sorted(body.items()) if k != "crc32"})
    return f"{zlib.crc32(payload.encode('utf-8')):08x}"


def write_repro(path: str, repro: Mapping[str, Any]) -> None:
    """Write one repro file: canonical JSON with a self-checksum."""
    missing = [field for field in _REPRO_REQUIRED if field not in repro]
    if missing:
        raise ValueError(f"repro document missing field(s): {', '.join(missing)}")
    document = dict(repro)
    document["crc32"] = _body_checksum(document)
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(canonical_dumps(document))
        handle.write("\n")


def load_repro(path: str) -> Dict[str, Any]:
    """Load and validate a repro file; :class:`ReproFileError` on any damage."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ReproFileError(f"{path}: cannot read repro file: {exc}") from exc
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReproFileError(
            f"{path}: not valid JSON (truncated or corrupt repro file): {exc}"
        ) from exc
    if not isinstance(document, dict):
        raise ReproFileError(f"{path}: repro file must hold a JSON object")
    if document.get("schema") != REPRO_SCHEMA:
        raise ReproFileError(
            f"{path}: schema {document.get('schema')!r} is not {REPRO_SCHEMA!r}"
        )
    missing = [field for field in _REPRO_REQUIRED if field not in document]
    if missing:
        raise ReproFileError(
            f"{path}: repro file missing field(s): {', '.join(missing)}"
        )
    if document.get("kind") not in REPRO_KINDS:
        raise ReproFileError(
            f"{path}: unknown trace kind {document.get('kind')!r}; "
            f"expected one of {REPRO_KINDS}"
        )
    recorded = document.get("crc32")
    expected = _body_checksum(document)
    if recorded != expected:
        raise ReproFileError(
            f"{path}: checksum mismatch (recorded {recorded!r}, content "
            f"{expected!r}) — the repro file was damaged after it was written"
        )
    return document
