"""Verification-at-scale CLI: ``python -m repro.verification <lane> ...``.

Subcommands map one-to-one onto the harness lanes:

* ``exhaustive`` — sharded breadth-first model checking
  (:mod:`repro.verification.parallel`) over a grid of configurations;
  ``--jobs`` shards each state space, ``--shard i/N`` slices the *grid*
  across CI machines, ``--journal``/``--resume`` checkpoint and recover.
* ``swarm`` — randomized interleaving walks (:mod:`repro.verification.walker`)
  under a wall-clock budget (``REPRO_VERIFY_SWARM_SECONDS`` or
  ``--seconds``); the budget bounds how many walks run, never what any
  single walk does, so every reported walk is re-runnable from its seed.
* ``differential`` — live-engine vs abstract-model cross-checks
  (:mod:`repro.verification.differential`) over seeded transaction streams.
* ``replay`` — re-execute a minimized counterexample repro file.  Exit
  status is the contract: 0 = the violation reproduces, 1 = it does not,
  2 = the file is corrupt/truncated/alien.
* ``smoke`` — the bounded CI lane: one exhaustive point, a short swarm, one
  differential point, and a mutation-is-caught self-test that injects
  ``dir.GetX.keep_sharers`` and asserts every lane reports a minimized,
  replayable counterexample.

Any violation found by any lane is delta-debugged to a 1-minimal trace and
written as a canonical-JSON repro file under ``--repro-dir``; the printed
path feeds straight into ``replay``.

``REPRO_VERIFY_MUTATE=<rule-id>`` (see
:data:`repro.verification.model.MUTATIONS`) injects a deliberate model
breakage into every lane — the harness's own fault-injection self-test.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Any, List, Optional, Sequence, Tuple

from repro.verification import encode
from repro.verification.model import MUTATIONS, ModelConfig, mutation_from_env

DEFAULT_REPRO_DIR = "results/verify-repros"


def _swarm_seconds_default() -> float:
    """The swarm lane's wall-clock budget from ``REPRO_VERIFY_SWARM_SECONDS``."""
    raw = os.environ.get("REPRO_VERIFY_SWARM_SECONDS", "30").strip()
    try:
        seconds = float(raw)
    except ValueError:
        return 30.0
    return seconds if seconds > 0 else 30.0


def _parse_shard(text: str) -> Tuple[int, int]:
    """Parse ``i/N`` grid slicing (0-based shard index)."""
    try:
        index_text, _, total_text = text.partition("/")
        index, total = int(index_text), int(total_text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"--shard wants i/N (e.g. 0/4), got {text!r}"
        ) from exc
    if total < 1 or not 0 <= index < total:
        raise argparse.ArgumentTypeError(
            f"--shard {text!r}: need 0 <= i < N with N >= 1"
        )
    return index, total


def _int_list(text: str) -> List[int]:
    return [int(item) for item in text.split(",") if item.strip()]


def _str_list(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _grid(
    protocols: Sequence[str], cores: Sequence[int], ops: Sequence[int]
) -> List[Tuple[str, int, int]]:
    return [
        (protocol, n_cores, n_ops)
        for protocol in protocols
        for n_cores in cores
        for n_ops in ops
    ]


def _slice_grid(grid: List[Any], shard: Optional[Tuple[int, int]]) -> List[Any]:
    if shard is None:
        return grid
    index, total = shard
    return grid[index::total]


def _repro_path(repro_dir: str, lane: str, tag: str) -> str:
    return os.path.join(repro_dir, f"repro-{lane}-{tag}.json")


def _write_model_repro(
    repro_dir: str,
    lane: str,
    tag: str,
    config: ModelConfig,
    trace: Sequence[str],
    mutation: Optional[str],
) -> str:
    """Shrink a violating model trace and write its repro file."""
    from repro.verification.model import CoherenceModel
    from repro.verification.shrink import shrink_model_trace

    model = CoherenceModel(config, mutation=mutation)
    minimal, violation = shrink_model_trace(model, trace)
    repro = encode.make_repro(
        lane=lane,
        kind="model-trace",
        config=encode.config_to_jsonable(config),
        trace=minimal,
        violation=encode.violation_to_jsonable(violation),
        mutation=mutation,
    )
    path = _repro_path(repro_dir, lane, tag)
    encode.write_repro(path, repro)
    return path


def _print(line: str) -> None:
    sys.stdout.write(line + "\n")


# -- exhaustive ----------------------------------------------------------------


def cmd_exhaustive(args: argparse.Namespace) -> int:
    from repro.experiments import faults
    from repro.verification.parallel import check_sharded

    mutation = args.mutate if args.mutate is not None else mutation_from_env()
    plan = faults.refresh_active_plan()
    grid = _slice_grid(
        _grid(args.protocol, args.cores, args.ops), args.shard
    )
    failed = 0
    for protocol, n_cores, n_ops in grid:
        config = ModelConfig(
            n_cores=n_cores,
            n_ops=n_ops,
            protocol=protocol,
            value_base=args.value_base,
        )
        journal_dir = None
        if args.journal is not None:
            journal_dir = os.path.join(
                args.journal, f"{protocol}-{n_cores}c-{n_ops}o"
            )
        exploration = check_sharded(
            config,
            jobs=args.jobs,
            mutation=mutation,
            max_states=args.max_states,
            journal_dir=journal_dir,
            resume=args.resume,
            torn_hook=plan.torn_hook() if plan else None,
        )
        result = exploration.result
        _print(
            f"exhaustive {protocol} cores={n_cores} ops={n_ops} "
            f"jobs={args.jobs}: states={result.n_states} "
            f"transitions={result.n_transitions} deadlocks={result.deadlocks} "
            f"levels={exploration.n_levels} verified={result.verified}"
        )
        if not result.verified:
            failed += 1
            for violation, trace in zip(
                result.violations, exploration.violation_traces
            ):
                _print(f"  violation: {violation.invariant}: {violation.detail}")
                path = _write_model_repro(
                    args.repro_dir,
                    "exhaustive",
                    f"{protocol}-{n_cores}c-{n_ops}o",
                    config,
                    trace,
                    mutation,
                )
                _print(f"  minimized repro: {path}")
                break  # one repro per configuration is plenty
    return 1 if failed else 0


# -- swarm ---------------------------------------------------------------------


def cmd_swarm(args: argparse.Namespace) -> int:
    from repro.verification.walker import run_swarm

    mutation = args.mutate if args.mutate is not None else mutation_from_env()
    seconds = args.seconds if args.seconds is not None else _swarm_seconds_default()
    deadline = time.monotonic() + seconds
    grid = _slice_grid(
        _grid(args.protocol, args.cores, args.ops), args.shard
    )
    failed = 0
    for protocol, n_cores, n_ops in grid:
        config = ModelConfig(
            n_cores=n_cores,
            n_ops=n_ops,
            protocol=protocol,
            value_base=args.value_base,
        )
        swarm = run_swarm(
            config,
            n_walkers=args.walkers,
            max_steps=args.max_steps,
            seed=args.seed,
            mutation=mutation,
            should_continue=lambda: time.monotonic() < deadline,
        )
        _print(
            f"swarm {protocol} cores={n_cores} ops={n_ops} seed={args.seed}: "
            f"walks={len(swarm.walks)} steps={swarm.total_steps} "
            f"verified={swarm.verified}"
        )
        failure = swarm.first_failure
        if failure is not None and failure.violation is not None:
            failed += 1
            _print(
                f"  walker {failure.walker_index} hit "
                f"{failure.violation.invariant} at step {failure.steps}"
            )
            path = _write_model_repro(
                args.repro_dir,
                "swarm",
                f"{protocol}-{n_cores}c-{n_ops}o-seed{args.seed}"
                f"-w{failure.walker_index}",
                config,
                failure.trace,
                mutation,
            )
            _print(f"  minimized repro: {path}")
        elif failure is not None and failure.deadlock:
            failed += 1
            _print(f"  walker {failure.walker_index} deadlocked")
    return 1 if failed else 0


# -- differential --------------------------------------------------------------


def cmd_differential(args: argparse.Namespace) -> int:
    from repro.verification.differential import (
        StreamConfig,
        run_differential,
        shrink_stream,
    )

    mutation = args.mutate if args.mutate is not None else mutation_from_env()
    points = _slice_grid(
        [
            (protocol, seed)
            for protocol in args.protocol
            for seed in range(args.seed, args.seed + args.points)
        ],
        args.shard,
    )
    failed = 0
    for protocol, seed in points:
        config = StreamConfig(
            protocol=protocol,
            n_cores=args.cores,
            n_addresses=args.addresses,
            length=args.length,
            seed=seed,
        )
        result = run_differential(config, mutation=mutation, live=not args.no_live)
        _print(
            f"differential {protocol} seed={seed} length={args.length}: "
            f"checks={','.join(result.checks)} verified={result.verified}"
        )
        if result.failure is None:
            continue
        failed += 1
        _print(f"  failure: {result.failure.reason}: {result.failure.detail}")
        if result.failure.reason.startswith("model-"):
            minimal, min_failure = shrink_stream(
                config, result.stream, mutation=mutation
            )
            repro = encode.make_repro(
                lane="differential",
                kind="stream",
                config=config.to_jsonable(),
                trace=minimal,
                violation=min_failure.to_jsonable(),
                mutation=mutation,
            )
            path = _repro_path(
                args.repro_dir, "differential", f"{protocol}-seed{seed}"
            )
            encode.write_repro(path, repro)
            _print(f"  minimized repro: {path}")
    return 1 if failed else 0


# -- replay --------------------------------------------------------------------


def cmd_replay(args: argparse.Namespace) -> int:
    from repro.verification.differential import StreamConfig, replay_stream_model
    from repro.verification.model import CoherenceModel
    from repro.verification.shrink import replay_model_trace

    try:
        repro = encode.load_repro(args.file)
    except encode.ReproFileError as exc:
        _print(f"replay: corrupt repro file: {exc}")
        return 2
    mutation = repro["mutation"]
    if repro["kind"] == "model-trace":
        config = encode.config_from_jsonable(repro["config"])
        model = CoherenceModel(config, mutation=mutation)
        violation = replay_model_trace(model, repro["trace"])
        if violation is not None:
            _print(
                f"replay: reproduces {violation.invariant} in "
                f"{len(repro['trace'])} step(s): {violation.detail}"
            )
            return 0
    else:  # kind == "stream" (load_repro validated the kind)
        stream_config = StreamConfig.from_jsonable(repro["config"])
        failure = replay_stream_model(
            stream_config, repro["trace"], mutation=mutation
        )
        if failure is not None:
            _print(
                f"replay: reproduces {failure.reason} in "
                f"{len(repro['trace'])} transaction(s): {failure.detail}"
            )
            return 0
    _print("replay: trace did NOT reproduce the recorded violation")
    return 1


# -- smoke ---------------------------------------------------------------------


def cmd_smoke(args: argparse.Namespace) -> int:
    """Bounded CI lane; every failure is fatal (exit 1)."""
    from repro.verification.differential import StreamConfig, run_differential
    from repro.verification.model import CoherenceModel
    from repro.verification.parallel import check_sharded
    from repro.verification.shrink import replay_model_trace
    from repro.verification.walker import run_swarm

    ok = True
    config = ModelConfig(n_cores=2, n_ops=1, protocol="MEUSI", value_base=2)

    exploration = check_sharded(config, jobs=args.jobs, max_states=200_000)
    _print(
        f"smoke exhaustive: states={exploration.result.n_states} "
        f"verified={exploration.result.verified}"
    )
    ok = ok and exploration.result.verified

    deadline = time.monotonic() + _swarm_seconds_default()
    swarm = run_swarm(
        ModelConfig(n_cores=2, n_ops=2, protocol="MEUSI", value_base=2),
        n_walkers=8,
        max_steps=600,
        seed=0,
        should_continue=lambda: time.monotonic() < deadline,
    )
    _print(
        f"smoke swarm: walks={len(swarm.walks)} steps={swarm.total_steps} "
        f"verified={swarm.verified}"
    )
    ok = ok and swarm.verified

    differential = run_differential(StreamConfig(protocol="MEUSI", seed=0))
    _print(
        f"smoke differential: checks={','.join(differential.checks)} "
        f"verified={differential.verified}"
    )
    ok = ok and differential.verified

    # Mutation self-test: the harness must CATCH a broken model, and the
    # minimized counterexample must replay.
    mutation = "dir.GetX.keep_sharers"
    mutated = check_sharded(config, jobs=1, mutation=mutation)
    caught = not mutated.result.verified and bool(mutated.violation_traces)
    replays = False
    if caught:
        path = _write_model_repro(
            args.repro_dir, "smoke", "mutation-self-test", config,
            mutated.violation_traces[0], mutation,
        )
        repro = encode.load_repro(path)
        model = CoherenceModel(config, mutation=mutation)
        replays = replay_model_trace(model, repro["trace"]) is not None
        _print(
            f"smoke mutation self-test: caught={caught} "
            f"minimal_steps={len(repro['trace'])} replays={replays} ({path})"
        )
    else:
        _print("smoke mutation self-test: NOT caught — harness is broken")
    ok = ok and caught and replays
    return 0 if ok else 1


# -- argument plumbing ---------------------------------------------------------


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--repro-dir",
        default=DEFAULT_REPRO_DIR,
        help="directory for minimized counterexample repro files",
    )
    parser.add_argument(
        "--mutate",
        default=None,
        choices=sorted(MUTATIONS),
        help="inject a model mutation (overrides REPRO_VERIFY_MUTATE)",
    )
    parser.add_argument(
        "--shard",
        type=_parse_shard,
        default=None,
        metavar="i/N",
        help="run only slice i of N of the configuration grid",
    )


def _add_model_grid(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--protocol", type=_str_list, default=["MEUSI"])
    parser.add_argument("--cores", type=_int_list, default=[2])
    parser.add_argument("--ops", type=_int_list, default=[1])
    parser.add_argument("--value-base", type=int, default=2)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verification",
        description="Verification at scale: sharded exhaustive checking, "
        "interleaving swarms, differential cross-checks, and counterexample "
        "replay.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exhaustive = sub.add_parser("exhaustive", help="sharded BFS model checking")
    _add_model_grid(exhaustive)
    _add_common(exhaustive)
    exhaustive.add_argument("--jobs", type=int, default=1)
    exhaustive.add_argument("--max-states", type=int, default=2_000_000)
    exhaustive.add_argument(
        "--journal", default=None, help="checkpoint journal root directory"
    )
    exhaustive.add_argument(
        "--resume", action="store_true", help="fold an existing journal first"
    )
    exhaustive.set_defaults(fn=cmd_exhaustive)

    swarm = sub.add_parser("swarm", help="randomized interleaving swarm")
    _add_model_grid(swarm)
    _add_common(swarm)
    swarm.add_argument("--walkers", type=int, default=8)
    swarm.add_argument("--max-steps", type=int, default=2_000)
    swarm.add_argument("--seed", type=int, default=0)
    swarm.add_argument(
        "--seconds",
        type=float,
        default=None,
        help="wall-clock budget (default: REPRO_VERIFY_SWARM_SECONDS)",
    )
    swarm.set_defaults(fn=cmd_swarm)

    differential = sub.add_parser(
        "differential", help="live engines vs abstract model"
    )
    _add_common(differential)
    differential.add_argument(
        "--protocol", type=_str_list, default=["MESI", "MEUSI", "RMO"]
    )
    differential.add_argument("--cores", type=int, default=2)
    differential.add_argument("--addresses", type=int, default=2)
    differential.add_argument("--length", type=int, default=48)
    differential.add_argument("--seed", type=int, default=0)
    differential.add_argument(
        "--points", type=int, default=1, help="seeds per protocol"
    )
    differential.add_argument(
        "--no-live",
        action="store_true",
        help="model side only (skip engine runs)",
    )
    differential.set_defaults(fn=cmd_differential)

    replay = sub.add_parser("replay", help="re-execute a repro file")
    replay.add_argument("file")
    replay.set_defaults(fn=cmd_replay)

    smoke = sub.add_parser("smoke", help="bounded CI verification lane")
    smoke.add_argument("--jobs", type=int, default=2)
    smoke.add_argument("--repro-dir", default=DEFAULT_REPRO_DIR)
    smoke.set_defaults(fn=cmd_smoke)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    fn: Any = args.fn
    result: int = fn(args)
    return result


if __name__ == "__main__":
    sys.exit(main())
