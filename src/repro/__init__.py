"""COUP reproduction: commutativity-aware cache coherence.

This package reproduces the system described in "Exploiting Commutativity to
Reduce the Cost of Updates to Shared Data in Cache-Coherent Systems"
(MICRO 2015): the MEUSI coherence protocol with update-only permission,
a trace-driven multicore memory-hierarchy simulator, the paper's workloads
and software baselines, a protocol verification substrate, and the experiment
harness that regenerates every table and figure of the evaluation.

Quick start::

    from repro import table1_config, simulate
    from repro.workloads import HistogramWorkload

    config = table1_config(n_cores=16)
    workload = HistogramWorkload(n_bins=512, n_items=20_000).generate(config.n_cores)
    mesi = simulate(workload, config, protocol="MESI")
    coup = simulate(workload, config, protocol="COUP")
    print(coup.speedup_over(mesi))
"""

from repro.core.commutative import CommutativeOp, DeltaBuffer
from repro.core.mesi import MesiProtocol
from repro.core.meusi import MeusiProtocol
from repro.core.rmo import RmoProtocol
from repro.core.states import LineMode, RequestType, StableState
from repro.sim.access import AccessType, MemoryAccess, WorkloadTrace
from repro.sim.config import (
    CacheConfig,
    ReductionUnitConfig,
    SystemConfig,
    small_test_config,
    table1_config,
)
from repro.sim.simulator import MulticoreSimulator, compare_protocols, make_protocol, simulate
from repro.sim.stats import SimulationResult

__version__ = "1.0.0"

__all__ = [
    "AccessType",
    "CacheConfig",
    "CommutativeOp",
    "DeltaBuffer",
    "LineMode",
    "MemoryAccess",
    "MesiProtocol",
    "MeusiProtocol",
    "MulticoreSimulator",
    "ReductionUnitConfig",
    "RequestType",
    "RmoProtocol",
    "SimulationResult",
    "StableState",
    "SystemConfig",
    "WorkloadTrace",
    "compare_protocols",
    "make_protocol",
    "simulate",
    "small_test_config",
    "table1_config",
]
