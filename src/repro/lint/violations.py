"""Finding record shared by every rule and the engine itself."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Violation:
    """One finding: a contract violation at a specific source location."""

    #: Project-relative POSIX path of the offending file.
    path: str
    #: 1-indexed source line the finding anchors to.
    line: int
    #: 0-indexed column offset.
    col: int
    #: Per-rule code (``D101`` ... ``X103``).
    code: str
    #: Stable human-readable slug for the rule (``unseeded-rng``).
    symbol: str
    #: One-sentence description of the specific violation.
    message: str

    def render(self) -> str:
        """The one-line ``path:line:col: CODE[symbol] message`` form."""
        return f"{self.path}:{self.line}:{self.col}: {self.code}[{self.symbol}] {self.message}"

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)


def to_jsonable(violation: Violation) -> dict:
    """JSON-serializable form of a violation (stable key order)."""
    return {
        "path": violation.path,
        "line": violation.line,
        "col": violation.col,
        "code": violation.code,
        "symbol": violation.symbol,
        "message": violation.message,
    }
