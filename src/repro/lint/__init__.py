"""repro-lint: AST-based determinism & protocol-contract checker.

The reproduction's headline guarantees — golden fingerprints, sweep-cache
reuse, ``--jobs N`` determinism, kernel/scalar bit-identity — all rest on
informal source discipline: seeded RNG threading, canonical serialization
order, heap tie-breaks, slotted hot-path objects.  This package enforces
those contracts mechanically, at commit time, as the always-on static
complement to the dynamic model checker in :mod:`repro.verification`.

Usage::

    python -m repro.lint                 # lint src/repro against the budget
    python -m repro.lint path/to/file.py # lint specific files or directories
    python -m repro.lint --list-rules    # rule catalogue
    python -m repro.lint --format json   # machine-readable findings

Rules carry per-rule codes (``D1xx`` determinism, ``P2xx`` protocol
contracts, ``H3xx`` hot-path hygiene, ``X1xx`` engine meta-findings).  A
finding may be waived inline with an audited suppression comment::

    expr  # repro-lint: disable=D103(documented kernel bail heuristic)

The reason is mandatory, unused suppressions are themselves findings
(``X102``), and every suppression in the tree must be declared in the
tracked budget file (``lint-budget.json``) or the run fails (``X103``) —
so the waiver surface is reviewed like code.
"""

from __future__ import annotations

from repro.lint.engine import LintReport, lint_paths, load_source_module
from repro.lint.rules import all_rules, rule_catalogue
from repro.lint.violations import Violation

__all__ = [
    "LintReport",
    "Violation",
    "all_rules",
    "lint_paths",
    "load_source_module",
    "rule_catalogue",
]
