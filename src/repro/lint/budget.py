"""The audited suppression budget.

``lint-budget.json`` at the project root declares every inline suppression
the tree is allowed to carry, as ``{path, code, count}`` entries.  The
engine compares the budget against the suppressions *actually present and
used* in the linted tree, in both directions:

* a used suppression with no budget entry (or above its count) is a new,
  unreviewed waiver -> ``X103``;
* a budget entry above the real count is stale -> ``X103``.

So growing or shrinking the waiver surface always shows up as a diff to a
tracked file that reviewers see, and the meta-test in
``tests/lint/test_budget.py`` pins the two in lockstep.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Tuple

from repro.lint.engine import LintReport
from repro.lint.violations import Violation

#: Default budget file name, looked up at the project root.
BUDGET_FILENAME = "lint-budget.json"


def load(path: str) -> Dict[Tuple[str, str], int]:
    """Load the budget as a ``(path, code) -> count`` mapping."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    entries = data.get("suppressions", [])
    budget: Dict[Tuple[str, str], int] = {}
    for entry in entries:
        key = (entry["path"], entry["code"])
        budget[key] = budget.get(key, 0) + int(entry.get("count", 1))
    return budget


def dump(budget: Dict[Tuple[str, str], int], path: str) -> None:
    """Write a budget mapping in the canonical (sorted) file form."""
    entries = [
        {"path": file_path, "code": code, "count": count}
        for (file_path, code), count in sorted(budget.items())
    ]
    payload = {
        "_comment": (
            "Audited repro-lint suppression budget: every inline "
            "'# repro-lint: disable=...' in the tree must be declared here. "
            "Regenerate with: python -m repro.lint --write-budget"
        ),
        "suppressions": entries,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def audit(budget_path: str, report: LintReport, root: str) -> List[Violation]:
    """Compare the report's used suppressions against the budget file."""
    budget = load(budget_path)
    actual = report.used_suppression_counts()
    budget_rel = os.path.relpath(os.path.abspath(budget_path), root).replace(
        os.sep, "/"
    )
    violations: List[Violation] = []
    linted = set(report.files)

    for (path, code), count in sorted(actual.items()):
        allowed = budget.get((path, code), 0)
        if count > allowed:
            violations.append(
                Violation(
                    path=path,
                    line=1,
                    col=0,
                    code="X103",
                    symbol="budget-mismatch",
                    message=(
                        f"{count} used suppression(s) of {code} but the budget "
                        f"allows {allowed} — update {budget_rel} if reviewed"
                    ),
                )
            )
    for (path, code), allowed in sorted(budget.items()):
        if path not in linted:
            # Budget entries for files outside this run are not auditable
            # here; the full-tree run (CI / the meta-test) covers them.
            continue
        count = actual.get((path, code), 0)
        if count < allowed:
            violations.append(
                Violation(
                    path=budget_rel,
                    line=1,
                    col=0,
                    code="X103",
                    symbol="budget-mismatch",
                    message=(
                        f"stale budget entry: {path} allows {allowed} "
                        f"suppression(s) of {code} but only {count} are used"
                    ),
                )
            )
    return violations
