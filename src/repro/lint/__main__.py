"""``python -m repro.lint`` — the repro-lint command line.

Exit codes: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.lint import budget as budget_mod
from repro.lint.engine import (
    apply_suppressions,
    discover_files,
    load_source_module,
    run_rules,
)
from repro.lint.context import ProjectContext
from repro.lint.rules import all_rules, rule_catalogue
from repro.lint.violations import Violation, to_jsonable


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint", description=__doc__
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--project-root",
        default=None,
        metavar="DIR",
        help="project root for relative paths, README and the budget "
        "(default: current directory)",
    )
    parser.add_argument(
        "--budget",
        default=None,
        metavar="FILE",
        help=f"suppression budget file (default: <root>/{budget_mod.BUDGET_FILENAME} "
        "when it exists)",
    )
    parser.add_argument(
        "--no-budget",
        action="store_true",
        help="skip the suppression-budget audit",
    )
    parser.add_argument(
        "--write-budget",
        action="store_true",
        help="rewrite the budget file from the suppressions actually used "
        "(for reviewed waiver changes), then audit against it",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for entry in rule_catalogue():
            print(f"{entry['code']}[{entry['symbol']}]  {entry['description']}")
        return 0

    root = os.path.abspath(args.project_root or os.getcwd())
    ctx = ProjectContext(root)
    paths = args.paths or [os.path.join(root, "src", "repro")]
    files = discover_files(paths, ctx)
    if not files:
        print("repro-lint: no Python files found", file=sys.stderr)
        return 2

    rules = all_rules()
    modules = [load_source_module(full, rel) for full, rel in files]
    raw, _classdb = run_rules(modules, rules, ctx)
    report = apply_suppressions(modules, raw, rules)

    budget_path = args.budget or os.path.join(root, budget_mod.BUDGET_FILENAME)
    if args.write_budget:
        budget_mod.dump(report.used_suppression_counts(), budget_path)
    if not args.no_budget and os.path.exists(budget_path):
        report.violations.extend(budget_mod.audit(budget_path, report, root=root))
        report.violations.sort(key=Violation.sort_key)

    if args.format == "json":
        payload = {
            "files": len(report.files),
            "violations": [to_jsonable(v) for v in report.violations],
            "suppressed": len(report.suppressed),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for violation in report.violations:
            print(violation.render())
        summary = (
            f"repro-lint: {len(report.files)} file(s), "
            f"{len(report.violations)} finding(s), "
            f"{len(report.suppressed)} suppressed"
        )
        print(summary, file=sys.stderr)
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
