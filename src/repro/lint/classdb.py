"""Cross-module class database for the hot-path hygiene rules.

``H302`` (no attribute creation outside ``__init__``) must know every
attribute a class *declares* — including attributes declared by base
classes in other modules (``MesiProtocol`` extends ``CoherenceProtocol``
across files).  This module builds a small symbol table from the parsed
ASTs of every file in the lint run: per class, its declared attribute
names, base-class references (resolved through the module's imports), and
slots/dataclass facts for ``H301``.

Bases that cannot be resolved inside the run are split into two groups:
*opaque-but-known* bases (``object``, ``abc.ABC``, ``Exception``, enums,
``Protocol`` …) contribute no attributes and keep the class checkable;
anything else unresolvable makes the class exempt from H302 (we cannot
prove an assignment creates a new attribute).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Base names that are well-known attribute-free (for our purposes) roots.
OPAQUE_BASES: frozenset = frozenset(
    {
        "object",
        "ABC",
        "abc.ABC",
        "Exception",
        "ValueError",
        "RuntimeError",
        "KeyError",
        "TypeError",
        "Enum",
        "enum.Enum",
        "IntEnum",
        "enum.IntEnum",
        "Protocol",
        "typing.Protocol",
        "Generic",
        "typing.Generic",
        "NamedTuple",
        "typing.NamedTuple",
    }
)


@dataclass(slots=True)
class ClassInfo:
    """Statically-derived facts about one class definition."""

    module: str
    name: str
    lineno: int
    #: Base references as written (dotted where attribute access is used).
    bases: List[str] = field(default_factory=list)
    #: Attribute names declared by this class alone (slots, class-level
    #: assignments / annotations, and ``self.X`` in ``__init__`` family).
    declared: Set[str] = field(default_factory=set)
    #: ``self.X = ...`` assignments outside the init family: (attr, line).
    late_assignments: List[Tuple[str, int]] = field(default_factory=list)
    has_slots: bool = False
    is_dataclass: bool = False
    dataclass_slots: bool = False
    is_enum: bool = False
    is_exception: bool = False
    is_protocol_or_abc: bool = False
    is_namedtuple: bool = False


#: Methods whose ``self.X = ...`` assignments count as declarations.
INIT_METHODS = frozenset({"__init__", "__post_init__", "__new__", "__init_subclass__"})


def _dotted(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for Name/Attribute chains; None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _self_attr_targets(node: ast.stmt, self_name: str) -> List[Tuple[str, int]]:
    """``self.X`` attribute names assigned by one statement."""
    found: List[Tuple[str, int]] = []
    targets: List[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        targets = [node.target]
    for target in targets:
        for leaf in _flatten_targets(target):
            if (
                isinstance(leaf, ast.Attribute)
                and isinstance(leaf.value, ast.Name)
                and leaf.value.id == self_name
            ):
                found.append((leaf.attr, leaf.lineno))
    return found


def _flatten_targets(target: ast.expr) -> List[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        flat: List[ast.expr] = []
        for element in target.elts:
            flat.extend(_flatten_targets(element))
        return flat
    if isinstance(target, ast.Starred):
        return _flatten_targets(target.value)
    return [target]


def _slot_names(value: ast.expr) -> Set[str]:
    names: Set[str] = set()
    if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
        for element in value.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                names.add(element.value)
    elif isinstance(value, ast.Constant) and isinstance(value.value, str):
        names.add(value.value)
    return names


def class_info(node: ast.ClassDef, module: str) -> ClassInfo:
    """Extract :class:`ClassInfo` from one ``ClassDef``."""
    info = ClassInfo(module=module, name=node.name, lineno=node.lineno)
    for base in node.bases:
        ref = _dotted(base)
        if ref is not None:
            info.bases.append(ref)
            tail = ref.rsplit(".", 1)[-1]
            if tail.endswith(("Enum", "Flag")):
                info.is_enum = True
            if tail.endswith(("Exception", "Error", "Warning")) or tail in (
                "BaseException",
            ):
                info.is_exception = True
            if tail in ("Protocol", "ABC"):
                info.is_protocol_or_abc = True
            if tail == "NamedTuple":
                info.is_namedtuple = True
        else:
            info.bases.append("<expr>")
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        ref = _dotted(target) or ""
        if ref.rsplit(".", 1)[-1] == "dataclass":
            info.is_dataclass = True
            if isinstance(decorator, ast.Call):
                for keyword in decorator.keywords:
                    if (
                        keyword.arg == "slots"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                    ):
                        info.dataclass_slots = True

    for statement in node.body:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    info.declared.add(target.id)
                    if target.id == "__slots__":
                        info.has_slots = True
                        info.declared |= _slot_names(statement.value)
        elif isinstance(statement, ast.AnnAssign) and isinstance(
            statement.target, ast.Name
        ):
            info.declared.add(statement.target.id)
            if statement.target.id == "__slots__":
                info.has_slots = True
                if statement.value is not None:
                    info.declared |= _slot_names(statement.value)
        elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.declared.add(statement.name)
            if not statement.args.args:
                continue
            self_name = statement.args.args[0].arg
            in_init = statement.name in INIT_METHODS
            for child in ast.walk(statement):
                if isinstance(child, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    for attr, line in _self_attr_targets(child, self_name):
                        if in_init:
                            info.declared.add(attr)
                        else:
                            info.late_assignments.append((attr, line))
    return info


class ClassDb:
    """All classes in a lint run, indexed for base-chain resolution."""

    def __init__(self) -> None:
        #: (module_dotted_name, class_name) -> ClassInfo
        self.classes: Dict[Tuple[str, str], ClassInfo] = {}
        #: module_dotted_name -> {local_name: imported_dotted_target}
        self.imports: Dict[str, Dict[str, str]] = {}

    @staticmethod
    def module_name(relpath: str) -> str:
        """Dotted module name for a repo-relative path (best effort)."""
        path = relpath
        if path.endswith(".py"):
            path = path[: -len(".py")]
        if path.endswith("/__init__"):
            path = path[: -len("/__init__")]
        if path.startswith("src/"):
            path = path[len("src/") :]
        return path.replace("/", ".")

    def add_module(self, relpath: str, tree: ast.AST) -> None:
        module = self.module_name(relpath)
        imports: Dict[str, str] = self.imports.setdefault(module, {})
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    imports[local] = f"{node.module}.{alias.name}"
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    imports[local] = alias.name
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                info = class_info(node, module)
                self.classes[(module, node.name)] = info

    def resolve_base(self, module: str, base_ref: str) -> Optional[ClassInfo]:
        """The :class:`ClassInfo` a base reference points at, if in the run."""
        # Same-module class?
        info = self.classes.get((module, base_ref))
        if info is not None:
            return info
        head, _, tail = base_ref.partition(".")
        imported = self.imports.get(module, {}).get(head)
        if imported is None:
            return None
        dotted = imported if not tail else f"{imported}.{tail}"
        owner, _, cls = dotted.rpartition(".")
        return self.classes.get((owner, cls))

    def declared_attrs(self, info: ClassInfo) -> Optional[Set[str]]:
        """Attributes declared by ``info`` and its resolvable base chain.

        Returns ``None`` when a base cannot be resolved (and is not a
        well-known opaque root) — the caller must skip the class.
        """
        declared: Set[str] = set()
        seen: Set[Tuple[str, str]] = set()
        stack: List[ClassInfo] = [info]
        while stack:
            current = stack.pop()
            key = (current.module, current.name)
            if key in seen:
                continue
            seen.add(key)
            declared |= current.declared
            for base_ref in current.bases:
                if base_ref in OPAQUE_BASES or base_ref.rsplit(".", 1)[-1] in (
                    "ABC",
                    "object",
                ):
                    continue
                resolved = self.resolve_base(current.module, base_ref)
                if resolved is None:
                    return None
                stack.append(resolved)
        return declared
