"""Project-level configuration and semantic context for the lint rules.

The scoping tables below are the written-down form of contracts that were
previously informal:

* **result-affecting modules** — anything whose execution order or
  iteration order can reach a :class:`~repro.sim.stats.SimulationResult`;
  the determinism rules (``D1xx``) police these.
* **hot-path slot modules** — modules whose classes are instantiated per
  access, per line, or per run inside ``MulticoreSimulator.run``; they
  must be slotted (``H301``) so the interpreter never pays per-instance
  dict costs on the hot path.  The protocol engines are additionally
  covered by the attribute-discipline rule (``H302``) but not by the slots
  rule: each engine is one instance per run and its attribute surface *is*
  the documented hoisted-table cache.
* **protocol engine modules** — the three stable-state engines whose
  transition handling is cross-checked against :mod:`repro.core.states`
  and the columnar type-code table (``P2xx``).

Semantic facts (enum member tables, the registered env-knob table, the
columnar code tables) are imported lazily from the real package so the
rules check against the single source of truth rather than a copy.
"""

from __future__ import annotations

import os
from typing import Dict, FrozenSet, Mapping, Optional, Sequence, Tuple

#: Directories whose modules can affect simulation results.
RESULT_AFFECTING_PREFIXES: Tuple[str, ...] = (
    "src/repro/sim/",
    "src/repro/core/",
    "src/repro/hierarchy/",
    "src/repro/interconnect/",
)

#: The verification harness.  Not result-affecting (nothing here feeds a
#: ``SimulationResult``), but its whole value rests on determinism — sharded
#: BFS folds must be jobs-independent, walks and shrinks seed-reproducible —
#: so the unordered-iteration rule (D102) scans it.  The wall-clock rule
#: (D103) deliberately does *not*: the checker's progress reporting and the
#: CLI's swarm budget legitimately read the host clock, and no clock value
#: reaches a verification verdict.
VERIFICATION_PREFIX = "src/repro/verification/"

#: The telemetry package.  Not result-affecting (the obs contract is that
#: nothing here feeds a ``SimulationResult``), but rule D103 *does* scan it:
#: the subsystem's design routes every host-clock read through the registry,
#: and the rule is what keeps that true.
OBS_PREFIX = "src/repro/obs/"

#: The sanctioned wall-clock island (rule D103's allowlist).  Exactly the
#: modules allowed to read the host clock without a per-line suppression —
#: everything else (including the rest of ``repro/obs/``) must take
#: timestamps through :func:`repro.obs.registry.clock`.  Like the waiver
#: budget, this list is audited: an allowlisted module that stops reading
#: the clock (or disappears) is flagged stale so the island can only shrink
#: deliberately, never silently.
OBS_WALLCLOCK_MODULES: Tuple[str, ...] = (
    "src/repro/obs/registry.py",
)

#: Modules whose classes ride the per-access / per-line hot path and must
#: declare ``__slots__`` (rule H301).
HOT_SLOTS_MODULES: Tuple[str, ...] = (
    "src/repro/sim/access.py",
    "src/repro/sim/core_model.py",
    "src/repro/sim/stats.py",
    "src/repro/sim/kernel.py",
    "src/repro/sim/simulator.py",
    "src/repro/hierarchy/cache.py",
    "src/repro/hierarchy/memory.py",
    "src/repro/hierarchy/system.py",
    "src/repro/core/directory.py",
    "src/repro/core/reduction.py",
)

#: Modules under the attribute-creation discipline (rule H302): the slot
#: modules plus the protocol engines and the simulator driver.
HOT_ATTR_MODULES: Tuple[str, ...] = HOT_SLOTS_MODULES + (
    "src/repro/core/protocol.py",
    "src/repro/core/mesi.py",
    "src/repro/core/meusi.py",
    "src/repro/core/rmo.py",
)

#: The stable-state protocol engines (rules P202/P203).
PROTOCOL_ENGINE_MODULES: Tuple[str, ...] = (
    "src/repro/core/mesi.py",
    "src/repro/core/meusi.py",
    "src/repro/core/rmo.py",
)

#: Stable-state alphabet each engine module may reference (rule P203).
#: ``mesi.py`` hosts the MESI-family shared machinery, which also services
#: MEUSI's U lines via inheritance — those two references carry audited
#: inline suppressions; brand-new ones must be justified the same way.
ENGINE_STATE_ALPHABET: Mapping[str, FrozenSet[str]] = {
    "src/repro/core/mesi.py": frozenset({"INVALID", "SHARED", "EXCLUSIVE", "MODIFIED"}),
    "src/repro/core/rmo.py": frozenset({"INVALID", "SHARED", "EXCLUSIVE", "MODIFIED"}),
    "src/repro/core/meusi.py": frozenset(
        {"INVALID", "SHARED", "EXCLUSIVE", "MODIFIED", "UPDATE"}
    ),
}

#: Values the batch contract accepts for ``HOT_COMMUTATIVE``.
HOT_COMMUTATIVE_VALUES: FrozenSet[str] = frozenset({"atomic", "local", "never"})


def is_result_affecting(relpath: str) -> bool:
    return relpath.startswith(RESULT_AFFECTING_PREFIXES)


def is_verification_module(relpath: str) -> bool:
    return relpath.startswith(VERIFICATION_PREFIX)


def is_obs_module(relpath: str) -> bool:
    return relpath.startswith(OBS_PREFIX)


def is_obs_wallclock_module(relpath: str) -> bool:
    return relpath in OBS_WALLCLOCK_MODULES


class ProjectContext:
    """Semantic facts about the project, loaded lazily and cached.

    ``root`` is the project root used to resolve the README and to make
    paths relative; when the real :mod:`repro` package is importable the
    enum/knob/code tables come from it directly.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = os.path.abspath(root) if root else os.getcwd()
        self._enum_members: Optional[Dict[str, FrozenSet[str]]] = None
        self._registered_knobs: Optional[Dict[str, object]] = None
        self._readme_text: Optional[str] = None

    # -- enum member tables (rule P201/P203) --------------------------------

    @property
    def enum_members(self) -> Dict[str, FrozenSet[str]]:
        """Allowed attribute names per checked enum/class, from the source
        of truth in :mod:`repro.core.states` / :mod:`repro.sim.access`."""
        if self._enum_members is None:
            from repro.core.commutative import CommutativeOp
            from repro.core.states import LineMode, RequestType, StableState
            from repro.sim.access import AccessType

            def allowed(cls: type) -> FrozenSet[str]:
                return frozenset(name for name in dir(cls) if not name.startswith("_"))

            self._enum_members = {
                "StableState": allowed(StableState),
                "LineMode": allowed(LineMode),
                "RequestType": allowed(RequestType),
                "AccessType": allowed(AccessType),
                "CommutativeOp": allowed(CommutativeOp),
            }
        return self._enum_members

    # -- registered environment knobs (rule H303) ---------------------------

    @property
    def registered_knobs(self) -> Dict[str, object]:
        """Name -> :class:`repro.experiments.settings.EnvKnob` mapping."""
        if self._registered_knobs is None:
            from repro.experiments.settings import ENV_KNOBS

            self._registered_knobs = {knob.name: knob for knob in ENV_KNOBS}
        return self._registered_knobs

    # -- README (rule H303's documentation check) ---------------------------

    @property
    def readme_text(self) -> str:
        if self._readme_text is None:
            readme = os.path.join(self.root, "README.md")
            try:
                with open(readme, "r", encoding="utf-8") as handle:
                    self._readme_text = handle.read()
            except OSError:
                self._readme_text = ""
        return self._readme_text

    def relpath(self, path: str) -> str:
        """Project-relative POSIX path of ``path``."""
        rel = os.path.relpath(os.path.abspath(path), self.root)
        return rel.replace(os.sep, "/")
