"""Lint engine: file loading, rule dispatch, suppression and budget audit."""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint import suppressions as suppression_mod
from repro.lint.classdb import ClassDb
from repro.lint.context import ProjectContext
from repro.lint.suppressions import Suppression, match_suppression
from repro.lint.violations import Violation


@dataclass(slots=True)
class SourceModule:
    """One parsed source file plus its suppression directives."""

    path: str
    relpath: str
    source: str
    tree: Optional[ast.Module]
    lines: List[str]
    suppressions: List[Suppression]
    #: Parse/scan findings (syntax errors, malformed directives).
    intrinsic_violations: List[Violation]


class Rule:
    """Base class for lint rules.

    Subclasses set ``code``/``symbol``/``description``, optionally narrow
    ``applies`` and implement :meth:`check` (per file) and/or
    :meth:`finalize` (once per run, with every in-scope module parsed).
    """

    code: str = "X000"
    symbol: str = "abstract-rule"
    description: str = ""

    def applies(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/")

    def check(self, module: SourceModule, ctx: ProjectContext) -> List[Violation]:
        return []

    def finalize(
        self,
        modules: Sequence[SourceModule],
        ctx: ProjectContext,
        classdb: ClassDb,
    ) -> List[Violation]:
        return []

    def violation(self, module: SourceModule, node: ast.AST, message: str) -> Violation:
        return Violation(
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            symbol=self.symbol,
            message=message,
        )


@dataclass(slots=True)
class LintReport:
    """Outcome of one lint run."""

    #: Findings that survived suppression (sorted; includes X-codes).
    violations: List[Violation]
    #: Findings waived by an inline suppression.
    suppressed: List[Violation]
    #: Every suppression directive found, with usage marked.
    suppressions: List[Tuple[str, Suppression]]
    #: Files examined (project-relative paths).
    files: List[str]

    @property
    def ok(self) -> bool:
        return not self.violations

    def used_suppression_counts(self) -> Dict[Tuple[str, str], int]:
        """(path, code-or-symbol-key resolved to code) -> count of *used*
        suppressions, the quantity the budget file audits."""
        counts: Dict[Tuple[str, str], int] = {}
        for path, suppression in self.suppressions:
            if suppression.used:
                key = (path, suppression.resolved_code or suppression.key)
                counts[key] = counts.get(key, 0) + 1
        return counts


def load_source_module(path: str, relpath: Optional[str] = None) -> SourceModule:
    """Read and parse one file; syntax errors become X104 findings."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    rel = relpath if relpath is not None else path.replace(os.sep, "/")
    intrinsic: List[Violation] = []
    tree: Optional[ast.Module] = None
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        intrinsic.append(
            Violation(
                path=rel,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                code="X104",
                symbol="syntax-error",
                message=f"file does not parse: {exc.msg}",
            )
        )
    found, malformed = suppression_mod.scan(source, rel)
    intrinsic.extend(malformed)
    return SourceModule(
        path=path,
        relpath=rel,
        source=source,
        tree=tree,
        lines=source.splitlines(),
        suppressions=found,
        intrinsic_violations=intrinsic,
    )


def discover_files(paths: Sequence[str], ctx: ProjectContext) -> List[Tuple[str, str]]:
    """Expand files/directories into (abspath, relpath) pairs, sorted."""
    found: List[Tuple[str, str]] = []
    for path in paths:
        absolute = os.path.abspath(path)
        if os.path.isdir(absolute):
            for dirpath, dirnames, filenames in os.walk(absolute):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in ("__pycache__", ".git")
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        full = os.path.join(dirpath, filename)
                        found.append((full, ctx.relpath(full)))
        elif absolute.endswith(".py"):
            found.append((absolute, ctx.relpath(absolute)))
    # De-duplicate while preserving sorted order by relpath.
    seen = set()
    unique: List[Tuple[str, str]] = []
    for full, rel in sorted(found, key=lambda pair: pair[1]):
        if rel not in seen:
            seen.add(rel)
            unique.append((full, rel))
    return unique


def run_rules(
    modules: Sequence[SourceModule],
    rules: Sequence[Rule],
    ctx: ProjectContext,
) -> Tuple[List[Violation], ClassDb]:
    """Raw findings from every rule over every module (pre-suppression)."""
    classdb = ClassDb()
    for module in modules:
        if module.tree is not None:
            classdb.add_module(module.relpath, module.tree)
    raw: List[Violation] = []
    for module in modules:
        raw.extend(module.intrinsic_violations)
        if module.tree is None:
            continue
        for rule in rules:
            if rule.applies(module.relpath):
                raw.extend(rule.check(module, ctx))
    for rule in rules:
        raw.extend(rule.finalize(modules, ctx, classdb))
    return raw, classdb


def apply_suppressions(
    modules: Sequence[SourceModule],
    raw: List[Violation],
    rules: Sequence[Rule],
) -> LintReport:
    """Waive suppressed findings; report unused/unknown suppressions."""
    symbol_of_code = {rule.code: rule.symbol for rule in rules}
    code_of_symbol = {rule.symbol: rule.code for rule in rules}
    known_keys = (
        set(symbol_of_code)
        | set(code_of_symbol)
        | {"X100", "X101", "X102", "X103", "X104"}
    )
    by_path: Dict[str, List[Suppression]] = {
        module.relpath: module.suppressions for module in modules
    }
    kept: List[Violation] = []
    waived: List[Violation] = []
    for violation in raw:
        # Engine meta-findings are never suppressible: the audit trail must
        # not be able to waive itself.
        if violation.code.startswith("X"):
            kept.append(violation)
            continue
        suppression = match_suppression(
            by_path.get(violation.path, []), violation, symbol_of_code, code_of_symbol
        )
        if suppression is not None:
            suppression.used = True
            suppression.resolved_code = violation.code
            waived.append(violation)
        else:
            kept.append(violation)
    all_suppressions: List[Tuple[str, Suppression]] = []
    for module in modules:
        for suppression in module.suppressions:
            all_suppressions.append((module.relpath, suppression))
            if suppression.key not in known_keys:
                kept.append(
                    Violation(
                        path=module.relpath,
                        line=suppression.comment_line,
                        col=0,
                        code="X100",
                        symbol="unknown-rule",
                        message=f"suppression names unknown rule {suppression.key!r}",
                    )
                )
            elif not suppression.used:
                kept.append(
                    Violation(
                        path=module.relpath,
                        line=suppression.comment_line,
                        col=0,
                        code="X102",
                        symbol="unused-suppression",
                        message=(
                            f"suppression of {suppression.key} waives nothing — "
                            "delete it (and update lint-budget.json)"
                        ),
                    )
                )
    kept.sort(key=Violation.sort_key)
    waived.sort(key=Violation.sort_key)
    return LintReport(
        violations=kept,
        suppressed=waived,
        suppressions=all_suppressions,
        files=[module.relpath for module in modules],
    )


def lint_paths(
    paths: Sequence[str],
    *,
    root: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
    budget_path: Optional[str] = None,
) -> LintReport:
    """Lint files/directories; the one-call public API.

    ``budget_path`` (when given and existing) audits the suppression budget
    — see :mod:`repro.lint.budget`.
    """
    from repro.lint import budget as budget_mod
    from repro.lint.rules import all_rules

    ctx = ProjectContext(root)
    active_rules = list(rules) if rules is not None else all_rules()
    modules = [load_source_module(full, rel) for full, rel in discover_files(paths, ctx)]
    raw, _classdb = run_rules(modules, active_rules, ctx)
    report = apply_suppressions(modules, raw, active_rules)
    if budget_path is not None and os.path.exists(budget_path):
        report.violations.extend(
            budget_mod.audit(budget_path, report, root=ctx.root)
        )
        report.violations.sort(key=Violation.sort_key)
    return report
