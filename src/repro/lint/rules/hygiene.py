"""Hot-path hygiene rules (H3xx)."""

from __future__ import annotations

import ast
from typing import List, Sequence

from repro.lint.classdb import ClassDb
from repro.lint.context import (
    HOT_ATTR_MODULES,
    HOT_SLOTS_MODULES,
    ProjectContext,
)
from repro.lint.engine import Rule, SourceModule
from repro.lint.rules.common import build_import_map, call_name, dotted_name
from repro.lint.violations import Violation


class SlotsRequiredRule(Rule):
    """H301: hot-path classes must declare ``__slots__``.

    The modules in :data:`~repro.lint.context.HOT_SLOTS_MODULES` define the
    objects the simulator allocates per access, per line, or per run; an
    unslotted class there pays a per-instance ``__dict__`` and lets typo'd
    attribute writes silently create state.  Dataclasses must pass
    ``slots=True``; enums, exceptions, Protocols and NamedTuples are exempt
    (slots are meaningless or implied there).
    """

    code = "H301"
    symbol = "missing-slots"
    description = (
        "classes in hot-path modules must declare __slots__ "
        "(dataclasses: slots=True)"
    )

    def applies(self, relpath: str) -> bool:
        return relpath in HOT_SLOTS_MODULES

    def check(self, module: SourceModule, ctx: ProjectContext) -> List[Violation]:
        from repro.lint.classdb import class_info

        findings: List[Violation] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            info = class_info(node, module.relpath)
            if (
                info.is_enum
                or info.is_exception
                or info.is_protocol_or_abc
                or info.is_namedtuple
            ):
                continue
            if info.is_dataclass:
                if not info.dataclass_slots:
                    findings.append(
                        self.violation(
                            module,
                            node,
                            f"hot-path dataclass {node.name} must pass "
                            "slots=True",
                        )
                    )
            elif not info.has_slots:
                findings.append(
                    self.violation(
                        module,
                        node,
                        f"hot-path class {node.name} must declare __slots__",
                    )
                )
        return findings


class AttrOutsideInitRule(Rule):
    """H302: no instance-attribute creation outside ``__init__``.

    In the hot-path and protocol-engine modules, every ``self.X = ...`` in
    an ordinary method must assign an attribute already declared (in
    ``__slots__``, the class body, or the ``__init__`` family — including
    inherited ones, resolved across modules).  Creating attributes late
    defeats ``__slots__``, hides state from readers of ``__init__``, and is
    exactly how resync bookkeeping goes stale during refactors.
    """

    code = "H302"
    symbol = "attr-outside-init"
    description = (
        "hot-path classes must declare every instance attribute in __init__ "
        "(or __slots__); methods may only rebind declared attributes"
    )

    def applies(self, relpath: str) -> bool:
        # Work happens in finalize (needs the cross-module class DB).
        return False

    def finalize(
        self,
        modules: Sequence[SourceModule],
        ctx: ProjectContext,
        classdb: ClassDb,
    ) -> List[Violation]:
        findings: List[Violation] = []
        for module in modules:
            if module.relpath not in HOT_ATTR_MODULES or module.tree is None:
                continue
            module_name = classdb.module_name(module.relpath)
            for (owner, _name), info in sorted(classdb.classes.items()):
                if owner != module_name or not info.late_assignments:
                    continue
                declared = classdb.declared_attrs(info)
                if declared is None:
                    # A base outside the run: cannot prove anything.
                    continue
                for attr, line in info.late_assignments:
                    if attr not in declared:
                        findings.append(
                            Violation(
                                path=module.relpath,
                                line=line,
                                col=0,
                                code=self.code,
                                symbol=self.symbol,
                                message=(
                                    f"{info.name}.{attr} is created outside "
                                    "__init__ — declare it in __init__ (or "
                                    "__slots__) and rebind here"
                                ),
                            )
                        )
        return findings


class EnvRegistryRule(Rule):
    """H303: every ``REPRO_*`` env read must be a registered knob.

    :data:`repro.experiments.settings.ENV_KNOBS` is the single source of
    truth for the reproduction's environment surface; reading an
    unregistered ``REPRO_*`` name creates an undocumented, untested knob.
    A run-level check also verifies each registered knob is documented in
    the README.
    """

    code = "H303"
    symbol = "unregistered-env-knob"
    description = (
        "REPRO_* environment reads must name a knob registered in "
        "repro.experiments.settings.ENV_KNOBS and documented in README.md"
    )

    #: Call targets that read the environment: (qualified name, arg index).
    _ENV_READERS = {
        "os.getenv": 0,
        "os.environ.get": 0,
        "environ.get": 0,
    }

    def check(self, module: SourceModule, ctx: ProjectContext) -> List[Violation]:
        imports = build_import_map(module.tree)
        findings: List[Violation] = []
        for node in ast.walk(module.tree):
            name: str | None = None
            if isinstance(node, ast.Call):
                qualified = call_name(node, imports)
                if qualified is None:
                    continue
                # Normalize os.environ.get resolved through aliases.
                if qualified.endswith(".environ.get"):
                    qualified = "os.environ.get"
                index = self._ENV_READERS.get(qualified)
                if index is None or len(node.args) <= index:
                    continue
                arg = node.args[index]
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    name = arg.value
                    anchor: ast.AST = arg
            elif isinstance(node, ast.Subscript):
                target = dotted_name(node.value)
                if target is None or not target.endswith("environ"):
                    continue
                key = node.slice
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    name = key.value
                    anchor = key
            if name is None or not name.startswith("REPRO_"):
                continue
            if name not in ctx.registered_knobs:
                registered = ", ".join(sorted(ctx.registered_knobs))
                findings.append(
                    self.violation(
                        module,
                        anchor,
                        f"{name} is not registered in "
                        "repro.experiments.settings.ENV_KNOBS "
                        f"(registered: {registered})",
                    )
                )
        return findings

    def finalize(
        self,
        modules: Sequence[SourceModule],
        ctx: ProjectContext,
        classdb: ClassDb,
    ) -> List[Violation]:
        # Documentation check: only when the registry itself is in the run
        # (i.e. a real-tree lint, not a fixture suite).
        linted = {module.relpath for module in modules}
        if "src/repro/experiments/settings.py" not in linted:
            return []
        readme = ctx.readme_text
        findings: List[Violation] = []
        for name in sorted(ctx.registered_knobs):
            if name not in readme:
                findings.append(
                    Violation(
                        path="src/repro/experiments/settings.py",
                        line=1,
                        col=0,
                        code=self.code,
                        symbol=self.symbol,
                        message=(
                            f"registered knob {name} is not documented in "
                            "README.md"
                        ),
                    )
                )
        return findings
